//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the property-testing surface the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges, tuples and [`strategy::Just`],
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`arbitrary::any`] for the primitive types,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Semantics: each test runs `cases` random inputs from a deterministic
//! per-test seed (override with the `PROPTEST_SEED` environment variable).
//! There is **no shrinking** — a failure reports the case number and seed
//! so the run can be reproduced exactly.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one fresh value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Discards generated values failing `f` (counted as rejections,
        /// like [`prop_assume!`](crate::prop_assume)).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { base: self, whence, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1_000 {
                let v = self.base.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Range sampling is delegated to the sibling `rand` shim (uniform ints
    // via widening multiply, floats with an exclusive-bound resample loop),
    // so the two vendored crates share one implementation.
    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    range_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod test_runner {
    //! Configuration, RNG and the case-execution loop behind [`proptest!`](crate::proptest).

    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful random cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property does not hold.
        Fail(String),
        /// The generated input was rejected by [`prop_assume!`](crate::prop_assume).
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The deterministic RNG handed to strategies (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from `seed` via SplitMix64 expansion.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Returns the next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            rand::distributions::unit_f64(self)
        }
    }

    // Distribution plumbing (uniform ranges etc.) comes from the sibling
    // `rand` shim through this impl, instead of a second copy here.
    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `body` for the configured number of cases. Called by the
    /// [`proptest!`](crate::proptest) macro expansion, not directly.
    pub fn run<F>(config: ProptestConfig, file: &str, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
            Err(_) => fnv1a(format!("{file}::{test_name}").as_bytes()),
        };
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = config.cases as u64 * 64;
        while passed < config.cases {
            let mut case_rng = rng.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut case_rng)));
            // Advance the master stream independently of how many words the
            // case consumed, so each case's input is a fresh draw.
            rng = TestRng::seed_from_u64(rng.next_u64());
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{test_name}: prop_assume rejected {rejected} inputs \
                             (only {passed}/{} cases passed); seed {seed}",
                            config.cases
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("{test_name}: property failed on case {passed} (seed {seed}): {msg}");
                }
                Err(payload) => {
                    eprintln!(
                        "{test_name}: panic on case {passed} (seed {seed}); \
                         set PROPTEST_SEED={seed} to reproduce"
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, for glob import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                $config,
                file!(),
                stringify!($name),
                |__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
}

/// Like `assert!`, but reports the failing random case instead of
/// panicking bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when `cond` is false (counted as a
/// rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=9), x in -2.0..2.0f64) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for e in v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0usize..10, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_bool_covers_both(flag in any::<bool>(), _pad in 0u8..4) {
            // Nothing to check beyond type-level plumbing.
            let _ = flag;
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0usize..1000, 0.0..1.0f64);
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut a).0, strat.new_value(&mut b).0);
        }
    }
}
