//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! crates.io registry cache, so the handful of `rand` APIs the workspace
//! actually uses are reimplemented here and wired in through a path
//! dependency. The surface is intentionally tiny:
//!
//! * [`RngCore`] / [`SeedableRng`] — the generator plumbing traits.
//! * [`Rng`] — `gen_range`, `gen_bool` and `gen::<f64>()`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! The streams produced are deterministic for a given seed (everything the
//! workspace relies on) but are **not** bit-compatible with the real
//! `rand` crate. If a registry ever becomes available, this shim can be
//! dropped by pointing the workspace dependency back at crates.io.

#![forbid(unsafe_code)]

/// The core of any random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]
    /// by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive` over
    /// the integer types and `f64`). Panics on an empty range.
    fn gen_range<R: distributions::SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        distributions::unit_f64(self) < p
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform sampling support for range types.
pub mod distributions {
    use super::RngCore;

    /// Draws a `f64` uniformly from `[0, 1)` using the top 53 bits of one
    /// output word.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Range types [`super::Rng::gen_range`] accepts.
    pub trait SampleRange {
        /// The element type produced by the range.
        type Output;
        /// Samples one value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    /// Types with a standard distribution for [`super::Rng::gen`].
    pub trait Standard: Sized {
        /// Samples one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    /// Uniform `u64` in `[0, n)` by widening multiply (no modulo bias worth
    /// caring about at these magnitudes).
    fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((rng.next_u64() as u128 * n as u128) >> 64) as u64
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + below(rng, span) as $t
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: one raw word is already uniform.
                        return rng.next_u64() as $t;
                    }
                    lo + below(rng, span) as $t
                }
            }
        )*};
    }
    int_ranges!(usize, u8, u16, u32, u64);

    macro_rules! signed_int_ranges {
        ($($t:ty as $u:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span) as $t)
                }
            }
        )*};
    }
    signed_int_ranges!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    // Rounding in the cast or the fma below can land exactly on
                    // `end` (e.g. f32 narrowing of a unit draw > 1 - 2^-25);
                    // resample so the exclusive bound is honoured.
                    loop {
                        let v = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    lo + (hi - lo) * unit_f64(rng) as $t
                }
            }
        )*};
    }
    float_ranges!(f64, f32);
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// Extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::unit_f64;
    use super::{Rng, RngCore};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(1));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
