//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the Criterion API the workspace's `benches/` targets
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed samples whose minimum, median and mean per-
//! iteration times are printed — with none of Criterion's statistical
//! machinery. It is enough to compare orders of magnitude and to keep
//! `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Records the throughput denominator (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elements"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        println!("{}: throughput denominator {n} {unit}/iter", self.name);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.to_string()), parameter: parameter.to_string() }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{name}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Work-per-iteration denominator for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timer handle passed to the closure of every benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Bundles benchmark functions into a group runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // one warm-up + sample_size timed runs
        assert_eq!(runs, 21);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("inner", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| runs += n as u32)
        });
        group.finish();
        assert_eq!(runs, 6 + 6 * 3);
    }
}
