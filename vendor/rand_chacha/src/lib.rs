//! Offline stand-in for the `rand_chacha` crate, providing [`ChaCha8Rng`].
//!
//! Like the sibling `vendor/rand` shim, this exists because the build
//! environment has no crates.io access. The generator is a genuine
//! ChaCha with 8 rounds (IETF variant layout, zero nonce), seeded from a
//! `u64` through SplitMix64 key expansion. Streams are deterministic and
//! of cryptographic quality, but are **not** bit-compatible with the real
//! `rand_chacha` crate.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator using 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and counter/nonce words 12..16 of the ChaCha state.
    state: [u32; 16],
    /// Output of the last block function invocation.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "buffer exhausted".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (out, (x, y)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = x.wrapping_add(*y);
        }
        // 64-bit block counter in words 12/13 (nonce stays in 14/15).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        self.state[13] = self.state[13].wrapping_add(carry as u32);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as rand's generic seed_from_u64 does.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let word = next();
            s[4 + 2 * i] = word as u32;
            s[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state: s, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 40 u64s = 5 blocks of 16 u32 words; must not repeat blockwise.
        let words: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        assert_ne!(&words[..8], &words[8..16]);
    }
}
