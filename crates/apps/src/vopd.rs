//! Video Object Plane Decoder (VOPD) — Figure 1 / Figure 2(a) of the paper.
//!
//! **Paper-exact:** the 16-core count and the multiset of edge bandwidths
//! {70, 362, 362, 362, 357, 353, 300, 313, 313, 500, 157, 94, 49, 27,
//! 16 × 6} MB/s are read directly from the paper's figures.
//!
//! **Pinned from the literature:** the scan of Figure 1 leaves some edge
//! directions ambiguous; the pipeline structure used here follows the
//! canonical VOPD core graph that recurs in the follow-on NoC mapping
//! literature (variable-length decode → run-length decode → inverse scan →
//! AC/DC prediction → iQuant → IDCT → up-sampling → VOP reconstruction →
//! padding → VOP memory, with the stripe-memory feedback pair, the
//! arithmetic-decoder/context-calculation side chain, and the reference-
//! memory loop).

use noc_graph::CoreGraph;

/// Builds the 16-core VOPD core graph (20 directed edges, ≈3.7 GB/s
/// aggregate demand).
pub fn vopd() -> CoreGraph {
    let mut g = CoreGraph::new();
    let demux = g.add_core("demux");
    let vld = g.add_core("vld");
    let run_le_dec = g.add_core("run_le_dec");
    let inv_scan = g.add_core("inv_scan");
    let acdc_pred = g.add_core("acdc_pred");
    let stripe_mem = g.add_core("stripe_mem");
    let iquant = g.add_core("iquant");
    let idct = g.add_core("idct");
    let arith_dec = g.add_core("arith_dec");
    let ctx_calc = g.add_core("ctx_calc");
    let up_samp = g.add_core("up_samp");
    let ref_mem = g.add_core("ref_mem");
    let vop_rec = g.add_core("vop_rec");
    let pad = g.add_core("pad");
    let vop_mem = g.add_core("vop_mem");
    let updown_samp = g.add_core("updown_samp");

    let edges = [
        // Main decode pipeline (paper Figure 1, left to right).
        (demux, vld, 16.0),
        (vld, run_le_dec, 70.0),
        (run_le_dec, inv_scan, 362.0),
        (inv_scan, acdc_pred, 362.0),
        (acdc_pred, iquant, 362.0),
        (iquant, idct, 357.0),
        (idct, up_samp, 353.0),
        (up_samp, vop_rec, 300.0),
        (vop_rec, pad, 313.0),
        (pad, vop_mem, 313.0),
        (vop_mem, pad, 94.0),
        // Stripe-memory feedback around AC/DC prediction.
        (acdc_pred, stripe_mem, 49.0),
        (stripe_mem, acdc_pred, 27.0),
        // Arithmetic decoder / context calculation side chain.
        (demux, arith_dec, 16.0),
        (arith_dec, ctx_calc, 16.0),
        (ctx_calc, arith_dec, 157.0),
        // Reference-memory loop feeding up-sampling.
        (ref_mem, up_samp, 500.0),
        (idct, ref_mem, 16.0),
        (vop_mem, updown_samp, 16.0),
        (updown_samp, ref_mem, 16.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let g = vopd();
        assert_eq!(g.core_count(), 16);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn weight_multiset_matches_figure() {
        let g = vopd();
        let mut weights: Vec<f64> = g.edges().map(|(_, e)| e.bandwidth.to_f64()).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = vec![
            16.0, 16.0, 16.0, 16.0, 16.0, 16.0, 27.0, 49.0, 70.0, 94.0, 157.0, 300.0, 313.0, 313.0,
            353.0, 357.0, 362.0, 362.0, 362.0, 500.0,
        ];
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(weights, expected);
    }

    #[test]
    fn hottest_edge_is_ref_memory() {
        let g = vopd();
        let max =
            g.edges().max_by(|a, b| a.1.bandwidth.partial_cmp(&b.1.bandwidth).unwrap()).unwrap();
        assert_eq!(g.name(max.1.src), "ref_mem");
        assert_eq!(g.name(max.1.dst), "up_samp");
        assert_eq!(max.1.bandwidth.to_f64(), 500.0);
    }

    #[test]
    fn pipeline_is_connected_and_acyclic_enough() {
        let g = vopd();
        assert!(g.is_connected());
        // The decode pipeline must be a chain: each of these cores sends to
        // the next with the documented bandwidth.
        let chain = [
            ("vld", "run_le_dec", 70.0),
            ("run_le_dec", "inv_scan", 362.0),
            ("iquant", "idct", 357.0),
        ];
        for (a, b, bw) in chain {
            let src = g.cores().find(|&c| g.name(c) == a).unwrap();
            let dst = g.cores().find(|&c| g.name(c) == b).unwrap();
            let e = g.find_edge(src, dst).expect("chain edge exists");
            assert_eq!(g.edge(e).bandwidth.to_f64(), bw);
        }
    }
}
