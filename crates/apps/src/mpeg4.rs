//! MPEG-4 decoder, 14 cores — **reconstruction**.
//!
//! The paper states only "MPEG4 decoder (mapped onto 14 cores)" and cites
//! van der Tol & Jaspers [7] for the decoder partitioning. Our graph is a
//! reconstruction with the structural features that drive mapping quality
//! in that workload: the bitstream-decode pipeline (demux → VLD →
//! run-length → inverse scan → AC/DC → iQuant → IDCT), a motion-
//! compensation path, and an SDRAM memory hub with several hot (300–500
//! MB/s) streams — the hub is what separates good mappers from bad ones,
//! because its neighbours must crowd around one node. Rates are at the
//! order of magnitude of the paper's Figure 1 numbers.

use noc_graph::CoreGraph;

/// Builds the 14-core MPEG-4 decoder reconstruction (17 directed edges,
/// ≈3.9 GB/s aggregate demand).
pub fn mpeg4() -> CoreGraph {
    let mut g = CoreGraph::new();
    let risc = g.add_core("risc");
    let demux = g.add_core("demux");
    let vld = g.add_core("vld");
    let run_dec = g.add_core("run_dec");
    let inv_scan = g.add_core("inv_scan");
    let acdc = g.add_core("acdc_pred");
    let iquant = g.add_core("iquant");
    let idct = g.add_core("idct");
    let mc = g.add_core("motion_comp");
    let upsamp = g.add_core("up_samp");
    let vop_rec = g.add_core("vop_rec");
    let pad = g.add_core("pad");
    let sdram = g.add_core("sdram");
    let sram = g.add_core("sram");

    let edges = [
        // Control.
        (risc, demux, 32.0),
        (risc, sdram, 16.0),
        (sdram, risc, 16.0),
        // Bitstream decode pipeline.
        (demux, vld, 64.0),
        (vld, run_dec, 70.0),
        (run_dec, inv_scan, 362.0),
        (inv_scan, acdc, 362.0),
        (acdc, iquant, 362.0),
        (iquant, idct, 357.0),
        (idct, vop_rec, 353.0),
        // Motion compensation out of the frame store.
        (sdram, mc, 400.0),
        (mc, vop_rec, 300.0),
        // Reconstruction loop through the memories.
        (vop_rec, pad, 313.0),
        (pad, sdram, 313.0),
        (sdram, upsamp, 500.0),
        (upsamp, sram, 300.0),
        (sram, risc, 16.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = mpeg4();
        assert_eq!(g.core_count(), 14);
        assert_eq!(g.edge_count(), 17);
        assert!(g.is_connected());
    }

    #[test]
    fn sdram_is_the_hub() {
        let g = mpeg4();
        let sdram = g.cores().find(|&c| g.name(c) == "sdram").unwrap();
        // The hub carries the most adjacent traffic of all cores.
        let hub_comm = g.total_comm(sdram);
        for c in g.cores() {
            if c != sdram {
                assert!(g.total_comm(c) <= hub_comm, "{} busier than sdram", g.name(c));
            }
        }
    }

    #[test]
    fn aggregate_demand_is_gigabyte_scale() {
        let total = mpeg4().total_bandwidth();
        assert!((3_000.0..5_000.0).contains(&total.to_f64()), "total {total}");
    }
}
