//! Picture-in-Picture (PIP), 8 cores — **reconstruction**.
//!
//! From the Philips video display chip-set workloads [15]: a main video
//! path and an inset (PiP) path are scaled independently, blended, buffered
//! and displayed. The reconstruction keeps the two-pipeline-into-blender
//! shape and the modest (tens-to-hundreds MB/s) rates that make PIP the
//! lightest of the paper's six applications in Figures 3–4.

use noc_graph::CoreGraph;

/// Builds the 8-core PIP core graph (8 directed edges, ≈0.7 GB/s aggregate
/// demand).
pub fn pip() -> CoreGraph {
    let mut g = CoreGraph::new();
    let inp_main = g.add_core("inp_main");
    let hs_main = g.add_core("hs_main");
    let vs_main = g.add_core("vs_main");
    let inp_pip = g.add_core("inp_pip");
    let scaler_pip = g.add_core("scaler_pip");
    let blender = g.add_core("blender");
    let mem = g.add_core("mem");
    let display = g.add_core("display");

    let edges = [
        (inp_main, hs_main, 128.0),
        (hs_main, vs_main, 64.0),
        (vs_main, blender, 64.0),
        (inp_pip, scaler_pip, 64.0),
        (scaler_pip, blender, 32.0),
        (blender, mem, 96.0),
        (mem, blender, 96.0),
        (blender, display, 128.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = pip();
        assert_eq!(g.core_count(), 8);
        assert_eq!(g.edge_count(), 8);
        assert!(g.is_connected());
    }

    #[test]
    fn pip_is_the_lightest_app() {
        assert!(pip().total_bandwidth() < noc_units::mbps(1_000.0));
    }

    #[test]
    fn blender_has_highest_fanin() {
        let g = pip();
        let blender = g.cores().find(|&c| g.name(c) == "blender").unwrap();
        let fan_in = g.in_edges(blender).count();
        assert_eq!(fan_in, 3);
    }
}
