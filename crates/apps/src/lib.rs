//! Benchmark application core graphs for the NMAP reproduction.
//!
//! The paper evaluates six video-processing applications (Section 7.1) and
//! one DSP filter design (Section 7.2):
//!
//! | app | cores | provenance of our graph |
//! |-----|-------|--------------------------|
//! | [`vopd`] | 16 | edge weights from the paper's own Figure 1 / 2(a); structure pinned with the canonical VOPD of the follow-on NoC literature |
//! | [`mpeg4`] | 14 | reconstruction (decoder pipeline + SDRAM hub), rates at the paper's order of magnitude |
//! | [`pip`] | 8 | reconstruction of the Picture-in-Picture chip-set workload \[15\] |
//! | [`mwa`] | 14 | reconstruction of the Multi-Window Application \[15\] |
//! | [`mwag`] | 16 | MWA plus a graphics pipeline \[15\] |
//! | [`dsd`] | 16 | reconstruction of the Dual Screen Display \[15\] |
//! | [`dsp_filter`] | 6 | exact structure of Figure 5(a): six 200 MB/s edges, two 600 MB/s edges |
//!
//! Reconstructions preserve what the mapping experiments are sensitive to:
//! pipeline depth, memory-hub fan-in/out, the ratio of hot streaming edges
//! to low-rate control edges, and aggregate demand. Each module's doc
//! comment details what is paper-exact versus inferred.
//!
//! # Example
//!
//! ```
//! use noc_apps::App;
//!
//! for app in App::all() {
//!     let g = app.core_graph();
//!     assert!(g.is_connected(), "{} must be connected", app.name());
//!     let (w, h) = app.mesh_dims();
//!     assert!(w * h >= g.core_count());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsd;
mod dsp;
mod mpeg4;
mod mwa;
mod pip;
mod vopd;

pub use dsd::dsd;
pub use dsp::dsp_filter;
pub use mpeg4::mpeg4;
pub use mwa::{mwa, mwag};
pub use pip::pip;
pub use vopd::vopd;

use noc_graph::CoreGraph;

/// The six video applications of the paper's Section 7.1, as an enumerable
/// suite for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// MPEG-4 decoder, 14 cores.
    Mpeg4,
    /// Video Object Plane decoder, 16 cores.
    Vopd,
    /// Picture-in-Picture, 8 cores.
    Pip,
    /// Multi-Window Application, 14 cores.
    Mwa,
    /// Multi-Window Application with graphics, 16 cores.
    Mwag,
    /// Dual Screen Display, 16 cores.
    Dsd,
}

impl App {
    /// All six applications, in the paper's presentation order.
    pub fn all() -> [App; 6] {
        [App::Mpeg4, App::Vopd, App::Pip, App::Mwa, App::Mwag, App::Dsd]
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Mpeg4 => "MPEG4",
            App::Vopd => "VOPD",
            App::Pip => "PIP",
            App::Mwa => "MWA",
            App::Mwag => "MWAG",
            App::Dsd => "DSD",
        }
    }

    /// Builds the application's core graph.
    pub fn core_graph(self) -> CoreGraph {
        match self {
            App::Mpeg4 => mpeg4(),
            App::Vopd => vopd(),
            App::Pip => pip(),
            App::Mwa => mwa(),
            App::Mwag => mwag(),
            App::Dsd => dsd(),
        }
    }

    /// Mesh dimensions used by the experiments (smallest square-ish mesh
    /// that fits the cores).
    pub fn mesh_dims(self) -> (usize, usize) {
        noc_graph::Topology::fit_mesh_dims(self.core_graph().core_count())
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_core_counts() {
        assert_eq!(App::Mpeg4.core_graph().core_count(), 14);
        assert_eq!(App::Vopd.core_graph().core_count(), 16);
        assert_eq!(App::Pip.core_graph().core_count(), 8);
        assert_eq!(App::Mwa.core_graph().core_count(), 14);
        assert_eq!(App::Mwag.core_graph().core_count(), 16);
        assert_eq!(App::Dsd.core_graph().core_count(), 16);
        assert_eq!(dsp_filter().core_count(), 6);
    }

    #[test]
    fn all_apps_are_connected() {
        for app in App::all() {
            assert!(app.core_graph().is_connected(), "{app} disconnected");
        }
        assert!(dsp_filter().is_connected());
    }

    #[test]
    fn mesh_dims_fit() {
        for app in App::all() {
            let (w, h) = app.mesh_dims();
            assert!(w * h >= app.core_graph().core_count());
            assert!(w * h <= app.core_graph().core_count() + 3, "{app} mesh too large");
        }
    }

    #[test]
    fn demands_are_in_the_hundreds_of_mbps() {
        // "The aggregate communication bandwidth between the cores is in
        // the GBytes/s range for many video applications."
        for app in App::all() {
            let total = app.core_graph().total_bandwidth();
            assert!(
                (500.0..10_000.0).contains(&total.to_f64()),
                "{app} aggregate {total} MB/s out of the plausible range"
            );
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(App::Vopd.to_string(), "VOPD");
        assert_eq!(App::Mwag.to_string(), "MWAG");
    }
}
