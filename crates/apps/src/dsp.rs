//! DSP filter design, 6 cores — Figure 5(a) of the paper.
//!
//! **Paper-exact weights:** the figure labels six edges with 200 MB/s and
//! two with 600 MB/s.
//!
//! **Structure (pinned by Table 3, see DESIGN.md §6):** Table 3 reports
//! that split-traffic routing reduces the per-link bandwidth the design
//! needs from 600 MB/s to 200 MB/s — a three-way split of each 600 MB/s
//! flow. On a 6-node mesh only the two centre nodes have degree 3, so a
//! three-way split is only possible for flows between those two nodes.
//! Both 600 MB/s edges must therefore connect the *same* pair of cores in
//! opposite directions: a request/response pair between FFT and the
//! Filter coprocessor (spectrum out, filtered spectrum back). The six
//! 200 MB/s edges carry the surrounding stream: ARM⇄Memory control/data,
//! Memory→FFT input, FFT→IFFT forwarding of the filtered spectrum,
//! IFFT→Memory write-back and IFFT→Display output.

use noc_graph::CoreGraph;

/// Builds the 6-core DSP filter core graph (8 directed edges: 6 × 200 MB/s
/// + 2 × 600 MB/s, exactly as in Figure 5(a)).
pub fn dsp_filter() -> CoreGraph {
    let mut g = CoreGraph::new();
    let arm = g.add_core("arm");
    let memory = g.add_core("memory");
    let fft = g.add_core("fft");
    let filter = g.add_core("filter");
    let ifft = g.add_core("ifft");
    let display = g.add_core("display");

    let edges = [
        (arm, memory, 200.0),
        (memory, arm, 200.0),
        (memory, fft, 200.0),
        (fft, filter, 600.0),
        (filter, fft, 600.0),
        (fft, ifft, 200.0),
        (ifft, memory, 200.0),
        (ifft, display, 200.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure_5a() {
        let g = dsp_filter();
        assert_eq!(g.core_count(), 6);
        assert_eq!(g.edge_count(), 8);
        let mut weights: Vec<f64> = g.edges().map(|(_, e)| e.bandwidth.to_f64()).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(weights, vec![200.0, 200.0, 200.0, 200.0, 200.0, 200.0, 600.0, 600.0]);
    }

    #[test]
    fn hot_edges_form_the_fft_filter_pair() {
        let g = dsp_filter();
        let mut endpoints = Vec::new();
        for (_, e) in g.edges().filter(|(_, e)| e.bandwidth.to_f64() == 600.0) {
            endpoints.push((g.name(e.src).to_string(), g.name(e.dst).to_string()));
        }
        endpoints.sort();
        assert_eq!(
            endpoints,
            vec![
                ("fft".to_string(), "filter".to_string()),
                ("filter".to_string(), "fft".to_string())
            ]
        );
    }

    #[test]
    fn filter_touches_only_the_hot_pair() {
        // The Filter coprocessor exchanges data with FFT only; everything
        // else routes around it — the property that lets the 600 MB/s pair
        // claim all six links of a centre node.
        let g = dsp_filter();
        let filter = g.cores().find(|&c| g.name(c) == "filter").unwrap();
        assert_eq!(g.out_edges(filter).count(), 1);
        assert_eq!(g.in_edges(filter).count(), 1);
    }

    #[test]
    fn connected() {
        assert!(dsp_filter().is_connected());
    }
}
