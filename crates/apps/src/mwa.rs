//! Multi-Window Application (MWA, 14 cores) and MWA with Graphics
//! (MWAG, 16 cores) — **reconstructions**.
//!
//! From the Philips video display chip-set workloads [15]: several
//! independently scaled video streams are composited into windows, with a
//! frame memory pair and a display controller. MWAG adds a two-stage
//! graphics pipeline feeding the compositor. The compositing hub plus
//! parallel stream pipelines is what stresses the mappers: streams compete
//! for the links around the compositor.

use noc_graph::CoreGraph;

/// Builds the 14-core Multi-Window Application core graph (15 directed
/// edges, ≈1.3 GB/s aggregate demand).
pub fn mwa() -> CoreGraph {
    let mut g = CoreGraph::new();
    build_mwa_base(&mut g);
    g
}

/// Builds the 16-core MWA-with-Graphics core graph (18 directed edges,
/// ≈1.6 GB/s aggregate demand).
pub fn mwag() -> CoreGraph {
    let mut g = CoreGraph::new();
    let comp = build_mwa_base(&mut g);
    let gfx_cmd = g.add_core("gfx_cmd");
    let gfx_render = g.add_core("gfx_render");
    g.add_comm(gfx_cmd, gfx_render, 128.0).expect("valid");
    g.add_comm(gfx_render, comp, 96.0).expect("valid");
    // Graphics command fetch from the background generator's memory port.
    let bg = g.cores().find(|&c| g.name(c) == "bg_gen").expect("bg exists");
    g.add_comm(bg, gfx_cmd, 32.0).expect("valid");
    g
}

/// Adds the 14 MWA cores and 15 edges; returns the compositor id for
/// extension by [`mwag`].
fn build_mwa_base(g: &mut CoreGraph) -> noc_graph::CoreId {
    let in1 = g.add_core("in1");
    let hs1 = g.add_core("hs1");
    let vs1 = g.add_core("vs1");
    let in2 = g.add_core("in2");
    let hs2 = g.add_core("hs2");
    let vs2 = g.add_core("vs2");
    let in3 = g.add_core("in3");
    let hs3 = g.add_core("hs3");
    let vs3 = g.add_core("vs3");
    let bg = g.add_core("bg_gen");
    let comp = g.add_core("compositor");
    let mem1 = g.add_core("mem1");
    let mem2 = g.add_core("mem2");
    let display = g.add_core("display");

    let edges = [
        (in1, hs1, 96.0),
        (hs1, vs1, 96.0),
        (vs1, comp, 64.0),
        (in2, hs2, 96.0),
        (hs2, vs2, 96.0),
        (vs2, comp, 64.0),
        (in3, hs3, 64.0),
        (hs3, vs3, 64.0),
        (vs3, comp, 32.0),
        (bg, comp, 64.0),
        (comp, mem1, 128.0),
        (mem1, comp, 128.0),
        (comp, mem2, 64.0),
        (mem2, comp, 64.0),
        (comp, display, 192.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mwa_shape() {
        let g = mwa();
        assert_eq!(g.core_count(), 14);
        assert_eq!(g.edge_count(), 15);
        assert!(g.is_connected());
    }

    #[test]
    fn mwag_shape() {
        let g = mwag();
        assert_eq!(g.core_count(), 16);
        assert_eq!(g.edge_count(), 18);
        assert!(g.is_connected());
    }

    #[test]
    fn mwag_extends_mwa() {
        let base = mwa();
        let ext = mwag();
        assert!(ext.total_bandwidth() > base.total_bandwidth());
        // Every MWA edge weight multiset entry survives in MWAG.
        let mut base_w: Vec<f64> = base.edges().map(|(_, e)| e.bandwidth.to_f64()).collect();
        let mut ext_w: Vec<f64> = ext.edges().map(|(_, e)| e.bandwidth.to_f64()).collect();
        base_w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ext_w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in base_w {
            let pos = ext_w.iter().position(|&x| x == w).expect("weight kept");
            ext_w.remove(pos);
        }
    }

    #[test]
    fn compositor_is_the_hub() {
        let g = mwa();
        let comp = g.cores().find(|&c| g.name(c) == "compositor").unwrap();
        for c in g.cores() {
            if c != comp {
                assert!(g.total_comm(c) <= g.total_comm(comp));
            }
        }
    }
}
