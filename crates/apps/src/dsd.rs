//! Dual Screen Display (DSD), 16 cores — **reconstruction**.
//!
//! From the Philips video display chip-set workloads [15]: two complete,
//! largely independent display pipelines (input → horizontal scale →
//! vertical scale → enhancement → mixing → display control), each with its
//! own frame memory, sharing an on-screen-display generator and a control
//! RISC. The twin-pipeline symmetry plus the shared OSD is what gives DSD
//! the highest cost ratios in the paper's Table 1 — mappers that commit
//! one pipeline to a corner strand the shared cores.

use noc_graph::CoreGraph;

/// Builds the 16-core DSD core graph (17 directed edges, ≈1.6 GB/s
/// aggregate demand).
pub fn dsd() -> CoreGraph {
    let mut g = CoreGraph::new();
    let in1 = g.add_core("in1");
    let hs1 = g.add_core("hs1");
    let vs1 = g.add_core("vs1");
    let enh1 = g.add_core("enh1");
    let mix1 = g.add_core("mix1");
    let disp1 = g.add_core("disp1");
    let mem1 = g.add_core("mem1");
    let in2 = g.add_core("in2");
    let hs2 = g.add_core("hs2");
    let vs2 = g.add_core("vs2");
    let enh2 = g.add_core("enh2");
    let mix2 = g.add_core("mix2");
    let disp2 = g.add_core("disp2");
    let mem2 = g.add_core("mem2");
    let osd = g.add_core("osd");
    let risc = g.add_core("risc");

    let edges = [
        // Screen 1 pipeline.
        (in1, hs1, 128.0),
        (hs1, vs1, 128.0),
        (vs1, enh1, 96.0),
        (enh1, mix1, 96.0),
        (mix1, disp1, 160.0),
        (enh1, mem1, 64.0),
        (mem1, enh1, 64.0),
        // Screen 2 pipeline.
        (in2, hs2, 128.0),
        (hs2, vs2, 128.0),
        (vs2, enh2, 96.0),
        (enh2, mix2, 96.0),
        (mix2, disp2, 160.0),
        (enh2, mem2, 64.0),
        (mem2, enh2, 64.0),
        // Shared on-screen display and control.
        (osd, mix1, 32.0),
        (osd, mix2, 32.0),
        (risc, osd, 16.0),
    ];
    for (src, dst, bw) in edges {
        g.add_comm(src, dst, bw).expect("static edge list is valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = dsd();
        assert_eq!(g.core_count(), 16);
        assert_eq!(g.edge_count(), 17);
        assert!(g.is_connected());
    }

    #[test]
    fn pipelines_are_symmetric() {
        let g = dsd();
        let weight_of = |a: &str, b: &str| {
            let src = g.cores().find(|&c| g.name(c) == a).unwrap();
            let dst = g.cores().find(|&c| g.name(c) == b).unwrap();
            g.edge(g.find_edge(src, dst).unwrap()).bandwidth
        };
        assert_eq!(weight_of("in1", "hs1"), weight_of("in2", "hs2"));
        assert_eq!(weight_of("mix1", "disp1"), weight_of("mix2", "disp2"));
        assert_eq!(weight_of("osd", "mix1"), weight_of("osd", "mix2"));
    }

    #[test]
    fn osd_bridges_both_screens() {
        let g = dsd();
        let osd = g.cores().find(|&c| g.name(c) == "osd").unwrap();
        assert_eq!(g.out_edges(osd).count(), 2);
    }
}
