//! Plain-text formats for core graphs and topologies, so applications can
//! be loaded from files instead of being hard-coded.
//!
//! # Core-graph format (`.app`)
//!
//! Line-oriented; `#` starts a comment. Two record kinds:
//!
//! ```text
//! # Video Object Plane Decoder
//! core vld
//! core run_le_dec
//! comm vld run_le_dec 70        # src dst bandwidth-MB/s
//! ```
//!
//! Cores may also be declared implicitly by their first mention in a
//! `comm` record. [`write_core_graph`] emits this format; parsing a
//! written graph reproduces it exactly (round-trip property, tested).
//!
//! # Topology format (`.noc`)
//!
//! ```text
//! mesh 4 4 1000        # per-axis extents..., link-bandwidth-MB/s
//! torus 3 3 500
//! mesh 4 4 2 1000      # three or more extents declare a 3-D (N-D) grid
//! custom 4             # node count, followed by `link` records
//! link 0 1 250         # src dst capacity (directed)
//! ```
//!
//! Exactly one of `mesh`/`torus`/`custom` must appear. `mesh`/`torus`
//! take two to four extents (the final number is always the uniform
//! link bandwidth); the rank cap keeps a stray trailing number on a
//! legacy 2-D line from silently declaring a huge higher-rank grid.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::{CoreGraph, CoreId, GraphError, NodeId, Topology};

/// Errors produced by the text parsers.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be interpreted; carries the 1-based line number
    /// and a description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The underlying graph construction rejected a record.
    Graph {
        /// 1-based line number.
        line: usize,
        /// The graph-layer error.
        source: GraphError,
    },
    /// The file declared no usable content.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Graph { line, source } => write!(f, "line {line}: {source}"),
            ParseError::Empty => write!(f, "no content found"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses the core-graph format described in the [module docs](self).
///
/// # Errors
///
/// [`ParseError`] with the offending line on malformed input; duplicate
/// edges, self-loops and invalid bandwidths are rejected via
/// [`ParseError::Graph`].
pub fn parse_core_graph(text: &str) -> Result<CoreGraph, ParseError> {
    let mut graph = CoreGraph::new();
    let mut ids: BTreeMap<String, CoreId> = BTreeMap::new();
    let mut saw_content = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        saw_content = true;
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line");
        match keyword {
            "core" => {
                let name = parts.next().ok_or_else(|| ParseError::Syntax {
                    line: line_no,
                    message: "`core` needs a name".into(),
                })?;
                if parts.next().is_some() {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "`core` takes exactly one name".into(),
                    });
                }
                if ids.contains_key(name) {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: format!("core `{name}` declared twice"),
                    });
                }
                let id = graph.add_core(name);
                ids.insert(name.to_string(), id);
            }
            "comm" => {
                let src = parts.next().ok_or_else(|| missing(line_no, "source core"))?;
                let dst = parts.next().ok_or_else(|| missing(line_no, "destination core"))?;
                let bw_text = parts.next().ok_or_else(|| missing(line_no, "bandwidth"))?;
                if parts.next().is_some() {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "`comm` takes src dst bandwidth".into(),
                    });
                }
                let bandwidth: f64 = bw_text.parse().map_err(|_| ParseError::Syntax {
                    line: line_no,
                    message: format!("invalid bandwidth `{bw_text}`"),
                })?;
                let src_id = intern(&mut graph, &mut ids, src);
                let dst_id = intern(&mut graph, &mut ids, dst);
                graph
                    .add_comm(src_id, dst_id, bandwidth)
                    .map_err(|source| ParseError::Graph { line: line_no, source })?;
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword `{other}` (expected `core` or `comm`)"),
                });
            }
        }
    }
    if !saw_content {
        return Err(ParseError::Empty);
    }
    Ok(graph)
}

/// Writes a core graph in the format [`parse_core_graph`] reads.
pub fn write_core_graph(graph: &CoreGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for core in graph.cores() {
        let _ = writeln!(out, "core {}", graph.name(core));
    }
    for (_, e) in graph.edges() {
        let _ = writeln!(out, "comm {} {} {}", graph.name(e.src), graph.name(e.dst), e.bandwidth);
    }
    out
}

/// Most grid axes a `mesh`/`torus` declaration may spell out. The `Grid`
/// type itself is rank-agnostic; the cap is parser policy so malformed
/// legacy 2-D lines fail loudly instead of becoming huge N-D grids.
pub const MAX_GRID_RANK: usize = 4;

/// Largest per-axis extent a declaration may spell out — far beyond any
/// realistic NoC radix, but well below bandwidth-scale numbers, so a
/// legacy `mesh W H BW <junk>` line (where the old parser ignored
/// trailing tokens) errors on `BW` being read as an extent instead of
/// silently building a grid with a bandwidth-sized axis.
pub const MAX_GRID_EXTENT: usize = 512;

/// Parses the topology format described in the [module docs](self).
///
/// # Errors
///
/// [`ParseError`] on malformed input, duplicate topology declarations or
/// invalid link records.
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    #[derive(Debug)]
    enum Decl {
        Mesh(Vec<usize>, f64),
        Torus(Vec<usize>, f64),
        Custom(usize),
    }
    let mut decl: Option<(usize, Decl)> = None;
    let mut links: Vec<(usize, NodeId, NodeId, f64)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line");
        match keyword {
            "mesh" | "torus" => {
                if decl.is_some() {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "topology already declared".into(),
                    });
                }
                // At least two extents followed by the bandwidth: the last
                // numeric token is always the bandwidth, everything before
                // it a per-axis extent. Rank is capped so a stray trailing
                // number on a legacy `mesh W H BW` line is a loud error,
                // never a silently reinterpreted (and possibly enormous)
                // higher-rank grid.
                let numbers: Vec<&str> = parts.collect();
                if numbers.len() < 3 || numbers.len() > MAX_GRID_RANK + 1 {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: format!(
                            "`{keyword}` takes 2 to {MAX_GRID_RANK} extents and a link bandwidth"
                        ),
                    });
                }
                let mut dims = Vec::with_capacity(numbers.len() - 1);
                for text in &numbers[..numbers.len() - 1] {
                    let extent: usize = text.parse().map_err(|_| ParseError::Syntax {
                        line: line_no,
                        message: format!("invalid extent `{text}`"),
                    })?;
                    if extent == 0 {
                        return Err(ParseError::Syntax {
                            line: line_no,
                            message: "dimensions must be non-zero".into(),
                        });
                    }
                    if extent > MAX_GRID_EXTENT {
                        return Err(ParseError::Syntax {
                            line: line_no,
                            message: format!(
                                "extent {extent} exceeds the maximum {MAX_GRID_EXTENT} \
(is it a stray bandwidth?)"
                            ),
                        });
                    }
                    dims.push(extent);
                }
                let bw_text = numbers[numbers.len() - 1];
                let bw: f64 = bw_text.parse().map_err(|_| ParseError::Syntax {
                    line: line_no,
                    message: format!("invalid link bandwidth `{bw_text}`"),
                })?;
                if !(bw.is_finite() && bw > 0.0) {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: format!("invalid link bandwidth {bw}"),
                    });
                }
                let d =
                    if keyword == "mesh" { Decl::Mesh(dims, bw) } else { Decl::Torus(dims, bw) };
                decl = Some((line_no, d));
            }
            "custom" => {
                if decl.is_some() {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "topology already declared".into(),
                    });
                }
                let n = parse_num::<usize>(&mut parts, line_no, "node count")?;
                decl = Some((line_no, Decl::Custom(n)));
            }
            "link" => {
                let src = parse_num::<usize>(&mut parts, line_no, "source node")?;
                let dst = parse_num::<usize>(&mut parts, line_no, "destination node")?;
                let cap = parse_num::<f64>(&mut parts, line_no, "capacity")?;
                links.push((line_no, NodeId::new(src), NodeId::new(dst), cap));
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword `{other}` (expected mesh/torus/custom/link)"),
                });
            }
        }
    }

    let Some((decl_line, decl)) = decl else {
        return Err(ParseError::Empty);
    };
    match decl {
        Decl::Mesh(dims, bw) => {
            reject_links(&links, "mesh")?;
            Topology::mesh_nd(&dims, bw)
                .map_err(|source| ParseError::Graph { line: decl_line, source })
        }
        Decl::Torus(dims, bw) => {
            reject_links(&links, "torus")?;
            Topology::torus_nd(&dims, bw)
                .map_err(|source| ParseError::Graph { line: decl_line, source })
        }
        Decl::Custom(n) => {
            Topology::custom(n, links.iter().map(|&(_, s, d, c)| (s, d, c))).map_err(|source| {
                // Attribute the failure to the first link line (or the
                // declaration when there are no links).
                let line = links.first().map_or(decl_line, |&(l, ..)| l);
                ParseError::Graph { line, source }
            })
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn missing(line: usize, what: &str) -> ParseError {
    ParseError::Syntax { line, message: format!("missing {what}") }
}

fn intern(graph: &mut CoreGraph, ids: &mut BTreeMap<String, CoreId>, name: &str) -> CoreId {
    if let Some(&id) = ids.get(name) {
        return id;
    }
    let id = graph.add_core(name);
    ids.insert(name.to_string(), id);
    id
}

fn parse_num<T: std::str::FromStr>(
    parts: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let text = parts.next().ok_or_else(|| missing(line, what))?;
    text.parse()
        .map_err(|_| ParseError::Syntax { line, message: format!("invalid {what} `{text}`") })
}

fn reject_links(links: &[(usize, NodeId, NodeId, f64)], kind: &str) -> Result<(), ParseError> {
    if let Some(&(line, ..)) = links.first() {
        return Err(ParseError::Syntax {
            line,
            message: format!("`link` records are only valid for custom topologies, not {kind}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_explicit_and_implicit_cores() {
        let g =
            parse_core_graph("# demo\ncore a\ncomm a b 70\ncomm b c 30.5  # trailing comment\n")
                .unwrap();
        assert_eq!(g.core_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let a = g.cores().find(|&c| g.name(c) == "a").unwrap();
        let b = g.cores().find(|&c| g.name(c) == "b").unwrap();
        assert_eq!(g.edge(g.find_edge(a, b).unwrap()).bandwidth.to_f64(), 70.0);
    }

    #[test]
    fn core_graph_round_trips() {
        let original =
            crate::random::RandomGraphConfig { cores: 12, ..Default::default() }.generate(3);
        let text = write_core_graph(&original);
        let parsed = parse_core_graph(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_bad_syntax_with_line_numbers() {
        let err = parse_core_graph("core a\nfrobnicate x\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::Syntax {
                line: 2,
                message: "unknown keyword `frobnicate` (expected `core` or `comm`)".into()
            }
        );
        let err = parse_core_graph("comm a b not-a-number\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
        let err = parse_core_graph("core a\ncore a\n").unwrap_err();
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn rejects_semantic_errors_via_graph_layer() {
        let err = parse_core_graph("comm a a 5\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph { line: 1, .. }));
        let err = parse_core_graph("comm a b 5\ncomm a b 6\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Graph { line: 2, source: GraphError::DuplicateEdge(..) }
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(parse_core_graph("# only comments\n\n").unwrap_err(), ParseError::Empty);
        assert_eq!(parse_topology("").unwrap_err(), ParseError::Empty);
    }

    #[test]
    fn parses_mesh_topology() {
        let t = parse_topology("mesh 4 3 1000\n").unwrap();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.kind(), &crate::TopologyKind::Grid(crate::Grid::mesh(&[4, 3]).unwrap()));
        let (_, link) = t.links().next().unwrap();
        assert_eq!(link.capacity.to_f64(), 1000.0);
    }

    #[test]
    fn parses_torus_topology() {
        let t = parse_topology("# fabric\ntorus 3 3 500\n").unwrap();
        assert_eq!(t.kind(), &crate::TopologyKind::Grid(crate::Grid::torus(&[3, 3]).unwrap()));
    }

    #[test]
    fn parses_3d_grid_topologies() {
        let t = parse_topology("mesh 4 4 2 1000\n").unwrap();
        assert_eq!(t.node_count(), 32);
        assert_eq!(t.kind().describe(), "mesh 4x4x2");
        let t = parse_topology("torus 3 3 3 500\n").unwrap();
        assert_eq!(t.node_count(), 27);
        assert_eq!(t.kind().describe(), "torus 3x3x3");
    }

    #[test]
    fn grid_topology_validation_errors() {
        // Too few numbers: extents + bandwidth are both mandatory.
        assert!(parse_topology("mesh 4 1000\n").unwrap_err().to_string().contains("2 to 4"));
        // A stray trailing number on a legacy 2-D line must fail loudly,
        // not silently declare a rank-4 grid with bandwidth 500...
        assert!(parse_topology("mesh 4 4 1000 500 2 2\n")
            .unwrap_err()
            .to_string()
            .contains("2 to 4"));
        // ...and a bandwidth read as an extent trips the extent cap
        // instead of building a 16,000-node `mesh 4x4x1000` at 500 MB/s.
        assert!(parse_topology("mesh 4 4 1000 500\n")
            .unwrap_err()
            .to_string()
            .contains("stray bandwidth"));
        // Zero extents and non-positive bandwidths are rejected.
        assert!(parse_topology("mesh 0 4 100\n")
            .unwrap_err()
            .to_string()
            .contains("dimensions must be non-zero"));
        assert!(parse_topology("mesh 4 4 0\n")
            .unwrap_err()
            .to_string()
            .contains("invalid link bandwidth"));
        assert!(parse_topology("mesh 4 4 -2\n")
            .unwrap_err()
            .to_string()
            .contains("invalid link bandwidth"));
    }

    #[test]
    fn parses_custom_topology_with_links() {
        let t = parse_topology("custom 3\nlink 0 1 100\nlink 1 2 200\nlink 2 0 300\n").unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn mesh_with_link_records_is_rejected() {
        let err = parse_topology("mesh 2 2 100\nlink 0 1 50\n").unwrap_err();
        assert!(err.to_string().contains("only valid for custom"));
    }

    #[test]
    fn double_declaration_is_rejected() {
        let err = parse_topology("mesh 2 2 100\ntorus 2 2 100\n").unwrap_err();
        assert!(err.to_string().contains("already declared"));
    }

    #[test]
    fn custom_topology_semantic_errors_carry_line() {
        let err = parse_topology("custom 2\nlink 0 9 10\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph { line: 2, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_core_graph("core\n").unwrap_err();
        assert_eq!(err.to_string(), "line 1: `core` needs a name");
    }
}
