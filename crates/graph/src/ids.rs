//! Typed index newtypes shared across the workspace.
//!
//! All graph containers are arena-style `Vec`s; these newtypes keep core
//! indices, topology-node indices, core-graph edge indices and topology-link
//! indices from being mixed up (C-NEWTYPE).

use std::fmt;

macro_rules! index_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32` (graphs in this
            /// workspace are far below that bound).
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "index overflows u32");
                Self(index as u32)
            }

            /// Returns the raw index for slicing into arena vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

index_newtype!(
    /// Identifier of a core (vertex of the core graph `G(V, E)`).
    CoreId,
    "v"
);
index_newtype!(
    /// Identifier of a directed core-graph edge (a commodity source).
    EdgeId,
    "e"
);
index_newtype!(
    /// Identifier of a NoC node (vertex of the topology graph `P(U, F)`).
    NodeId,
    "u"
);
index_newtype!(
    /// Identifier of a directed NoC link (edge of the topology graph).
    LinkId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        for raw in [0usize, 1, 17, 65_535] {
            assert_eq!(CoreId::new(raw).index(), raw);
            assert_eq!(EdgeId::new(raw).index(), raw);
            assert_eq!(NodeId::new(raw).index(), raw);
            assert_eq!(LinkId::new(raw).index(), raw);
        }
    }

    #[test]
    fn ids_format_with_paper_prefixes() {
        assert_eq!(format!("{}", CoreId::new(3)), "v3");
        assert_eq!(format!("{}", NodeId::new(7)), "u7");
        assert_eq!(format!("{}", LinkId::new(2)), "f2");
        assert_eq!(format!("{:?}", EdgeId::new(0)), "e0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(CoreId::new(0) < CoreId::new(10));
    }

    #[test]
    fn usize_conversion_matches_index() {
        let id = NodeId::new(9);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 9);
    }

    #[test]
    #[should_panic(expected = "index overflows u32")]
    fn oversized_index_panics() {
        let _ = CoreId::new(u32::MAX as usize + 1);
    }
}
