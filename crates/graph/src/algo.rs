//! Graph algorithms over [`Topology`]: BFS hop counts and Dijkstra with
//! caller-supplied link weights (the engine inside the paper's
//! `shortestpath()` routine).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{LinkId, NodeId, Topology};

/// Total weight of a path found by [`dijkstra`].
pub type PathCost = f64;

/// Result of a successful [`dijkstra`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct DijkstraOutcome {
    /// Links of the path from source to destination, in travel order.
    pub links: Vec<LinkId>,
    /// Nodes visited, starting at the source and ending at the destination.
    pub nodes: Vec<NodeId>,
    /// Sum of the link weights along the path.
    pub cost: PathCost,
}

impl DijkstraOutcome {
    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Breadth-first hop distances from `source` to every node.
///
/// `result[i]` is `None` when node `i` is unreachable.
pub fn bfs_hops(topology: &Topology, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; topology.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()].expect("queued nodes have distances");
        for (_, link) in topology.out_links(n) {
            let entry = &mut dist[link.dst.index()];
            if entry.is_none() {
                *entry = Some(d + 1);
                queue.push_back(link.dst);
            }
        }
    }
    dist
}

/// Heap entry ordered as a min-heap on `cost`, tie-broken on node id for
/// determinism across runs.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest cost first.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("link weights are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `source` to `dest` using `weight(link)` as
/// the cost of each directed link, considering only links for which
/// `allowed(link)` is true.
///
/// Weights must be finite and non-negative. Returns `None` when `dest` is
/// unreachable through allowed links. Ties between equal-cost paths resolve
/// deterministically (lowest node id expanded first, links relaxed in
/// adjacency order).
///
/// This is the search primitive of the paper's `shortestpath()` routine:
/// NMAP calls it on the *quadrant graph* of each commodity with
/// load-dependent weights.
// lint: allow(f64-api) — generic edge weights: callers choose the cost
// dimension (hops, load, …) via the `weight` closure.
pub fn dijkstra<W, A>(
    topology: &Topology,
    source: NodeId,
    dest: NodeId,
    mut weight: W,
    mut allowed: A,
) -> Option<DijkstraOutcome>
where
    W: FnMut(LinkId) -> f64,
    A: FnMut(LinkId) -> bool,
{
    let n = topology.node_count();
    debug_assert!(source.index() < n && dest.index() < n);
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { cost: 0.0, node: source });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == dest {
            break;
        }
        for (id, link) in topology.out_links(node) {
            if !allowed(id) {
                continue;
            }
            let w = weight(id);
            debug_assert!(w.is_finite() && w >= 0.0, "invalid link weight {w}");
            let cand = cost + w;
            if cand < dist[link.dst.index()] {
                dist[link.dst.index()] = cand;
                prev[link.dst.index()] = Some(id);
                heap.push(HeapEntry { cost: cand, node: link.dst });
            }
        }
    }

    if !dist[dest.index()].is_finite() {
        return None;
    }

    // Reconstruct.
    let mut links = Vec::new();
    let mut nodes = vec![dest];
    let mut cursor = dest;
    while cursor != source {
        let via = prev[cursor.index()].expect("path exists");
        links.push(via);
        cursor = topology.link(via).src;
        nodes.push(cursor);
    }
    links.reverse();
    nodes.reverse();
    Some(DijkstraOutcome { links, nodes, cost: dist[dest.index()] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn bfs_matches_manhattan_on_mesh() {
        let m = Topology::mesh(4, 3, 1.0);
        let src = m.node_at(0, 0).unwrap();
        let hops = bfs_hops(&m, src);
        for node in m.nodes() {
            assert_eq!(hops[node.index()], Some(m.hop_distance(src, node)));
        }
    }

    #[test]
    fn bfs_reports_unreachable() {
        let t = Topology::custom(3, [(NodeId::new(0), NodeId::new(1), 1.0)]).unwrap();
        let hops = bfs_hops(&t, NodeId::new(0));
        assert_eq!(hops, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn dijkstra_unit_weights_equals_hop_distance() {
        let m = Topology::mesh(4, 4, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(3, 2).unwrap();
        let out = dijkstra(&m, a, b, |_| 1.0, |_| true).unwrap();
        assert_eq!(out.hops(), m.hop_distance(a, b));
        assert_eq!(out.cost, m.hop_distance(a, b) as f64);
        assert_eq!(out.nodes.first(), Some(&a));
        assert_eq!(out.nodes.last(), Some(&b));
        assert_eq!(out.nodes.len(), out.links.len() + 1);
    }

    #[test]
    fn dijkstra_trivial_source_equals_dest() {
        let m = Topology::mesh(2, 2, 1.0);
        let a = m.node_at(1, 1).unwrap();
        let out = dijkstra(&m, a, a, |_| 1.0, |_| true).unwrap();
        assert_eq!(out.hops(), 0);
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.nodes, vec![a]);
    }

    #[test]
    fn dijkstra_avoids_heavy_links() {
        // 1x3 path: 0 - 1 - 2 plus expensive detour impossible; instead use
        // 2x2 mesh and make the direct link costly.
        let m = Topology::mesh(2, 2, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(1, 0).unwrap();
        let direct = m.find_link(a, b).unwrap();
        let out = dijkstra(&m, a, b, |l| if l == direct { 10.0 } else { 1.0 }, |_| true).unwrap();
        // Detour via (0,1) and (1,1): 3 hops of weight 1 < direct 10.
        assert_eq!(out.hops(), 3);
        assert_eq!(out.cost, 3.0);
    }

    #[test]
    fn dijkstra_respects_allowed_filter() {
        let m = Topology::mesh(3, 1, 1.0);
        let a = NodeId::new(0);
        let c = NodeId::new(2);
        let forbidden = m.find_link(NodeId::new(1), c).unwrap();
        assert!(dijkstra(&m, a, c, |_| 1.0, |l| l != forbidden).is_none());
    }

    #[test]
    fn dijkstra_handles_zero_weights() {
        let m = Topology::mesh(3, 3, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(2, 2).unwrap();
        let out = dijkstra(&m, a, b, |_| 0.0, |_| true).unwrap();
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.nodes.first(), Some(&a));
        assert_eq!(out.nodes.last(), Some(&b));
    }

    #[test]
    fn dijkstra_is_deterministic() {
        let m = Topology::mesh(5, 5, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(4, 4).unwrap();
        let p1 = dijkstra(&m, a, b, |_| 1.0, |_| true).unwrap();
        let p2 = dijkstra(&m, a, b, |_| 1.0, |_| true).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn path_links_are_consistent_with_nodes() {
        let m = Topology::mesh(4, 4, 1.0);
        let a = m.node_at(1, 0).unwrap();
        let b = m.node_at(2, 3).unwrap();
        let out = dijkstra(&m, a, b, |_| 1.0, |_| true).unwrap();
        for (i, &link) in out.links.iter().enumerate() {
            let l = m.link(link);
            assert_eq!(l.src, out.nodes[i]);
            assert_eq!(l.dst, out.nodes[i + 1]);
        }
    }
}
