//! The **quadrant graph** `Q(d_k)` of a commodity (Section 5).
//!
//! For a commodity with source `s` and destination `t` on a mesh, the
//! shortest paths all lie inside the axis-aligned rectangle spanned by `s`
//! and `t`. We represent the quadrant as the DAG of *productive* links:
//! links `(u, v)` with `dist(v, t) = dist(u, t) - 1`. Every `s → t` path in
//! this DAG is a minimal path, so a shortest-path search over it always
//! returns a minimum-hop route — exactly what "single minimum-path routing"
//! requires — and restricting the split-traffic MCF to these links yields
//! the equal-hop-delay (low-jitter) NMAPTM variant of Equation 10.
//!
//! The definition via distances generalizes beyond 2-D meshes: on a torus
//! the quadrant follows the shorter wrap direction, on an N-dimensional
//! grid the "quadrant" is really the **orthant** spanned by the per-axis
//! productive directions (the same DAG-of-productive-links construction,
//! with distances summed axis by axis), and on custom topologies it
//! degenerates to the union of all BFS-minimal paths.

use crate::{bfs_hops, LinkId, NodeId, Topology, TopologyKind};

/// The set of productive links for one source/destination pair, plus the
/// membership test used by routing and the MCF builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadrantDag {
    source: NodeId,
    dest: NodeId,
    links: Vec<LinkId>,
    member: Vec<bool>,
}

impl QuadrantDag {
    /// Builds the quadrant DAG for the commodity `source → dest`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or (for custom topologies) if
    /// `dest` is unreachable from `source`.
    pub fn new(topology: &Topology, source: NodeId, dest: NodeId) -> Self {
        let links = quadrant_links(topology, source, dest);
        let mut member = vec![false; topology.link_count()];
        for &l in &links {
            member[l.index()] = true;
        }
        Self { source, dest, links, member }
    }

    /// Source node of the commodity.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Destination node of the commodity.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// All productive links, in topology order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// True if `link` is productive for this commodity.
    #[inline]
    pub fn contains(&self, link: LinkId) -> bool {
        self.member[link.index()]
    }
}

/// Computes the productive links of the quadrant `Q(source → dest)`:
/// all links `(u, v)` such that `dist(u, dest) = dist(v, dest) + 1` **and**
/// `u` lies on some minimal `source → dest` path (i.e.
/// `dist(source, u) + dist(u, dest) = dist(source, dest)`).
///
/// # Panics
///
/// Panics if either node is out of range, or the pair is disconnected in a
/// custom topology.
pub fn quadrant_links(topology: &Topology, source: NodeId, dest: NodeId) -> Vec<LinkId> {
    let (dist_to_dest, dist_from_source): (Vec<usize>, Vec<usize>) = match topology.kind() {
        TopologyKind::Grid(_) => (
            topology.nodes().map(|n| topology.hop_distance(n, dest)).collect(),
            topology.nodes().map(|n| topology.hop_distance(source, n)).collect(),
        ),
        TopologyKind::Custom => {
            // dist(n, dest) needs reverse BFS; compute via BFS from dest on
            // the reversed graph: approximate by running BFS from every node
            // is wasteful, so do a reverse traversal here.
            let mut rev = vec![None; topology.node_count()];
            rev[dest.index()] = Some(0usize);
            let mut queue = std::collections::VecDeque::from([dest]);
            while let Some(n) = queue.pop_front() {
                let d = rev[n.index()].expect("queued");
                for (_, l) in topology.in_links(n) {
                    if rev[l.src.index()].is_none() {
                        rev[l.src.index()] = Some(d + 1);
                        queue.push_back(l.src);
                    }
                }
            }
            let fwd = bfs_hops(topology, source);
            let total = fwd[dest.index()]
                .and_then(|a| rev[source.index()].map(|_| a))
                .unwrap_or_else(|| panic!("{}", crate::GraphError::Disconnected(source, dest)));
            let _ = total;
            let big = usize::MAX / 2;
            (
                rev.iter().map(|d| d.unwrap_or(big)).collect(),
                fwd.iter().map(|d| d.unwrap_or(big)).collect(),
            )
        }
    };

    let shortest = dist_from_source[dest.index()];
    topology
        .links()
        .filter_map(|(id, link)| {
            let u = link.src.index();
            let v = link.dst.index();
            let productive = dist_to_dest[u] == dist_to_dest[v].wrapping_add(1);
            let on_minimal_path = dist_from_source[u]
                .checked_add(dist_to_dest[u])
                .is_some_and(|total| total == shortest);
            (productive && on_minimal_path).then_some(id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    /// All quadrant links of a mesh commodity stay in the bounding box.
    #[test]
    fn mesh_quadrant_is_bounding_box() {
        let m = Topology::mesh(4, 4, 1.0);
        let s = m.node_at(1, 3).unwrap(); // v14-ish in paper numbering
        let t = m.node_at(2, 1).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        assert!(!q.links().is_empty());
        for &l in q.links() {
            let link = m.link(l);
            for node in [link.src, link.dst] {
                let (x, y) = m.coords(node);
                assert!((1..=2).contains(&x), "x {x} outside quadrant");
                assert!((1..=3).contains(&y), "y {y} outside quadrant");
            }
        }
    }

    /// Every maximal walk in the quadrant DAG from source reaches dest in
    /// exactly `dist` hops (equal-hop-delay property behind NMAPTM).
    #[test]
    fn all_quadrant_paths_are_minimal() {
        let m = Topology::mesh(5, 4, 1.0);
        let s = m.node_at(0, 0).unwrap();
        let t = m.node_at(3, 2).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        let want = m.hop_distance(s, t);
        // DFS over productive links counting depth.
        fn dfs(
            m: &Topology,
            q: &QuadrantDag,
            node: crate::NodeId,
            t: crate::NodeId,
            depth: usize,
            want: usize,
        ) {
            if node == t {
                assert_eq!(depth, want, "non-minimal quadrant path");
                return;
            }
            let mut found = false;
            for (id, l) in m.out_links(node) {
                if q.contains(id) {
                    found = true;
                    dfs(m, q, l.dst, t, depth + 1, want);
                }
            }
            assert!(found, "dead end inside quadrant at {node}");
        }
        dfs(&m, &q, s, t, 0, want);
    }

    /// On a 3-D grid the construction yields the orthant (axis-aligned
    /// box) spanned by the endpoints, and every walk stays minimal.
    #[test]
    fn orthant_on_3d_mesh_is_bounding_box_and_minimal() {
        let m = Topology::mesh_nd(&[4, 3, 2], 1.0).unwrap();
        let s = m.node_at_coords(&[0, 2, 1]).unwrap();
        let t = m.node_at_coords(&[2, 0, 0]).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        assert!(!q.links().is_empty());
        for &l in q.links() {
            let link = m.link(l);
            for node in [link.src, link.dst] {
                let c = m.grid_coords(node);
                assert!((0..=2).contains(&c[0]), "x {} outside orthant", c[0]);
                assert!((0..=2).contains(&c[1]), "y {} outside orthant", c[1]);
                assert!((0..=1).contains(&c[2]), "z {} outside orthant", c[2]);
            }
        }
        // Every maximal walk from s terminates at t in exactly dist hops.
        fn dfs(m: &Topology, q: &QuadrantDag, node: crate::NodeId, t: crate::NodeId, left: usize) {
            if node == t {
                assert_eq!(left, 0, "non-minimal orthant path");
                return;
            }
            assert!(left > 0, "walk overshot the hop budget at {node}");
            let mut found = false;
            for (id, l) in m.out_links(node) {
                if q.contains(id) {
                    found = true;
                    dfs(m, q, l.dst, t, left - 1);
                }
            }
            assert!(found, "dead end inside orthant at {node}");
        }
        dfs(&m, &q, s, t, m.hop_distance(s, t));
    }

    #[test]
    fn quadrant_link_count_on_mesh_rectangle() {
        // Rectangle (0,0)..(2,1): 3x2 block. Productive links: rightward
        // 2 per row * 2 rows = 4, downward 1 per column * 3 cols = 3.
        let m = Topology::mesh(4, 4, 1.0);
        let s = m.node_at(0, 0).unwrap();
        let t = m.node_at(2, 1).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        assert_eq!(q.links().len(), 7);
    }

    #[test]
    fn colinear_quadrant_is_a_single_path() {
        let m = Topology::mesh(4, 4, 1.0);
        let s = m.node_at(0, 2).unwrap();
        let t = m.node_at(3, 2).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        assert_eq!(q.links().len(), 3);
    }

    #[test]
    fn quadrant_on_torus_prefers_wrap_direction() {
        let t = Topology::torus(5, 5, 1.0);
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(4, 0).unwrap();
        let q = QuadrantDag::new(&t, a, b);
        // Minimal distance is 1 via the wrap link; the quadrant must be
        // exactly that link.
        assert_eq!(q.links().len(), 1);
        let l = t.link(q.links()[0]);
        assert_eq!((l.src, l.dst), (a, b));
    }

    #[test]
    fn quadrant_on_custom_topology_uses_bfs() {
        use crate::NodeId;
        // Diamond: 0->1->3, 0->2->3, plus slow edge 0->3 via 4 (longer).
        let t = Topology::custom(
            5,
            [
                (NodeId::new(0), NodeId::new(1), 1.0),
                (NodeId::new(0), NodeId::new(2), 1.0),
                (NodeId::new(1), NodeId::new(3), 1.0),
                (NodeId::new(2), NodeId::new(3), 1.0),
                (NodeId::new(0), NodeId::new(4), 1.0),
                (NodeId::new(4), NodeId::new(3), 1.0),
            ],
        )
        .unwrap();
        let q = QuadrantDag::new(&t, NodeId::new(0), NodeId::new(3));
        // 0->4->3 is also a 2-hop path, so 6 links qualify... wait: both
        // diamond arms and the 4-arm are 2 hops, so all 6 links qualify.
        assert_eq!(q.links().len(), 6);
    }

    #[test]
    fn contains_matches_link_list() {
        let m = Topology::mesh(4, 4, 1.0);
        let q = QuadrantDag::new(&m, m.node_at(0, 0).unwrap(), m.node_at(3, 3).unwrap());
        for (id, _) in m.links() {
            assert_eq!(q.contains(id), q.links().contains(&id));
        }
    }

    #[test]
    fn source_dest_accessors() {
        let m = Topology::mesh(2, 2, 1.0);
        let s = m.node_at(0, 0).unwrap();
        let t = m.node_at(1, 1).unwrap();
        let q = QuadrantDag::new(&m, s, t);
        assert_eq!(q.source(), s);
        assert_eq!(q.dest(), t);
    }
}
