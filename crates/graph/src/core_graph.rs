//! The application **core graph** `G(V, E)` of Definition 1.
//!
//! Vertices are IP cores; a directed edge `(v_i, v_j)` with weight
//! `comm_{i,j}` states that core `v_i` sends an average of `comm_{i,j}` MB/s
//! to core `v_j`. Each edge becomes one *commodity* `d_k` during mapping.

// lint: allow-file(hash-container) — the only hash container here is
// `edge_lookup`, a get/insert-only duplicate index that is never
// iterated, so its order cannot leak into results.
use std::collections::HashMap;

use noc_units::Mbps;

use crate::{CoreId, EdgeId, GraphError, Result};

/// A directed communication edge of the core graph: one commodity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreEdge {
    /// Source core `v_i`.
    pub src: CoreId,
    /// Destination core `v_j`.
    pub dst: CoreId,
    /// Average communication bandwidth `comm_{i,j}` in MB/s; this is the
    /// commodity value `vl(d_k)` of Equation 2. Finite and non-negative
    /// by construction ([`CoreGraph::add_comm`] validates).
    pub bandwidth: Mbps,
}

/// The application core graph `G(V, E)` (Definition 1 in the paper).
///
/// Construction is incremental: add cores with [`CoreGraph::add_core`], then
/// add weighted directed communication edges with [`CoreGraph::add_comm`].
///
/// # Example
///
/// ```
/// use noc_graph::CoreGraph;
///
/// let mut g = CoreGraph::new();
/// let vld = g.add_core("vld");
/// let rld = g.add_core("run-length-decoder");
/// g.add_comm(vld, rld, 70.0)?;
/// assert_eq!(g.core_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.total_bandwidth().to_f64(), 70.0);
/// # Ok::<(), noc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreGraph {
    names: Vec<String>,
    edges: Vec<CoreEdge>,
    /// Outgoing edge ids per core, in insertion order.
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per core, in insertion order.
    in_adj: Vec<Vec<EdgeId>>,
    /// Fast duplicate detection for `(src, dst)` pairs.
    edge_lookup: HashMap<(CoreId, CoreId), EdgeId>,
}

impl CoreGraph {
    /// Creates an empty core graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a core named `name` and returns its id.
    ///
    /// Names are labels for reporting only; they need not be unique.
    pub fn add_core(&mut self, name: impl Into<String>) -> CoreId {
        let id = CoreId::new(self.names.len());
        self.names.push(name.into());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed communication edge `src -> dst` carrying
    /// `bandwidth` MB/s and returns its id.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownCore`] if either endpoint was not added first.
    /// * [`GraphError::SelfLoop`] if `src == dst`.
    /// * [`GraphError::InvalidBandwidth`] if `bandwidth` is negative, NaN or
    ///   infinite.
    /// * [`GraphError::DuplicateEdge`] if `(src, dst)` already exists; sum
    ///   parallel demands before inserting.
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::new`.
    pub fn add_comm(&mut self, src: CoreId, dst: CoreId, bandwidth: f64) -> Result<EdgeId> {
        if src.index() >= self.names.len() {
            return Err(GraphError::UnknownCore(src));
        }
        if dst.index() >= self.names.len() {
            return Err(GraphError::UnknownCore(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        let bandwidth =
            Mbps::new(bandwidth).map_err(|_| GraphError::InvalidBandwidth(bandwidth))?;
        if self.edge_lookup.contains_key(&(src, dst)) {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(CoreEdge { src, dst, bandwidth });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.edge_lookup.insert((src, dst), id);
        Ok(id)
    }

    /// Number of cores `|V|`.
    pub fn core_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed communication edges `|E|` (= number of
    /// commodities).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the name given to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn name(&self, core: CoreId) -> &str {
        &self.names[core.index()]
    }

    /// Returns the edge record for `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge(&self, edge: EdgeId) -> CoreEdge {
        self.edges[edge.index()]
    }

    /// Looks up the directed edge `src -> dst`, if present.
    pub fn find_edge(&self, src: CoreId, dst: CoreId) -> Option<EdgeId> {
        self.edge_lookup.get(&(src, dst)).copied()
    }

    /// Iterates over all core ids `v_0, v_1, …`.
    pub fn cores(&self) -> impl ExactSizeIterator<Item = CoreId> + '_ {
        (0..self.names.len()).map(CoreId::new)
    }

    /// Iterates over all edges with their ids, in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, CoreEdge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId::new(i), *e))
    }

    /// Outgoing edges of `core`.
    pub fn out_edges(&self, core: CoreId) -> impl Iterator<Item = (EdgeId, CoreEdge)> + '_ {
        self.out_adj[core.index()].iter().map(move |&id| (id, self.edges[id.index()]))
    }

    /// Incoming edges of `core`.
    pub fn in_edges(&self, core: CoreId) -> impl Iterator<Item = (EdgeId, CoreEdge)> + '_ {
        self.in_adj[core.index()].iter().map(move |&id| (id, self.edges[id.index()]))
    }

    /// Total communication demand adjacent to `core` in the **undirected**
    /// view `S(A, B) = makeundirected(G)` used by `initialize()`:
    /// the sum of bandwidths of all edges entering or leaving the core.
    pub fn total_comm(&self, core: CoreId) -> Mbps {
        let out: Mbps = self.out_edges(core).map(|(_, e)| e.bandwidth).sum();
        let inn: Mbps = self.in_edges(core).map(|(_, e)| e.bandwidth).sum();
        out + inn
    }

    /// Undirected communication volume between `a` and `b`:
    /// `comm(a→b) + comm(b→a)`.
    pub fn comm_between(&self, a: CoreId, b: CoreId) -> Mbps {
        let ab = self.find_edge(a, b).map_or(Mbps::ZERO, |e| self.edges[e.index()].bandwidth);
        let ba = self.find_edge(b, a).map_or(Mbps::ZERO, |e| self.edges[e.index()].bandwidth);
        ab + ba
    }

    /// Sum of all edge bandwidths (aggregate application demand in MB/s).
    pub fn total_bandwidth(&self) -> Mbps {
        self.edges.iter().map(|e| e.bandwidth).sum()
    }

    /// The core with the largest total adjacent communication — the seed
    /// vertex `max_s` of `initialize()`. Ties break toward the lowest id so
    /// the algorithm is deterministic. Returns `None` on an empty graph.
    pub fn max_comm_core(&self) -> Option<CoreId> {
        self.cores().max_by(|&a, &b| {
            // `Mbps` is totally ordered (NaN unrepresentable), so no
            // partial_cmp/expect dance.
            self.total_comm(a).cmp(&self.total_comm(b)).then(b.cmp(&a)) // prefer the *lower* id on ties
        })
    }

    /// Edge ids sorted by decreasing bandwidth (the commodity ordering used
    /// by `shortestpath()`); ties break toward the lower edge id.
    pub fn edges_by_decreasing_bandwidth(&self) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = (0..self.edges.len()).map(EdgeId::new).collect();
        ids.sort_by(|&a, &b| {
            self.edges[b.index()].bandwidth.cmp(&self.edges[a.index()].bandwidth).then(a.cmp(&b))
        });
        ids
    }

    /// Checks whether the undirected view of the graph is connected.
    /// The empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        if self.names.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.names.len()];
        let mut stack = vec![CoreId::new(0)];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(v) = stack.pop() {
            let neighbours =
                self.out_edges(v).map(|(_, e)| e.dst).chain(self.in_edges(v).map(|(_, e)| e.src));
            for n in neighbours {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    visited += 1;
                    stack.push(n);
                }
            }
        }
        visited == self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (CoreGraph, CoreId, CoreId, CoreId) {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(b, c, 50.0).unwrap();
        g.add_comm(c, a, 25.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn counts_and_lookup() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.core_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.find_edge(a, b).is_some());
        assert!(g.find_edge(b, a).is_none());
        assert_eq!(g.name(c), "c");
    }

    #[test]
    fn total_comm_sums_both_directions() {
        let (g, a, b, _) = triangle();
        // a: out 100 (a->b), in 25 (c->a)
        assert_eq!(g.total_comm(a).to_f64(), 125.0);
        // b: out 50, in 100
        assert_eq!(g.total_comm(b).to_f64(), 150.0);
    }

    #[test]
    fn comm_between_is_symmetric() {
        let (mut g, a, b, _) = triangle();
        assert_eq!(g.comm_between(a, b).to_f64(), 100.0);
        assert_eq!(g.comm_between(b, a).to_f64(), 100.0);
        g.add_comm(b, a, 11.0).unwrap();
        assert_eq!(g.comm_between(a, b).to_f64(), 111.0);
    }

    #[test]
    fn max_comm_core_matches_paper_seed_rule() {
        let (g, _, b, _) = triangle();
        assert_eq!(g.max_comm_core(), Some(b));
        assert_eq!(CoreGraph::new().max_comm_core(), None);
    }

    #[test]
    fn max_comm_core_breaks_ties_toward_lower_id() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        g.add_comm(a, b, 10.0).unwrap();
        g.add_comm(c, d, 10.0).unwrap();
        assert_eq!(g.max_comm_core(), Some(a));
    }

    #[test]
    fn commodity_ordering_is_decreasing_and_stable() {
        let (g, _, _, _) = triangle();
        let order = g.edges_by_decreasing_bandwidth();
        let bws: Vec<f64> = order.iter().map(|&e| g.edge(e).bandwidth.to_f64()).collect();
        assert_eq!(bws, vec![100.0, 50.0, 25.0]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        assert_eq!(g.add_comm(a, a, 1.0), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let (mut g, a, b, _) = triangle();
        assert_eq!(g.add_comm(a, b, 1.0), Err(GraphError::DuplicateEdge(a, b)));
    }

    #[test]
    fn rejects_bad_bandwidth() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        assert!(matches!(g.add_comm(a, b, -1.0), Err(GraphError::InvalidBandwidth(_))));
        assert!(matches!(g.add_comm(a, b, f64::NAN), Err(GraphError::InvalidBandwidth(_))));
        assert!(matches!(g.add_comm(a, b, f64::INFINITY), Err(GraphError::InvalidBandwidth(_))));
    }

    #[test]
    fn rejects_unknown_core() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let ghost = CoreId::new(9);
        assert_eq!(g.add_comm(a, ghost, 1.0), Err(GraphError::UnknownCore(ghost)));
        assert_eq!(g.add_comm(ghost, a, 1.0), Err(GraphError::UnknownCore(ghost)));
    }

    #[test]
    fn zero_bandwidth_edges_are_allowed() {
        // Control edges of negligible rate may legitimately be modeled as 0.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        assert!(g.add_comm(a, b, 0.0).is_ok());
    }

    #[test]
    fn connectivity() {
        let (g, ..) = triangle();
        assert!(g.is_connected());
        let mut g2 = CoreGraph::new();
        g2.add_core("x");
        g2.add_core("y");
        assert!(!g2.is_connected());
        assert!(CoreGraph::new().is_connected());
    }

    #[test]
    fn adjacency_iterators_agree_with_edges() {
        let (g, a, b, c) = triangle();
        let outs: Vec<CoreId> = g.out_edges(a).map(|(_, e)| e.dst).collect();
        assert_eq!(outs, vec![b]);
        let ins: Vec<CoreId> = g.in_edges(a).map(|(_, e)| e.src).collect();
        assert_eq!(ins, vec![c]);
    }

    #[test]
    fn total_bandwidth_sums_all_edges() {
        let (g, ..) = triangle();
        assert_eq!(g.total_bandwidth().to_f64(), 175.0);
    }
}
