//! The **dimension-generic grid** behind mesh and torus topologies.
//!
//! The paper formulates NMAP for 2-D meshes, but nothing in the machinery
//! is inherently two-dimensional: hop distances, dimension-ordered
//! routing, quadrant (orthant) DAGs and the symmetry arguments all work
//! axis by axis. [`Grid`] captures exactly that per-axis structure — an
//! ordered list of [`Axis`] records, each an extent plus a wrap flag — so
//! a 2-D mesh is the `dims = [w, h]` special case and 3-D meshes/tori
//! (`WxHxD`) fall out of the same code paths.
//!
//! # Node numbering
//!
//! Nodes are numbered with **axis 0 varying fastest** (the row-major
//! `y * width + x` convention of the original 2-D code): the stride of
//! axis `i` is the product of the extents of axes `0..i`. All coordinate
//! conversions in this module follow that convention.
//!
//! # Wrap semantics
//!
//! An axis with `wrap = true` declares the torus wrap-around channel from
//! its last coordinate back to its first. The wrap is only *realized* —
//! both as a physical link and in distance computations — when the extent
//! exceeds 2; for extents 1 and 2 the wrap channel would duplicate an
//! existing one, so it is skipped (matching the original 2-D torus
//! constructor). The declared flag is still recorded: a `2x4` torus keeps
//! its torus identity even though its first axis gains no extra link.

use crate::{GraphError, Result};

/// One axis of a [`Grid`]: its extent (number of coordinates) and whether
/// it wraps around (torus channel from the last coordinate to the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Axis {
    /// Number of coordinates along this axis (must be non-zero).
    pub extent: usize,
    /// Declared wrap-around; realized only when `extent > 2` (see
    /// [`Axis::wraps`]).
    pub wrap: bool,
}

impl Axis {
    /// True when the wrap channel physically exists: declared *and* the
    /// extent is large enough that it would not duplicate a mesh channel.
    #[inline]
    pub fn wraps(&self) -> bool {
        self.wrap && self.extent > 2
    }

    /// Wrap-aware distance between two coordinates on this axis.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        if self.wraps() {
            d.min(self.extent - d)
        } else {
            d
        }
    }
}

/// A dimension-generic grid: per-axis extents and wrap flags.
///
/// Invariants (enforced by the constructors): at least one axis, and every
/// extent non-zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Grid {
    axes: Vec<Axis>,
}

impl Grid {
    /// Builds a grid from explicit axes.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTopology`] if `axes` is empty.
    /// * [`GraphError::ZeroExtent`] if any axis has extent 0.
    pub fn new(axes: Vec<Axis>) -> Result<Self> {
        if axes.is_empty() {
            return Err(GraphError::EmptyTopology);
        }
        for (i, axis) in axes.iter().enumerate() {
            if axis.extent == 0 {
                return Err(GraphError::ZeroExtent { axis: i });
            }
        }
        Ok(Self { axes })
    }

    /// An N-dimensional mesh: no axis wraps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid::new`].
    pub fn mesh(dims: &[usize]) -> Result<Self> {
        Self::new(dims.iter().map(|&extent| Axis { extent, wrap: false }).collect())
    }

    /// An N-dimensional torus: every axis wraps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid::new`].
    pub fn torus(dims: &[usize]) -> Result<Self> {
        Self::new(dims.iter().map(|&extent| Axis { extent, wrap: true }).collect())
    }

    /// Number of axes (2 for the paper's meshes, 3 for `WxHxD` grids).
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// The axes, in stride order (axis 0 varies fastest).
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The axis record of axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn axis(&self, i: usize) -> Axis {
        self.axes[i]
    }

    /// Total number of nodes (product of extents).
    pub fn node_count(&self) -> usize {
        self.axes.iter().map(|a| a.extent).product()
    }

    /// True when no axis declares a wrap (a pure mesh).
    pub fn is_mesh(&self) -> bool {
        self.axes.iter().all(|a| !a.wrap)
    }

    /// True when every axis declares a wrap (a full torus).
    pub fn is_torus(&self) -> bool {
        self.axes.iter().all(|a| a.wrap)
    }

    /// The node-index stride of axis `i` (product of the extents of axes
    /// `0..i`).
    pub fn stride(&self, i: usize) -> usize {
        self.axes[..i].iter().map(|a| a.extent).product()
    }

    /// The coordinate of node `index` along axis `i`.
    #[inline]
    pub fn coord(&self, index: usize, i: usize) -> usize {
        index / self.stride(i) % self.axes[i].extent
    }

    /// Decomposes a node index into its per-axis coordinates, writing them
    /// into `out` (resized to `rank()`).
    pub fn coords_into(&self, index: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut rest = index;
        for axis in &self.axes {
            out.push(rest % axis.extent);
            rest /= axis.extent;
        }
    }

    /// Decomposes a node index into a fresh coordinate vector.
    pub fn coords_of(&self, index: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.rank());
        self.coords_into(index, &mut out);
        out
    }

    /// Composes per-axis coordinates back into a node index. Returns
    /// `None` when `coords` has the wrong rank or a coordinate is out of
    /// range.
    pub fn index_of(&self, coords: &[usize]) -> Option<usize> {
        if coords.len() != self.rank() {
            return None;
        }
        let mut index = 0;
        let mut stride = 1;
        for (axis, &c) in self.axes.iter().zip(coords) {
            if c >= axis.extent {
                return None;
            }
            index += c * stride;
            stride *= axis.extent;
        }
        Some(index)
    }

    /// Wrap-aware grid distance between two node indices: the sum of the
    /// per-axis [`Axis::distance`]s (the closed form behind
    /// [`crate::Topology::hop_distance`] on grids).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (mut ra, mut rb, mut total) = (a, b, 0);
        for axis in &self.axes {
            total += axis.distance(ra % axis.extent, rb % axis.extent);
            ra /= axis.extent;
            rb /= axis.extent;
        }
        total
    }

    /// The `WxH`/`WxHxD` spelling of the extents, e.g. `4x4` or `4x4x2`
    /// (the grid-borne form of [`dims_label`]).
    pub fn dims_label(&self) -> String {
        let dims: Vec<usize> = self.axes.iter().map(|a| a.extent).collect();
        dims_label(&dims)
    }

    /// The family keyword of this grid: `mesh` when no axis wraps,
    /// `torus` when all do, `grid` for mixed wrap flags.
    pub fn kind_keyword(&self) -> &'static str {
        if self.is_mesh() {
            "mesh"
        } else if self.is_torus() {
            "torus"
        } else {
            "grid"
        }
    }

    /// Smallest near-cubic extents of the given rank holding at least
    /// `cores` nodes: start from the smallest cube `s^rank ≥ cores`, then
    /// shave axes (last axis first, as many coordinates as still fit) —
    /// the N-dimensional generalization of
    /// [`crate::Topology::fit_mesh_dims`], and identical to it at rank 2.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `rank == 0`.
    pub fn fit_dims(cores: usize, rank: usize) -> Vec<usize> {
        assert!(cores > 0, "need at least one core");
        assert!(rank > 0, "need at least one axis");
        let mut side = 1usize;
        while side.pow(rank as u32) < cores {
            side += 1;
        }
        let mut dims = vec![side; rank];
        for i in (0..rank).rev() {
            while dims[i] > 1 {
                dims[i] -= 1;
                if dims.iter().product::<usize>() < cores {
                    dims[i] += 1;
                    break;
                }
            }
        }
        dims
    }
}

/// The `WxH`/`WxHxD` spelling of a dimension list, e.g. `4x4` or `4x4x2`
/// — the one formatter behind grid labels and `.dse` topology spellings,
/// so the two surfaces cannot drift.
pub fn dims_label(dims: &[usize]) -> String {
    let parts: Vec<String> = dims.iter().map(usize::to_string).collect();
    parts.join("x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert_eq!(Grid::mesh(&[]), Err(GraphError::EmptyTopology));
        assert_eq!(Grid::mesh(&[4, 0, 2]), Err(GraphError::ZeroExtent { axis: 1 }));
        assert_eq!(Grid::torus(&[3, 0]), Err(GraphError::ZeroExtent { axis: 1 }));
        assert!(Grid::mesh(&[1]).is_ok());
    }

    #[test]
    fn node_count_is_extent_product() {
        assert_eq!(Grid::mesh(&[4, 4]).unwrap().node_count(), 16);
        assert_eq!(Grid::mesh(&[4, 4, 2]).unwrap().node_count(), 32);
        assert_eq!(Grid::torus(&[5]).unwrap().node_count(), 5);
    }

    #[test]
    fn coords_round_trip_axis0_fastest() {
        let g = Grid::mesh(&[4, 3, 2]).unwrap();
        assert_eq!(g.coords_of(0), vec![0, 0, 0]);
        assert_eq!(g.coords_of(1), vec![1, 0, 0]);
        assert_eq!(g.coords_of(4), vec![0, 1, 0]);
        assert_eq!(g.coords_of(12), vec![0, 0, 1]);
        for i in 0..g.node_count() {
            assert_eq!(g.index_of(&g.coords_of(i)), Some(i));
            for axis in 0..g.rank() {
                assert_eq!(g.coord(i, axis), g.coords_of(i)[axis]);
            }
        }
        assert_eq!(g.index_of(&[4, 0, 0]), None, "coordinate out of range");
        assert_eq!(g.index_of(&[0, 0]), None, "wrong rank");
    }

    #[test]
    fn strides_follow_row_major_convention() {
        let g = Grid::mesh(&[4, 3, 2]).unwrap();
        assert_eq!(g.stride(0), 1);
        assert_eq!(g.stride(1), 4);
        assert_eq!(g.stride(2), 12);
    }

    #[test]
    fn distance_sums_wrap_aware_axis_distances() {
        let mesh = Grid::mesh(&[4, 4, 4]).unwrap();
        // (0,0,0) -> (3,3,3)
        assert_eq!(mesh.distance(0, 63), 9);
        let torus = Grid::torus(&[4, 4, 4]).unwrap();
        assert_eq!(torus.distance(0, 63), 3, "every axis wraps to distance 1");
        // Size-2 wrap axes add nothing.
        let squat = Grid::torus(&[2, 5]).unwrap();
        assert_eq!(squat.distance(0, 1), 1);
        assert!(!squat.axis(0).wraps());
        assert!(squat.axis(1).wraps());
    }

    #[test]
    fn labels_and_keywords() {
        assert_eq!(Grid::mesh(&[4, 4]).unwrap().dims_label(), "4x4");
        assert_eq!(Grid::torus(&[4, 4, 2]).unwrap().dims_label(), "4x4x2");
        assert_eq!(Grid::mesh(&[3, 3]).unwrap().kind_keyword(), "mesh");
        assert_eq!(Grid::torus(&[3, 3]).unwrap().kind_keyword(), "torus");
        let mixed =
            Grid::new(vec![Axis { extent: 4, wrap: true }, Axis { extent: 4, wrap: false }])
                .unwrap();
        assert_eq!(mixed.kind_keyword(), "grid");
    }

    #[test]
    fn fit_dims_matches_fit_mesh_dims_at_rank_2() {
        for cores in 1..=40 {
            let (w, h) = crate::Topology::fit_mesh_dims(cores);
            assert_eq!(Grid::fit_dims(cores, 2), vec![w, h], "cores {cores}");
        }
    }

    #[test]
    fn fit_dims_rank_3_is_near_cubic() {
        assert_eq!(Grid::fit_dims(16, 3), vec![3, 3, 2]);
        assert_eq!(Grid::fit_dims(27, 3), vec![3, 3, 3]);
        assert_eq!(Grid::fit_dims(28, 3), vec![4, 4, 2]);
        assert_eq!(Grid::fit_dims(64, 3), vec![4, 4, 4]);
        assert_eq!(Grid::fit_dims(1, 3), vec![1, 1, 1]);
        for cores in 1..=80 {
            let dims = Grid::fit_dims(cores, 3);
            assert!(dims.iter().product::<usize>() >= cores, "cores {cores}: {dims:?}");
        }
    }
}
