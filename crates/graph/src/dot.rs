//! Graphviz DOT exporters for inspection and documentation figures.
//!
//! These mirror the paper's Figure 2: the core graph (2a), the NoC graph
//! (2b) and a mapping of one onto the other (2c).

use std::fmt::Write as _;

use crate::{CoreGraph, CoreId, NodeId, Topology};

/// Renders a core graph as a DOT digraph with bandwidths as edge labels.
///
/// # Example
///
/// ```
/// use noc_graph::{CoreGraph, core_graph_dot};
/// let mut g = CoreGraph::new();
/// let a = g.add_core("a");
/// let b = g.add_core("b");
/// g.add_comm(a, b, 70.0)?;
/// let dot = core_graph_dot(&g);
/// assert!(dot.contains("\"a\" -> \"b\""));
/// # Ok::<(), noc_graph::GraphError>(())
/// ```
pub fn core_graph_dot(graph: &CoreGraph) -> String {
    let mut out = String::from("digraph core_graph {\n  rankdir=LR;\n");
    for core in graph.cores() {
        let _ = writeln!(out, "  \"{}\" [shape=box];", escape(graph.name(core)));
    }
    for (_, e) in graph.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{:.0}\"];",
            escape(graph.name(e.src)),
            escape(graph.name(e.dst)),
            e.bandwidth
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a topology as a DOT digraph with grid positions.
pub fn topology_dot(topology: &Topology) -> String {
    let mut out = String::from("digraph topology {\n  node [shape=circle];\n");
    for node in topology.nodes() {
        let (x, y) = layout_pos(topology, node);
        let _ = writeln!(out, "  \"{node}\" [pos=\"{x},{y}!\"];");
    }
    for (_, link) in topology.links() {
        let _ = writeln!(out, "  \"{}\" -> \"{}\";", link.src, link.dst);
    }
    out.push_str("}\n");
    out
}

/// Renders a mapping (core → node assignment) over the topology grid, like
/// the paper's Figure 2(c).
///
/// `placement[i]` gives the node hosting core `i`; cores and nodes not in
/// the assignment render as empty circles.
pub fn mapping_dot(
    graph: &CoreGraph,
    topology: &Topology,
    placement: &[(CoreId, NodeId)],
) -> String {
    let mut label = vec![String::new(); topology.node_count()];
    for &(core, node) in placement {
        label[node.index()] = graph.name(core).to_string();
    }
    let mut out = String::from("digraph mapping {\n  node [shape=box];\n");
    for node in topology.nodes() {
        let (x, y) = layout_pos(topology, node);
        let text = if label[node.index()].is_empty() {
            format!("{node}")
        } else {
            format!("{}\\n{node}", escape(&label[node.index()]))
        };
        let _ = writeln!(out, "  \"{node}\" [label=\"{text}\", pos=\"{x},{y}!\"];");
    }
    for (_, link) in topology.links() {
        if link.src.index() < link.dst.index() {
            let _ = writeln!(out, "  \"{}\" -> \"{}\" [dir=both];", link.src, link.dst);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// 2-D drawing position of a node: grid coordinates for rank-≤2 grids and
/// custom topologies; higher-rank grids unfold layer by layer along the x
/// axis (layer `z` shifts right by `z * (width + 1)`), so a 3-D grid
/// renders as a row of its 2-D slices.
fn layout_pos(topology: &Topology, node: NodeId) -> (usize, usize) {
    match topology.grid_structure() {
        Some(grid) if grid.rank() > 2 => {
            let c = topology.grid_coords(node);
            let layer = node.index() / (grid.axis(0).extent * grid.axis(1).extent);
            (c[0] + layer * (grid.axis(0).extent + 1), c[1])
        }
        _ => topology.coords(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CoreGraph, CoreId, CoreId) {
        let mut g = CoreGraph::new();
        let a = g.add_core("vld");
        let b = g.add_core("run \"le\" dec");
        g.add_comm(a, b, 70.0).unwrap();
        (g, a, b)
    }

    #[test]
    fn core_graph_dot_contains_edges_and_labels() {
        let (g, ..) = sample();
        let dot = core_graph_dot(&g);
        assert!(dot.starts_with("digraph core_graph {"));
        assert!(dot.contains("label=\"70\""));
        assert!(dot.contains("run \\\"le\\\" dec"), "quotes must be escaped: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn topology_dot_places_nodes_on_grid() {
        let t = Topology::mesh(2, 2, 1.0);
        let dot = topology_dot(&t);
        assert!(dot.contains("pos=\"1,1!\""));
        assert_eq!(dot.matches(" -> ").count(), t.link_count());
    }

    #[test]
    fn mapping_dot_annotates_assigned_nodes() {
        let (g, a, b) = sample();
        let t = Topology::mesh(2, 2, 1.0);
        let dot = mapping_dot(&g, &t, &[(a, NodeId::new(0)), (b, NodeId::new(3))]);
        assert!(dot.contains("vld\\nu0"));
        assert!(dot.contains("u3"));
        // Channels render once (dir=both), not twice.
        assert_eq!(dot.matches(" -> ").count(), t.link_count() / 2);
    }
}
