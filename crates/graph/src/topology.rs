//! The **NoC topology graph** `P(U, F)` of Definition 2.
//!
//! Vertices are network nodes (router + network-interface cross-points);
//! a directed edge `(u_i, u_j)` with weight `bw_{i,j}` is a physical link
//! with that much bandwidth capacity. The paper restricts itself to 2-D
//! meshes and tori; this module supports both plus arbitrary custom
//! topologies (the "future work" extension of Section 8).

use std::collections::HashMap;

use crate::{GraphError, LinkId, NodeId, Result};

/// The family a [`Topology`] was constructed from.
///
/// Mesh and torus carry their dimensions so hop distances and quadrant
/// graphs can use closed forms; [`TopologyKind::Custom`] falls back to BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// `width × height` 2-D mesh.
    Mesh {
        /// Number of columns.
        width: usize,
        /// Number of rows.
        height: usize,
    },
    /// `width × height` 2-D torus (mesh plus wrap-around links).
    Torus {
        /// Number of columns.
        width: usize,
        /// Number of rows.
        height: usize,
    },
    /// Arbitrary directed graph built with [`Topology::custom`].
    Custom,
}

/// A directed physical link of the NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Upstream node `u_i`.
    pub src: NodeId,
    /// Downstream node `u_j`.
    pub dst: NodeId,
    /// Capacity `bw_{i,j}` in MB/s.
    pub capacity: f64,
}

/// The NoC topology graph `P(U, F)` (Definition 2 in the paper).
///
/// # Example
///
/// ```
/// use noc_graph::{Topology, NodeId};
///
/// let mesh = Topology::mesh(4, 4, 1_000.0);
/// assert_eq!(mesh.node_count(), 16);
/// // A 4x4 mesh has 24 bidirectional channels = 48 directed links.
/// assert_eq!(mesh.link_count(), 48);
/// assert_eq!(mesh.hop_distance(NodeId::new(0), NodeId::new(15)), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    node_count: usize,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkId>>,
    in_links: Vec<Vec<LinkId>>,
    link_lookup: HashMap<(NodeId, NodeId), LinkId>,
    /// Node coordinates; synthesized (i, 0) for custom topologies.
    coords: Vec<(usize, usize)>,
}

impl Topology {
    /// Builds a `width × height` mesh whose links all have capacity
    /// `link_capacity` MB/s. Nodes are numbered row-major: node `(x, y)` is
    /// `y * width + x`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0` or if `link_capacity` is not a
    /// finite non-negative number. Use [`Topology::custom`] for fallible
    /// construction.
    pub fn mesh(width: usize, height: usize, link_capacity: f64) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(
            link_capacity.is_finite() && link_capacity >= 0.0,
            "link capacity must be finite and non-negative"
        );
        let mut t = Self::empty(TopologyKind::Mesh { width, height }, width * height);
        for y in 0..height {
            for x in 0..width {
                t.coords[y * width + x] = (x, y);
            }
        }
        for y in 0..height {
            for x in 0..width {
                let here = NodeId::new(y * width + x);
                if x + 1 < width {
                    let right = NodeId::new(y * width + x + 1);
                    t.push_bidirectional(here, right, link_capacity);
                }
                if y + 1 < height {
                    let down = NodeId::new((y + 1) * width + x);
                    t.push_bidirectional(here, down, link_capacity);
                }
            }
        }
        t
    }

    /// Builds a `width × height` torus (mesh plus wrap-around links), all
    /// links with capacity `link_capacity` MB/s.
    ///
    /// Dimensions of size 1 or 2 get no wrap link in that dimension (it
    /// would duplicate an existing channel).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Topology::mesh`].
    pub fn torus(width: usize, height: usize, link_capacity: f64) -> Self {
        let mut t = Self::mesh(width, height, link_capacity);
        t.kind = TopologyKind::Torus { width, height };
        if width > 2 {
            for y in 0..height {
                let left = NodeId::new(y * width);
                let right = NodeId::new(y * width + width - 1);
                t.push_bidirectional(right, left, link_capacity);
            }
        }
        if height > 2 {
            for x in 0..width {
                let top = NodeId::new(x);
                let bottom = NodeId::new((height - 1) * width + x);
                t.push_bidirectional(bottom, top, link_capacity);
            }
        }
        t
    }

    /// Builds an arbitrary topology from `node_count` nodes and directed
    /// `(src, dst, capacity)` links.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTopology`] if `node_count == 0`.
    /// * [`GraphError::UnknownNode`] for out-of-range endpoints.
    /// * [`GraphError::InvalidCapacity`] for negative/non-finite capacities.
    pub fn custom(
        node_count: usize,
        links: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Result<Self> {
        if node_count == 0 {
            return Err(GraphError::EmptyTopology);
        }
        let mut t = Self::empty(TopologyKind::Custom, node_count);
        for i in 0..node_count {
            t.coords[i] = (i, 0);
        }
        for (src, dst, cap) in links {
            if src.index() >= node_count {
                return Err(GraphError::UnknownNode(src));
            }
            if dst.index() >= node_count {
                return Err(GraphError::UnknownNode(dst));
            }
            if !cap.is_finite() || cap < 0.0 {
                return Err(GraphError::InvalidCapacity(cap));
            }
            t.push_link(src, dst, cap);
        }
        Ok(t)
    }

    fn empty(kind: TopologyKind, node_count: usize) -> Self {
        Self {
            kind,
            node_count,
            links: Vec::new(),
            out_links: vec![Vec::new(); node_count],
            in_links: vec![Vec::new(); node_count],
            link_lookup: HashMap::new(),
            coords: vec![(0, 0); node_count],
        }
    }

    fn push_link(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> LinkId {
        let id = LinkId::new(self.links.len());
        self.links.push(Link { src, dst, capacity });
        self.out_links[src.index()].push(id);
        self.in_links[dst.index()].push(id);
        self.link_lookup.insert((src, dst), id);
        id
    }

    fn push_bidirectional(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        self.push_link(a, b, capacity);
        self.push_link(b, a, capacity);
    }

    /// The topology family (mesh/torus dimensions or custom).
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of nodes `|U|`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed links `|F|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the link record for `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> Link {
        self.links[link.index()]
    }

    /// Looks up the directed link `src -> dst`.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.link_lookup.get(&(src, dst)).copied()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::new)
    }

    /// Iterates over all links with their ids.
    pub fn links(&self) -> impl ExactSizeIterator<Item = (LinkId, Link)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (LinkId::new(i), *l))
    }

    /// Outgoing links of `node` (the paper's adjacency set `Adj_i`).
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.out_links[node.index()].iter().map(move |&id| (id, self.links[id.index()]))
    }

    /// Incoming links of `node`.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.in_links[node.index()].iter().map(move |&id| (id, self.links[id.index()]))
    }

    /// Number of distinct neighbour nodes reachable over one outgoing link.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_links[node.index()].len()
    }

    /// The mesh coordinates `(x, y)` of `node` (synthetic `(index, 0)` for
    /// custom topologies).
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        self.coords[node.index()]
    }

    /// The node at mesh coordinates `(x, y)`.
    ///
    /// Returns `None` if out of range or if the topology is custom.
    pub fn node_at(&self, x: usize, y: usize) -> Option<NodeId> {
        match self.kind {
            TopologyKind::Mesh { width, height } | TopologyKind::Torus { width, height } => {
                (x < width && y < height).then(|| NodeId::new(y * width + x))
            }
            TopologyKind::Custom => None,
        }
    }

    /// Minimum hop count `dist(a, b)` between two nodes (Equation 7's
    /// distance). Closed-form Manhattan / torus distance for mesh and torus;
    /// BFS for custom topologies.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or if the nodes are
    /// disconnected in a custom topology.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        assert!(a.index() < self.node_count, "node {a} out of range");
        assert!(b.index() < self.node_count, "node {b} out of range");
        match self.kind {
            TopologyKind::Mesh { .. } => {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            TopologyKind::Torus { width, height } => {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                // Wrap links only exist for dimensions > 2.
                let dx = if width > 2 { dx.min(width - dx) } else { dx };
                let dy = if height > 2 { dy.min(height - dy) } else { dy };
                dx + dy
            }
            TopologyKind::Custom => crate::algo::bfs_hops(self, a)[b.index()]
                .unwrap_or_else(|| panic!("{}", GraphError::Disconnected(a, b))),
        }
    }

    /// The node with the largest number of neighbours — `max_t` in
    /// `initialize()`. Ties break toward the node closest to the geometric
    /// center of the mesh, then toward the lowest id, so results are
    /// deterministic and centered (a central seed is what the paper's cost
    /// function rewards).
    pub fn max_degree_node(&self) -> NodeId {
        let center = self.center_coords();
        self.nodes()
            .min_by(|&a, &b| {
                self.degree(b)
                    .cmp(&self.degree(a))
                    .then_with(|| {
                        self.center_distance(a, center).cmp(&self.center_distance(b, center))
                    })
                    .then(a.cmp(&b))
            })
            .expect("topology has at least one node")
    }

    fn center_coords(&self) -> (f64, f64) {
        match self.kind {
            TopologyKind::Mesh { width, height } | TopologyKind::Torus { width, height } => {
                ((width as f64 - 1.0) / 2.0, (height as f64 - 1.0) / 2.0)
            }
            TopologyKind::Custom => (0.0, 0.0),
        }
    }

    fn center_distance(&self, node: NodeId, center: (f64, f64)) -> u64 {
        let (x, y) = self.coords(node);
        // Scaled L1 distance to the center, kept integral for total ordering.
        let d = (x as f64 - center.0).abs() + (y as f64 - center.1).abs();
        (d * 2.0).round() as u64
    }

    /// True if every node can reach every other node over directed links.
    pub fn is_strongly_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let forward = crate::algo::bfs_hops(self, NodeId::new(0));
        if forward.iter().any(Option::is_none) {
            return false;
        }
        // Reverse reachability: BFS on reversed adjacency.
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for (_, l) in self.in_links(n) {
                if !seen[l.src.index()] {
                    seen[l.src.index()] = true;
                    count += 1;
                    stack.push(l.src);
                }
            }
        }
        count == self.node_count
    }

    /// Smallest square-ish mesh `(w, h)` with at least `cores` nodes,
    /// preferring squares then wider-by-one rectangles — the sizing rule the
    /// experiments use when the paper does not state mesh dimensions.
    pub fn fit_mesh_dims(cores: usize) -> (usize, usize) {
        assert!(cores > 0, "need at least one core");
        let mut w = 1usize;
        while w * w < cores {
            w += 1;
        }
        // Try to shave a row if a w x (w-1) mesh still fits.
        if w > 1 && w * (w - 1) >= cores {
            (w, w - 1)
        } else {
            (w, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let m = Topology::mesh(4, 4, 100.0);
        assert_eq!(m.node_count(), 16);
        assert_eq!(m.link_count(), 48);
        let m = Topology::mesh(2, 3, 100.0);
        assert_eq!(m.node_count(), 6);
        // channels: horizontal 1*3, vertical 2*2 => 7 * 2 directed = 14
        assert_eq!(m.link_count(), 14);
        let m = Topology::mesh(1, 1, 100.0);
        assert_eq!(m.link_count(), 0);
    }

    #[test]
    fn torus_counts_and_no_duplicate_wraps() {
        let t = Topology::torus(4, 4, 100.0);
        // mesh 48 + wrap: 4 rows * 2 + 4 cols * 2 = 64
        assert_eq!(t.link_count(), 64);
        // width 2: wrap would duplicate the existing channel; must be absent
        let t = Topology::torus(2, 4, 100.0);
        assert_eq!(t.link_count(), Topology::mesh(2, 4, 100.0).link_count() + 2 * 2);
    }

    #[test]
    fn mesh_hop_distance_is_manhattan() {
        let m = Topology::mesh(4, 4, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(3, 3).unwrap();
        assert_eq!(m.hop_distance(a, b), 6);
        assert_eq!(m.hop_distance(b, a), 6);
        assert_eq!(m.hop_distance(a, a), 0);
    }

    #[test]
    fn torus_hop_distance_uses_wraparound() {
        let t = Topology::torus(4, 4, 1.0);
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(3, 0).unwrap();
        assert_eq!(t.hop_distance(a, b), 1);
        let c = t.node_at(2, 2).unwrap();
        assert_eq!(t.hop_distance(a, c), 4);
    }

    #[test]
    fn torus_size_two_dimension_has_no_shortcut() {
        let t = Topology::torus(2, 5, 1.0);
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(1, 0).unwrap();
        assert_eq!(t.hop_distance(a, b), 1);
        let c = t.node_at(0, 4).unwrap();
        assert_eq!(t.hop_distance(a, c), 1); // vertical wrap exists (5 > 2)
    }

    #[test]
    fn max_degree_node_is_central() {
        let m = Topology::mesh(3, 3, 1.0);
        assert_eq!(m.max_degree_node(), m.node_at(1, 1).unwrap());
        let m = Topology::mesh(4, 4, 1.0);
        // Four interior nodes tie on degree 4; closest-to-center tie-break
        // keeps one of (1,1),(2,1),(1,2),(2,2); lowest id wins among equals.
        assert_eq!(m.max_degree_node(), m.node_at(1, 1).unwrap());
    }

    #[test]
    fn degree_counts() {
        let m = Topology::mesh(3, 3, 1.0);
        assert_eq!(m.degree(m.node_at(0, 0).unwrap()), 2);
        assert_eq!(m.degree(m.node_at(1, 0).unwrap()), 3);
        assert_eq!(m.degree(m.node_at(1, 1).unwrap()), 4);
        let t = Topology::torus(4, 4, 1.0);
        for n in t.nodes() {
            assert_eq!(t.degree(n), 4);
        }
    }

    #[test]
    fn custom_topology_and_bfs_distance() {
        // 0 -> 1 -> 2, 0 -> 2 (one-way ring-ish)
        let t = Topology::custom(
            3,
            [
                (NodeId::new(0), NodeId::new(1), 10.0),
                (NodeId::new(1), NodeId::new(2), 10.0),
                (NodeId::new(2), NodeId::new(0), 10.0),
            ],
        )
        .unwrap();
        assert_eq!(t.hop_distance(NodeId::new(0), NodeId::new(2)), 2);
        assert_eq!(t.hop_distance(NodeId::new(2), NodeId::new(1)), 2);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn custom_topology_validation() {
        assert_eq!(Topology::custom(0, []), Err(GraphError::EmptyTopology));
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(5), 1.0)]);
        assert_eq!(bad, Err(GraphError::UnknownNode(NodeId::new(5))));
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), -3.0)]);
        assert_eq!(bad, Err(GraphError::InvalidCapacity(-3.0)));
    }

    #[test]
    fn meshes_are_strongly_connected() {
        assert!(Topology::mesh(5, 3, 1.0).is_strongly_connected());
        assert!(Topology::torus(3, 3, 1.0).is_strongly_connected());
        let lonely = Topology::custom(2, []).unwrap();
        assert!(!lonely.is_strongly_connected());
    }

    #[test]
    fn fit_mesh_dims_prefers_tight_rectangles() {
        assert_eq!(Topology::fit_mesh_dims(1), (1, 1));
        assert_eq!(Topology::fit_mesh_dims(4), (2, 2));
        assert_eq!(Topology::fit_mesh_dims(6), (3, 2));
        assert_eq!(Topology::fit_mesh_dims(8), (3, 3));
        assert_eq!(Topology::fit_mesh_dims(12), (4, 3));
        assert_eq!(Topology::fit_mesh_dims(16), (4, 4));
        assert_eq!(Topology::fit_mesh_dims(25), (5, 5));
        assert_eq!(Topology::fit_mesh_dims(30), (6, 5));
    }

    #[test]
    fn node_at_round_trips_coords() {
        let m = Topology::mesh(5, 4, 1.0);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), Some(n));
        }
        assert_eq!(m.node_at(5, 0), None);
    }

    #[test]
    fn find_link_direction_sensitive() {
        let m = Topology::mesh(2, 1, 7.0);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let ab = m.find_link(a, b).unwrap();
        let ba = m.find_link(b, a).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(m.link(ab).capacity, 7.0);
    }
}
