//! The **NoC topology graph** `P(U, F)` of Definition 2.
//!
//! Vertices are network nodes (router + network-interface cross-points);
//! a directed edge `(u_i, u_j)` with weight `bw_{i,j}` is a physical link
//! with that much bandwidth capacity. The paper restricts itself to 2-D
//! meshes and tori; this module supports dimension-generic grids (2-D and
//! 3-D meshes/tori are the `dims = [w, h]` / `[w, h, d]` special cases of
//! one [`Grid`] abstraction) plus arbitrary custom topologies (the
//! "future work" extension of Section 8).

// lint: allow-file(hash-container) — the only hash container here is
// `link_lookup`, a get/insert-only index that is never iterated, so its
// order cannot leak into results.
use std::collections::HashMap;

use noc_units::Mbps;

use crate::{GraphError, Grid, LinkId, NodeId, Result};

/// The family a [`Topology`] was constructed from.
///
/// Grid topologies carry their [`Grid`] so hop distances, orthant DAGs
/// and dimension-ordered routing can use per-axis closed forms;
/// [`TopologyKind::Custom`] falls back to BFS.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// A dimension-generic grid (mesh, torus, or mixed-wrap).
    Grid(Grid),
    /// Arbitrary directed graph built with [`Topology::custom`].
    Custom,
}

impl TopologyKind {
    /// Human-readable description: `mesh 4x4`, `torus 4x4x2`, `custom`.
    pub fn describe(&self) -> String {
        match self {
            TopologyKind::Grid(grid) => {
                format!("{} {}", grid.kind_keyword(), grid.dims_label())
            }
            TopologyKind::Custom => "custom".to_string(),
        }
    }
}

/// A directed physical link of the NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Upstream node `u_i`.
    pub src: NodeId,
    /// Downstream node `u_j`.
    pub dst: NodeId,
    /// Capacity `bw_{i,j}` in MB/s (finite and positive by
    /// construction — every constructor validates through
    /// [`Mbps::positive`]).
    pub capacity: Mbps,
}

/// The NoC topology graph `P(U, F)` (Definition 2 in the paper).
///
/// # Example
///
/// ```
/// use noc_graph::{Topology, NodeId};
///
/// let mesh = Topology::mesh(4, 4, 1_000.0);
/// assert_eq!(mesh.node_count(), 16);
/// // A 4x4 mesh has 24 bidirectional channels = 48 directed links.
/// assert_eq!(mesh.link_count(), 48);
/// assert_eq!(mesh.hop_distance(NodeId::new(0), NodeId::new(15)), 6);
///
/// // 3-D grids fall out of the same machinery.
/// let cube = Topology::mesh_nd(&[4, 4, 2], 1_000.0).unwrap();
/// assert_eq!(cube.node_count(), 32);
/// assert_eq!(cube.hop_distance(NodeId::new(0), NodeId::new(31)), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    node_count: usize,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkId>>,
    in_links: Vec<Vec<LinkId>>,
    link_lookup: HashMap<(NodeId, NodeId), LinkId>,
    /// Number of coordinates per node (the grid rank; 2 for custom).
    rank: usize,
    /// Flattened node coordinates, `rank` entries per node; synthesized
    /// `(i, 0)` for custom topologies.
    coords: Vec<usize>,
}

impl Topology {
    /// Builds a `width × height` mesh whose links all have capacity
    /// `link_capacity` MB/s. Nodes are numbered row-major: node `(x, y)` is
    /// `y * width + x`. The 2-D spelling of [`Topology::mesh_nd`].
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0` or if `link_capacity` is not a
    /// finite positive number. Use [`Topology::mesh_nd`] for fallible
    /// construction.
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::positive`.
    pub fn mesh(width: usize, height: usize, link_capacity: f64) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Self::mesh_nd(&[width, height], link_capacity)
            .unwrap_or_else(|e| panic!("link capacity invalid: {e}"))
    }

    /// Builds a `width × height` torus (mesh plus wrap-around links), all
    /// links with capacity `link_capacity` MB/s. The 2-D spelling of
    /// [`Topology::torus_nd`].
    ///
    /// Dimensions of size 1 or 2 get no wrap link in that dimension (it
    /// would duplicate an existing channel).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Topology::mesh`].
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::positive`.
    pub fn torus(width: usize, height: usize, link_capacity: f64) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be non-zero");
        Self::torus_nd(&[width, height], link_capacity)
            .unwrap_or_else(|e| panic!("link capacity invalid: {e}"))
    }

    /// Builds an N-dimensional mesh with the given per-axis extents, all
    /// links at `link_capacity` MB/s. Axis 0 varies fastest in the node
    /// numbering (see [`Grid`]); `dims = [w, h]` reproduces
    /// [`Topology::mesh`] exactly, link ids included.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTopology`] / [`GraphError::ZeroExtent`] for
    ///   empty or zero-extent dimension lists.
    /// * [`GraphError::InvalidCapacity`] for non-finite or non-positive
    ///   capacities.
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::positive`.
    pub fn mesh_nd(dims: &[usize], link_capacity: f64) -> Result<Self> {
        Self::grid(Grid::mesh(dims)?, link_capacity)
    }

    /// Builds an N-dimensional torus (every axis wraps; wraps on axes of
    /// extent ≤ 2 are skipped as in [`Topology::torus`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::mesh_nd`].
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::positive`.
    pub fn torus_nd(dims: &[usize], link_capacity: f64) -> Result<Self> {
        Self::grid(Grid::torus(dims)?, link_capacity)
    }

    /// Builds the topology of an arbitrary [`Grid`] (per-axis extents and
    /// wrap flags), all links at `link_capacity` MB/s.
    ///
    /// Links are created in a fixed order: first the mesh channels, node
    /// by node in index order (per node: axis 0 neighbour first), then the
    /// wrap channels axis by axis. For 2-D grids this reproduces the
    /// historical [`Topology::mesh`]/[`Topology::torus`] link ids exactly.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidCapacity`] for non-finite or non-positive
    /// capacities.
    // lint: allow(f64-api) — checked boundary intake: the bare capacity is
    // validated into `Mbps` before any link is built.
    pub fn grid(grid: Grid, link_capacity: f64) -> Result<Self> {
        let capacity = Mbps::positive(link_capacity)
            .map_err(|_| GraphError::InvalidCapacity(link_capacity))?;
        let node_count = grid.node_count();
        let rank = grid.rank();
        // Build with a placeholder kind so `grid` stays borrowable for the
        // link loops; it moves into the kind at the end.
        let mut t = Self::empty(TopologyKind::Custom, node_count, rank);
        let mut scratch = Vec::with_capacity(rank);
        for index in 0..node_count {
            grid.coords_into(index, &mut scratch);
            t.coords[index * rank..(index + 1) * rank].copy_from_slice(&scratch);
        }
        // Mesh channels: node-index order, axis 0 first within each node.
        for index in 0..node_count {
            grid.coords_into(index, &mut scratch);
            for (axis, &coord) in scratch.iter().enumerate() {
                if coord + 1 < grid.axis(axis).extent {
                    let here = NodeId::new(index);
                    let next = NodeId::new(index + grid.stride(axis));
                    t.push_bidirectional(here, next, capacity);
                }
            }
        }
        // Wrap channels: axis by axis, last-coordinate nodes in index order.
        for axis in 0..rank {
            let ax = grid.axis(axis);
            if !ax.wraps() {
                continue;
            }
            let span = (ax.extent - 1) * grid.stride(axis);
            for index in 0..node_count {
                if t.coords[index * rank + axis] == ax.extent - 1 {
                    let here = NodeId::new(index);
                    let first = NodeId::new(index - span);
                    t.push_bidirectional(here, first, capacity);
                }
            }
        }
        t.kind = TopologyKind::Grid(grid);
        Ok(t)
    }

    /// Builds an arbitrary topology from `node_count` nodes and directed
    /// `(src, dst, capacity)` links.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyTopology`] if `node_count == 0`.
    /// * [`GraphError::UnknownNode`] for out-of-range endpoints.
    /// * [`GraphError::InvalidCapacity`] for non-finite or non-positive
    ///   capacities.
    // lint: allow(f64-api) — checked boundary intake: validated via `Mbps::positive`.
    pub fn custom(
        node_count: usize,
        links: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Result<Self> {
        if node_count == 0 {
            return Err(GraphError::EmptyTopology);
        }
        let mut t = Self::empty(TopologyKind::Custom, node_count, 2);
        for i in 0..node_count {
            t.coords[i * 2] = i;
        }
        for (src, dst, cap) in links {
            if src.index() >= node_count {
                return Err(GraphError::UnknownNode(src));
            }
            if dst.index() >= node_count {
                return Err(GraphError::UnknownNode(dst));
            }
            let capacity = Mbps::positive(cap).map_err(|_| GraphError::InvalidCapacity(cap))?;
            t.push_link(src, dst, capacity);
        }
        Ok(t)
    }

    fn empty(kind: TopologyKind, node_count: usize, rank: usize) -> Self {
        Self {
            kind,
            node_count,
            links: Vec::new(),
            out_links: vec![Vec::new(); node_count],
            in_links: vec![Vec::new(); node_count],
            link_lookup: HashMap::new(),
            rank,
            coords: vec![0; node_count * rank],
        }
    }

    fn push_link(&mut self, src: NodeId, dst: NodeId, capacity: Mbps) -> LinkId {
        let id = LinkId::new(self.links.len());
        self.links.push(Link { src, dst, capacity });
        self.out_links[src.index()].push(id);
        self.in_links[dst.index()].push(id);
        self.link_lookup.insert((src, dst), id);
        id
    }

    fn push_bidirectional(&mut self, a: NodeId, b: NodeId, capacity: Mbps) {
        self.push_link(a, b, capacity);
        self.push_link(b, a, capacity);
    }

    /// The topology family (grid or custom).
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// The grid structure of a grid topology, `None` for custom ones.
    pub fn grid_structure(&self) -> Option<&Grid> {
        match &self.kind {
            TopologyKind::Grid(g) => Some(g),
            TopologyKind::Custom => None,
        }
    }

    /// Number of nodes `|U|`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed links `|F|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the link record for `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> Link {
        self.links[link.index()]
    }

    /// Looks up the directed link `src -> dst`.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.link_lookup.get(&(src, dst)).copied()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::new)
    }

    /// Iterates over all links with their ids.
    pub fn links(&self) -> impl ExactSizeIterator<Item = (LinkId, Link)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (LinkId::new(i), *l))
    }

    /// Outgoing links of `node` (the paper's adjacency set `Adj_i`).
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.out_links[node.index()].iter().map(move |&id| (id, self.links[id.index()]))
    }

    /// Incoming links of `node`.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.in_links[node.index()].iter().map(move |&id| (id, self.links[id.index()]))
    }

    /// Number of distinct neighbour nodes reachable over one outgoing link.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_links[node.index()].len()
    }

    /// The first two grid coordinates `(x, y)` of `node` — the historical
    /// 2-D accessor (`y` is 0 on rank-1 grids; synthetic `(index, 0)` for
    /// custom topologies). Use [`Topology::grid_coords`] for the full
    /// coordinate vector of higher-rank grids.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let c = self.grid_coords(node);
        (c[0], c.get(1).copied().unwrap_or(0))
    }

    /// All grid coordinates of `node`, one entry per axis (synthetic
    /// `[index, 0]` for custom topologies).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn grid_coords(&self, node: NodeId) -> &[usize] {
        &self.coords[node.index() * self.rank..(node.index() + 1) * self.rank]
    }

    /// The node at 2-D grid coordinates `(x, y)`.
    ///
    /// Returns `None` if out of range, if the topology is custom, or if
    /// the grid's rank is not 2 (use [`Topology::node_at_coords`] then).
    pub fn node_at(&self, x: usize, y: usize) -> Option<NodeId> {
        match &self.kind {
            TopologyKind::Grid(grid) if grid.rank() == 2 => grid.index_of(&[x, y]).map(NodeId::new),
            _ => None,
        }
    }

    /// The node at the given grid coordinates (one entry per axis).
    ///
    /// Returns `None` if the rank or a coordinate is out of range, or if
    /// the topology is custom.
    pub fn node_at_coords(&self, coords: &[usize]) -> Option<NodeId> {
        match &self.kind {
            TopologyKind::Grid(grid) => grid.index_of(coords).map(NodeId::new),
            TopologyKind::Custom => None,
        }
    }

    /// Minimum hop count `dist(a, b)` between two nodes (Equation 7's
    /// distance). Closed-form per-axis wrap-aware distance for grids
    /// (Manhattan on meshes, torus shortcuts where wraps exist); BFS for
    /// custom topologies.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or if the nodes are
    /// disconnected in a custom topology.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        assert!(a.index() < self.node_count, "node {a} out of range");
        assert!(b.index() < self.node_count, "node {b} out of range");
        match &self.kind {
            TopologyKind::Grid(grid) => {
                let ca = self.grid_coords(a);
                let cb = self.grid_coords(b);
                grid.axes()
                    .iter()
                    .zip(ca.iter().zip(cb))
                    .map(|(axis, (&x, &y))| axis.distance(x, y))
                    .sum()
            }
            TopologyKind::Custom => crate::algo::bfs_hops(self, a)[b.index()]
                .unwrap_or_else(|| panic!("{}", GraphError::Disconnected(a, b))),
        }
    }

    /// The node with the largest number of neighbours — `max_t` in
    /// `initialize()`. Ties break toward the node closest to the geometric
    /// center of the grid, then toward the lowest id, so results are
    /// deterministic and centered (a central seed is what the paper's cost
    /// function rewards).
    pub fn max_degree_node(&self) -> NodeId {
        let center = self.center_coords();
        self.nodes()
            .min_by(|&a, &b| {
                self.degree(b)
                    .cmp(&self.degree(a))
                    .then_with(|| {
                        self.center_distance(a, &center).cmp(&self.center_distance(b, &center))
                    })
                    .then(a.cmp(&b))
            })
            .expect("topology has at least one node")
    }

    fn center_coords(&self) -> Vec<f64> {
        match &self.kind {
            TopologyKind::Grid(grid) => {
                grid.axes().iter().map(|a| (a.extent as f64 - 1.0) / 2.0).collect()
            }
            TopologyKind::Custom => vec![0.0; self.rank],
        }
    }

    fn center_distance(&self, node: NodeId, center: &[f64]) -> u64 {
        // Scaled L1 distance to the center, kept integral for total ordering.
        let d: f64 =
            self.grid_coords(node).iter().zip(center).map(|(&c, &m)| (c as f64 - m).abs()).sum();
        (d * 2.0).round() as u64
    }

    /// True if every node can reach every other node over directed links.
    pub fn is_strongly_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let forward = crate::algo::bfs_hops(self, NodeId::new(0));
        if forward.iter().any(Option::is_none) {
            return false;
        }
        // Reverse reachability: BFS on reversed adjacency.
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for (_, l) in self.in_links(n) {
                if !seen[l.src.index()] {
                    seen[l.src.index()] = true;
                    count += 1;
                    stack.push(l.src);
                }
            }
        }
        count == self.node_count
    }

    /// Smallest square-ish mesh `(w, h)` with at least `cores` nodes,
    /// preferring squares then wider-by-one rectangles — the sizing rule the
    /// experiments use when the paper does not state mesh dimensions.
    /// [`Grid::fit_dims`] generalizes this rule to any rank.
    pub fn fit_mesh_dims(cores: usize) -> (usize, usize) {
        assert!(cores > 0, "need at least one core");
        let mut w = 1usize;
        while w * w < cores {
            w += 1;
        }
        // Try to shave a row if a w x (w-1) mesh still fits.
        if w > 1 && w * (w - 1) >= cores {
            (w, w - 1)
        } else {
            (w, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Axis;

    #[test]
    fn mesh_counts() {
        let m = Topology::mesh(4, 4, 100.0);
        assert_eq!(m.node_count(), 16);
        assert_eq!(m.link_count(), 48);
        let m = Topology::mesh(2, 3, 100.0);
        assert_eq!(m.node_count(), 6);
        // channels: horizontal 1*3, vertical 2*2 => 7 * 2 directed = 14
        assert_eq!(m.link_count(), 14);
        let m = Topology::mesh(1, 1, 100.0);
        assert_eq!(m.link_count(), 0);
    }

    #[test]
    fn mesh_3d_counts() {
        // 4x4x2: x-channels 3*4*2, y-channels 4*3*2, z-channels 4*4*1
        // = 24 + 24 + 16 = 64 bidirectional = 128 directed links.
        let m = Topology::mesh_nd(&[4, 4, 2], 100.0).unwrap();
        assert_eq!(m.node_count(), 32);
        assert_eq!(m.link_count(), 128);
        // 4x4x4 torus: mesh 3*16*3*2 = 288 directed + wraps 16*3 channels
        // * 2 = 96 directed => 384. Every node has degree 6.
        let t = Topology::torus_nd(&[4, 4, 4], 100.0).unwrap();
        assert_eq!(t.link_count(), 384);
        for n in t.nodes() {
            assert_eq!(t.degree(n), 6);
        }
    }

    #[test]
    fn grid_construction_keeps_historical_2d_link_order() {
        // The pre-grid constructors pushed, per node in row-major order,
        // the rightward channel then the downward one; torus wraps came
        // after, all x-wraps (by row) then all y-wraps (by column). Link
        // ids are load-bearing (routing tables, loads, sim layouts), so
        // pin the exact sequence.
        let endpoints = |t: &Topology| -> Vec<(usize, usize)> {
            t.links().map(|(_, l)| (l.src.index(), l.dst.index())).collect()
        };
        let m = Topology::mesh(2, 2, 7.0);
        assert_eq!(
            endpoints(&m),
            vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1), (2, 3), (3, 2)]
        );
        let t = Topology::torus(3, 3, 7.0);
        let wraps: Vec<(usize, usize)> = endpoints(&t)[24..].to_vec();
        assert_eq!(
            wraps,
            vec![
                // x-wraps, rows top to bottom (right end first)...
                (2, 0),
                (0, 2),
                (5, 3),
                (3, 5),
                (8, 6),
                (6, 8),
                // ...then y-wraps, columns left to right (bottom end first).
                (6, 0),
                (0, 6),
                (7, 1),
                (1, 7),
                (8, 2),
                (2, 8)
            ]
        );
    }

    #[test]
    fn torus_counts_and_no_duplicate_wraps() {
        let t = Topology::torus(4, 4, 100.0);
        // mesh 48 + wrap: 4 rows * 2 + 4 cols * 2 = 64
        assert_eq!(t.link_count(), 64);
        // width 2: wrap would duplicate the existing channel; must be absent
        let t = Topology::torus(2, 4, 100.0);
        assert_eq!(t.link_count(), Topology::mesh(2, 4, 100.0).link_count() + 2 * 2);
    }

    #[test]
    fn mesh_hop_distance_is_manhattan() {
        let m = Topology::mesh(4, 4, 1.0);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(3, 3).unwrap();
        assert_eq!(m.hop_distance(a, b), 6);
        assert_eq!(m.hop_distance(b, a), 6);
        assert_eq!(m.hop_distance(a, a), 0);
    }

    #[test]
    fn grid_3d_hop_distance_sums_axes() {
        let m = Topology::mesh_nd(&[4, 4, 2], 1.0).unwrap();
        let a = m.node_at_coords(&[0, 0, 0]).unwrap();
        let b = m.node_at_coords(&[3, 3, 1]).unwrap();
        assert_eq!(m.hop_distance(a, b), 7);
        let t = Topology::torus_nd(&[4, 4, 4], 1.0).unwrap();
        let a = t.node_at_coords(&[0, 0, 0]).unwrap();
        let b = t.node_at_coords(&[3, 3, 3]).unwrap();
        assert_eq!(t.hop_distance(a, b), 3, "every axis wraps");
    }

    #[test]
    fn torus_hop_distance_uses_wraparound() {
        let t = Topology::torus(4, 4, 1.0);
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(3, 0).unwrap();
        assert_eq!(t.hop_distance(a, b), 1);
        let c = t.node_at(2, 2).unwrap();
        assert_eq!(t.hop_distance(a, c), 4);
    }

    #[test]
    fn torus_size_two_dimension_has_no_shortcut() {
        let t = Topology::torus(2, 5, 1.0);
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(1, 0).unwrap();
        assert_eq!(t.hop_distance(a, b), 1);
        let c = t.node_at(0, 4).unwrap();
        assert_eq!(t.hop_distance(a, c), 1); // vertical wrap exists (5 > 2)
    }

    #[test]
    fn max_degree_node_is_central() {
        let m = Topology::mesh(3, 3, 1.0);
        assert_eq!(m.max_degree_node(), m.node_at(1, 1).unwrap());
        let m = Topology::mesh(4, 4, 1.0);
        // Four interior nodes tie on degree 4; closest-to-center tie-break
        // keeps one of (1,1),(2,1),(1,2),(2,2); lowest id wins among equals.
        assert_eq!(m.max_degree_node(), m.node_at(1, 1).unwrap());
        // 3x3x3 mesh: the body center has degree 6 and wins outright.
        let m = Topology::mesh_nd(&[3, 3, 3], 1.0).unwrap();
        assert_eq!(m.max_degree_node(), m.node_at_coords(&[1, 1, 1]).unwrap());
    }

    #[test]
    fn degree_counts() {
        let m = Topology::mesh(3, 3, 1.0);
        assert_eq!(m.degree(m.node_at(0, 0).unwrap()), 2);
        assert_eq!(m.degree(m.node_at(1, 0).unwrap()), 3);
        assert_eq!(m.degree(m.node_at(1, 1).unwrap()), 4);
        let t = Topology::torus(4, 4, 1.0);
        for n in t.nodes() {
            assert_eq!(t.degree(n), 4);
        }
    }

    #[test]
    fn custom_topology_and_bfs_distance() {
        // 0 -> 1 -> 2, 0 -> 2 (one-way ring-ish)
        let t = Topology::custom(
            3,
            [
                (NodeId::new(0), NodeId::new(1), 10.0),
                (NodeId::new(1), NodeId::new(2), 10.0),
                (NodeId::new(2), NodeId::new(0), 10.0),
            ],
        )
        .unwrap();
        assert_eq!(t.hop_distance(NodeId::new(0), NodeId::new(2)), 2);
        assert_eq!(t.hop_distance(NodeId::new(2), NodeId::new(1)), 2);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn custom_topology_validation() {
        assert_eq!(Topology::custom(0, []), Err(GraphError::EmptyTopology));
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(5), 1.0)]);
        assert_eq!(bad, Err(GraphError::UnknownNode(NodeId::new(5))));
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), -3.0)]);
        assert_eq!(bad, Err(GraphError::InvalidCapacity(-3.0)));
        // Hardened: zero and non-finite capacities are rejected too.
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), 0.0)]);
        assert_eq!(bad, Err(GraphError::InvalidCapacity(0.0)));
        let bad = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), f64::NAN)]);
        assert!(matches!(bad, Err(GraphError::InvalidCapacity(_))));
    }

    #[test]
    fn grid_constructors_validate() {
        assert_eq!(Topology::mesh_nd(&[], 1.0), Err(GraphError::EmptyTopology));
        assert_eq!(Topology::mesh_nd(&[4, 0], 1.0), Err(GraphError::ZeroExtent { axis: 1 }));
        assert_eq!(Topology::torus_nd(&[0], 1.0), Err(GraphError::ZeroExtent { axis: 0 }));
        assert_eq!(Topology::mesh_nd(&[2, 2], 0.0), Err(GraphError::InvalidCapacity(0.0)));
        assert_eq!(Topology::mesh_nd(&[2, 2], -1.0), Err(GraphError::InvalidCapacity(-1.0)));
        assert!(matches!(
            Topology::mesh_nd(&[2, 2], f64::INFINITY),
            Err(GraphError::InvalidCapacity(_))
        ));
    }

    #[test]
    fn mixed_wrap_grid_is_supported() {
        // Wrap only along x: a cylinder.
        let grid = Grid::new(vec![Axis { extent: 4, wrap: true }, Axis { extent: 3, wrap: false }])
            .unwrap();
        let t = Topology::grid(grid, 100.0).unwrap();
        assert_eq!(t.kind().describe(), "grid 4x3");
        let a = t.node_at(0, 0).unwrap();
        let b = t.node_at(3, 0).unwrap();
        assert_eq!(t.hop_distance(a, b), 1, "x wraps");
        let c = t.node_at(0, 2).unwrap();
        assert_eq!(t.hop_distance(a, c), 2, "y does not wrap");
    }

    #[test]
    fn meshes_are_strongly_connected() {
        assert!(Topology::mesh(5, 3, 1.0).is_strongly_connected());
        assert!(Topology::torus(3, 3, 1.0).is_strongly_connected());
        assert!(Topology::mesh_nd(&[3, 2, 2], 1.0).unwrap().is_strongly_connected());
        let lonely = Topology::custom(2, []).unwrap();
        assert!(!lonely.is_strongly_connected());
    }

    #[test]
    fn fit_mesh_dims_prefers_tight_rectangles() {
        assert_eq!(Topology::fit_mesh_dims(1), (1, 1));
        assert_eq!(Topology::fit_mesh_dims(4), (2, 2));
        assert_eq!(Topology::fit_mesh_dims(6), (3, 2));
        assert_eq!(Topology::fit_mesh_dims(8), (3, 3));
        assert_eq!(Topology::fit_mesh_dims(12), (4, 3));
        assert_eq!(Topology::fit_mesh_dims(16), (4, 4));
        assert_eq!(Topology::fit_mesh_dims(25), (5, 5));
        assert_eq!(Topology::fit_mesh_dims(30), (6, 5));
    }

    #[test]
    fn node_at_round_trips_coords() {
        let m = Topology::mesh(5, 4, 1.0);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), Some(n));
        }
        assert_eq!(m.node_at(5, 0), None);
        // node_at is the rank-2 spelling; higher ranks use node_at_coords.
        let cube = Topology::mesh_nd(&[2, 2, 2], 1.0).unwrap();
        assert_eq!(cube.node_at(0, 0), None);
        for n in cube.nodes() {
            let c = cube.grid_coords(n).to_vec();
            assert_eq!(cube.node_at_coords(&c), Some(n));
        }
    }

    #[test]
    fn kind_describe_names_family_and_dims() {
        assert_eq!(Topology::mesh(4, 3, 1.0).kind().describe(), "mesh 4x3");
        assert_eq!(Topology::torus_nd(&[4, 4, 2], 1.0).unwrap().kind().describe(), "torus 4x4x2");
        assert_eq!(Topology::custom(1, []).unwrap().kind().describe(), "custom");
    }

    #[test]
    fn find_link_direction_sensitive() {
        let m = Topology::mesh(2, 1, 7.0);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let ab = m.find_link(a, b).unwrap();
        let ba = m.find_link(b, a).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(m.link(ab).capacity.to_f64(), 7.0);
    }
}
