//! Error type for graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::{CoreId, NodeId};

/// Errors produced by graph construction and lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A core id referenced a vertex that does not exist in the core graph.
    UnknownCore(CoreId),
    /// A node id referenced a vertex that does not exist in the topology.
    UnknownNode(NodeId),
    /// A communication edge was given a non-finite or negative bandwidth.
    InvalidBandwidth(f64),
    /// A link was given a non-finite or non-positive capacity.
    InvalidCapacity(f64),
    /// A self-loop `(v, v)` was requested; the core graph forbids them
    /// because a core does not communicate with itself over the NoC.
    SelfLoop(CoreId),
    /// A duplicate directed edge `(src, dst)` was inserted; bandwidths of
    /// parallel requests must be accumulated by the caller instead.
    DuplicateEdge(CoreId, CoreId),
    /// A topology was requested with no nodes (or a grid with no axes).
    EmptyTopology,
    /// A grid axis was declared with extent 0.
    ZeroExtent {
        /// Index of the offending axis.
        axis: usize,
    },
    /// No link connects the two nodes in the topology graph.
    NoSuchLink(NodeId, NodeId),
    /// Source and destination of a path query are disconnected.
    Disconnected(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownCore(id) => write!(f, "unknown core {id}"),
            GraphError::UnknownNode(id) => write!(f, "unknown topology node {id}"),
            GraphError::InvalidBandwidth(bw) => {
                write!(f, "communication bandwidth {bw} is not a finite non-negative value")
            }
            GraphError::InvalidCapacity(cap) => {
                write!(f, "link capacity {cap} is not a finite positive value")
            }
            GraphError::SelfLoop(id) => write!(f, "self-loop on core {id} is not allowed"),
            GraphError::DuplicateEdge(s, d) => {
                write!(f, "duplicate communication edge ({s}, {d})")
            }
            GraphError::EmptyTopology => {
                write!(f, "topology must have at least one node (and a grid at least one axis)")
            }
            GraphError::ZeroExtent { axis } => {
                write!(f, "grid axis {axis} has zero extent")
            }
            GraphError::NoSuchLink(s, d) => write!(f, "no link between {s} and {d}"),
            GraphError::Disconnected(s, d) => {
                write!(f, "no path between {s} and {d} in the topology")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msg = GraphError::UnknownCore(CoreId::new(4)).to_string();
        assert_eq!(msg, "unknown core v4");
        let msg = GraphError::NoSuchLink(NodeId::new(1), NodeId::new(5)).to_string();
        assert_eq!(msg, "no link between u1 and u5");
        let msg = GraphError::InvalidBandwidth(f64::NAN).to_string();
        assert!(msg.contains("not a finite non-negative value"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(GraphError::EmptyTopology);
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
