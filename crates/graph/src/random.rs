//! Seeded random core-graph generation — the substitute for the LEDA graph
//! package the paper uses to produce the 25–65-core graphs of Table 2.
//!
//! The generator builds a connected directed graph: first a random spanning
//! arborescence over a shuffled vertex order (guaranteeing weak
//! connectivity, like LEDA's `random_connected_graph`), then extra random
//! edges until the requested edge count is reached. Edge bandwidths are
//! drawn uniformly from a configurable range, mimicking the hundreds-of-MB/s
//! demands of the paper's video workloads.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use noc_units::Mbps;

use crate::{CoreGraph, CoreId};

/// Parameters for [`RandomGraphConfig::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomGraphConfig {
    /// Number of cores `|V|`.
    pub cores: usize,
    /// Average out-degree; total edges ≈ `cores * avg_degree`, clamped to
    /// the simple-digraph maximum.
    // lint: allow(f64-api) — dimensionless mean degree.
    pub avg_degree: f64,
    /// Minimum edge bandwidth.
    pub min_bandwidth: Mbps,
    /// Maximum edge bandwidth.
    pub max_bandwidth: Mbps,
}

impl Default for RandomGraphConfig {
    /// Defaults chosen to echo the paper's Table 2 workloads: sparse graphs
    /// (average degree 2) with demands between 10 and 400 MB/s.
    fn default() -> Self {
        Self {
            cores: 25,
            avg_degree: 2.0,
            min_bandwidth: Mbps::raw(10.0),
            max_bandwidth: Mbps::raw(400.0),
        }
    }
}

impl RandomGraphConfig {
    /// Generates a random connected core graph from `seed`.
    ///
    /// The same `(config, seed)` pair always yields the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`, if the bandwidth range is empty or negative,
    /// or if `avg_degree` is not finite and positive.
    pub fn generate(&self, seed: u64) -> CoreGraph {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.max_bandwidth >= self.min_bandwidth, "invalid bandwidth range");
        assert!(self.avg_degree.is_finite() && self.avg_degree > 0.0, "invalid average degree");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = CoreGraph::new();
        for i in 0..self.cores {
            g.add_core(format!("c{i}"));
        }
        if self.cores == 1 {
            return g;
        }

        let mut order: Vec<CoreId> = g.cores().collect();
        order.shuffle(&mut rng);

        let draw_bw = |rng: &mut ChaCha8Rng| {
            if self.max_bandwidth > self.min_bandwidth {
                rng.gen_range(self.min_bandwidth.to_f64()..self.max_bandwidth.to_f64())
            } else {
                self.min_bandwidth.to_f64()
            }
        };

        // Spanning structure: connect each vertex (in shuffled order) to a
        // random earlier vertex, with random direction.
        for i in 1..order.len() {
            let parent = order[rng.gen_range(0..i)];
            let child = order[i];
            let bw = draw_bw(&mut rng);
            let (src, dst) = if rng.gen_bool(0.5) { (parent, child) } else { (child, parent) };
            g.add_comm(src, dst, bw).expect("spanning edges are unique");
        }

        // Extra edges up to the target count.
        let max_edges = self.cores * (self.cores - 1);
        let target = ((self.cores as f64 * self.avg_degree).round() as usize)
            .clamp(self.cores - 1, max_edges);
        let mut guard = 0usize;
        while g.edge_count() < target && guard < 100 * target {
            guard += 1;
            let a = CoreId::new(rng.gen_range(0..self.cores));
            let b = CoreId::new(rng.gen_range(0..self.cores));
            if a == b || g.find_edge(a, b).is_some() {
                continue;
            }
            let bw = draw_bw(&mut rng);
            g.add_comm(a, b, bw).expect("checked for duplicates");
        }
        g
    }
}

/// A reproducible family of random graphs sharing one configuration —
/// convenience for parameter sweeps like Table 2 ("number of cores varied
/// from 25 to 65").
#[derive(Debug, Clone, Default)]
pub struct RandomGraphFamily {
    base: RandomGraphConfig,
}

impl RandomGraphFamily {
    /// Creates a family from a base configuration; `cores` is overridden
    /// per call.
    pub fn new(base: RandomGraphConfig) -> Self {
        Self { base }
    }

    /// Generates the `instance`-th graph with `cores` cores.
    pub fn graph(&self, cores: usize, instance: u64) -> CoreGraph {
        let config = RandomGraphConfig { cores, ..self.base.clone() };
        config.generate(Self::instance_seed(cores, instance))
    }

    /// The generator seed [`RandomGraphFamily::graph`] uses for
    /// `(cores, instance)` — public so external sweep drivers (e.g. the
    /// `noc-dse` engine) can reference the exact same graph instances.
    ///
    /// The instance is mixed into the seed; cores is in the config already
    /// but adding it decorrelates sweeps that share instance numbers.
    pub fn instance_seed(cores: usize, instance: u64) -> u64 {
        instance.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomGraphConfig::default();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a, b);
        let c = cfg.generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_graphs_are_connected() {
        let cfg = RandomGraphConfig { cores: 40, ..Default::default() };
        for seed in 0..20 {
            assert!(cfg.generate(seed).is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn edge_count_tracks_degree() {
        let cfg = RandomGraphConfig { cores: 30, avg_degree: 3.0, ..Default::default() };
        let g = cfg.generate(7);
        assert_eq!(g.core_count(), 30);
        assert_eq!(g.edge_count(), 90);
    }

    #[test]
    fn bandwidths_respect_range() {
        let cfg = RandomGraphConfig {
            cores: 20,
            avg_degree: 2.5,
            min_bandwidth: Mbps::raw(50.0),
            max_bandwidth: Mbps::raw(60.0),
        };
        let g = cfg.generate(3);
        for (_, e) in g.edges() {
            assert!(
                (50.0..60.0).contains(&e.bandwidth.to_f64()),
                "bw {} out of range",
                e.bandwidth
            );
        }
    }

    #[test]
    fn degenerate_range_yields_constant_bandwidth() {
        let cfg = RandomGraphConfig {
            cores: 10,
            avg_degree: 2.0,
            min_bandwidth: Mbps::raw(100.0),
            max_bandwidth: Mbps::raw(100.0),
        };
        let g = cfg.generate(0);
        assert!(g.edges().all(|(_, e)| e.bandwidth.to_f64() == 100.0));
    }

    #[test]
    fn single_core_graph_has_no_edges() {
        let cfg = RandomGraphConfig { cores: 1, ..Default::default() };
        let g = cfg.generate(0);
        assert_eq!(g.core_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn family_sweep_matches_direct_generation() {
        let family = RandomGraphFamily::new(RandomGraphConfig::default());
        let g1 = family.graph(35, 2);
        let g2 = family.graph(35, 2);
        assert_eq!(g1, g2);
        assert_eq!(g1.core_count(), 35);
        assert_ne!(family.graph(35, 3), g1);
    }

    #[test]
    fn dense_request_clamps_to_simple_digraph() {
        let cfg = RandomGraphConfig { cores: 5, avg_degree: 100.0, ..Default::default() };
        let g = cfg.generate(1);
        assert_eq!(g.edge_count(), 20); // 5 * 4 ordered pairs
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth range")]
    fn invalid_range_panics() {
        let cfg = RandomGraphConfig {
            cores: 5,
            avg_degree: 2.0,
            min_bandwidth: Mbps::raw(10.0),
            max_bandwidth: Mbps::raw(5.0),
        };
        let _ = cfg.generate(0);
    }
}
