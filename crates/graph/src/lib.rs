//! Graph substrate for the NMAP reproduction.
//!
//! This crate provides the two graph families from Section 4 of the paper
//! *Bandwidth-Constrained Mapping of Cores onto NoC Architectures*
//! (Murali & De Micheli, DATE 2004):
//!
//! * the **core graph** `G(V, E)` — a directed graph whose vertices are IP
//!   cores and whose edge weights `comm_{i,j}` are average communication
//!   bandwidths in MB/s ([`CoreGraph`]), and
//! * the **NoC topology graph** `P(U, F)` — a directed graph whose vertices
//!   are network nodes (mesh cross-points) and whose edge weights `bw_{i,j}`
//!   are link capacities ([`Topology`]).
//!
//! On top of the data model it implements the graph machinery the mapping
//! algorithms need: dimension-generic grid constructors ([`Grid`]: 2-D
//! and 3-D meshes/tori are the `dims = [w, h]` / `[w, h, d]` special
//! cases), hop-distance metrics, the *quadrant graph* of a commodity (the
//! DAG of minimal-path links — an orthant DAG on higher-rank grids — used
//! by both the single-path router and the jitter-constrained split
//! router), Dijkstra shortest paths with caller-supplied link weights, and
//! a seeded random core-graph generator standing in for the LEDA graphs of
//! the paper's Table 2.
//!
//! # Example
//!
//! ```
//! use noc_graph::{CoreGraph, Topology};
//!
//! let mut app = CoreGraph::new();
//! let producer = app.add_core("producer");
//! let consumer = app.add_core("consumer");
//! app.add_comm(producer, consumer, 400.0).unwrap();
//!
//! let mesh = Topology::mesh(2, 2, 1_000.0);
//! assert_eq!(mesh.node_count(), 4);
//! assert!(app.core_count() <= mesh.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod core_graph;
mod dot;
mod error;
mod grid;
mod ids;
pub mod parse;
mod quadrant;
pub mod random;
mod topology;

pub use algo::{bfs_hops, dijkstra, DijkstraOutcome, PathCost};
pub use core_graph::{CoreEdge, CoreGraph};
pub use dot::{core_graph_dot, mapping_dot, topology_dot};
pub use error::GraphError;
pub use grid::{dims_label, Axis, Grid};
pub use ids::{CoreId, EdgeId, LinkId, NodeId};
pub use parse::{parse_core_graph, parse_topology, write_core_graph, ParseError};
pub use quadrant::{quadrant_links, QuadrantDag};
pub use random::{RandomGraphConfig, RandomGraphFamily};
pub use topology::{Link, Topology, TopologyKind};

/// Convenience alias: results returned by fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
