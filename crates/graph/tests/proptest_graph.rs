//! Property-based tests for topologies, quadrant DAGs, Dijkstra and the
//! random graph generator.

use noc_graph::{bfs_hops, dijkstra, NodeId, QuadrantDag, RandomGraphConfig, Topology};
use proptest::prelude::*;

fn mesh_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=6, 1usize..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mesh hop distance is a metric: symmetric, zero iff equal, triangle
    /// inequality; and BFS agrees with the closed form.
    #[test]
    fn mesh_distance_is_a_metric((w, h) in mesh_dims(), seed in 0u64..1000) {
        let t = Topology::mesh(w, h, 1.0);
        let n = t.node_count();
        let a = NodeId::new((seed as usize) % n);
        let b = NodeId::new((seed as usize * 7 + 3) % n);
        let c = NodeId::new((seed as usize * 13 + 5) % n);
        prop_assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
        prop_assert_eq!(t.hop_distance(a, a), 0);
        if a != b {
            prop_assert!(t.hop_distance(a, b) > 0);
        }
        prop_assert!(
            t.hop_distance(a, c) <= t.hop_distance(a, b) + t.hop_distance(b, c)
        );
        let hops = bfs_hops(&t, a);
        prop_assert_eq!(hops[b.index()], Some(t.hop_distance(a, b)));
    }

    /// Torus distances never exceed mesh distances on the same grid.
    #[test]
    fn torus_shortcuts_never_lengthen((w, h) in (2usize..=6, 2usize..=6), seed in 0u64..1000) {
        let mesh = Topology::mesh(w, h, 1.0);
        let torus = Topology::torus(w, h, 1.0);
        let n = mesh.node_count();
        let a = NodeId::new((seed as usize) % n);
        let b = NodeId::new((seed as usize * 11 + 1) % n);
        prop_assert!(torus.hop_distance(a, b) <= mesh.hop_distance(a, b));
    }

    /// Every maximal walk through the quadrant DAG is a minimal path, and
    /// the DAG is non-empty whenever source != dest.
    #[test]
    fn quadrant_paths_are_minimal((w, h) in (2usize..=6, 2usize..=6), seed in 0u64..1000) {
        let t = Topology::mesh(w, h, 1.0);
        let n = t.node_count();
        let s = NodeId::new((seed as usize) % n);
        let d = NodeId::new((seed as usize * 17 + 2) % n);
        prop_assume!(s != d);
        let q = QuadrantDag::new(&t, s, d);
        prop_assert!(!q.links().is_empty());
        // Walk greedily along quadrant links; each step must reduce the
        // distance to the destination by exactly one.
        let mut at = s;
        let mut steps = 0;
        while at != d {
            let next = t
                .out_links(at)
                .find(|(id, _)| q.contains(*id))
                .map(|(_, l)| l.dst)
                .expect("quadrant has no dead ends");
            prop_assert_eq!(t.hop_distance(next, d) + 1, t.hop_distance(at, d));
            at = next;
            steps += 1;
            prop_assert!(steps <= n, "walk did not terminate");
        }
        prop_assert_eq!(steps, t.hop_distance(s, d));
    }

    /// Dijkstra with unit weights matches hop distance on meshes and tori.
    #[test]
    fn dijkstra_matches_distance((w, h) in mesh_dims(), torus in any::<bool>(), seed in 0u64..1000) {
        let t = if torus { Topology::torus(w, h, 1.0) } else { Topology::mesh(w, h, 1.0) };
        let n = t.node_count();
        let a = NodeId::new((seed as usize) % n);
        let b = NodeId::new((seed as usize * 5 + 1) % n);
        let out = dijkstra(&t, a, b, |_| 1.0, |_| true).expect("meshes are connected");
        prop_assert_eq!(out.hops(), t.hop_distance(a, b));
        // Path is contiguous.
        for (i, &l) in out.links.iter().enumerate() {
            prop_assert_eq!(t.link(l).src, out.nodes[i]);
            prop_assert_eq!(t.link(l).dst, out.nodes[i + 1]);
        }
    }

    /// Dijkstra's cost with arbitrary non-negative weights is a lower
    /// bound on any explicitly constructed path's weight (here: an XY
    /// staircase walk).
    #[test]
    fn dijkstra_is_optimal_vs_xy_walk(
        (w, h) in (2usize..=5, 2usize..=5),
        seed in 0u64..500,
        weights_seed in 0u64..100,
    ) {
        let t = Topology::mesh(w, h, 1.0);
        let n = t.node_count();
        let a = NodeId::new((seed as usize) % n);
        let b = NodeId::new((seed as usize * 3 + 2) % n);
        prop_assume!(a != b);
        let weight = |l: noc_graph::LinkId| {
            // Deterministic pseudo-random positive weights.
            let x = l.index() as u64 * 2654435761 + weights_seed * 97;
            1.0 + (x % 100) as f64 / 10.0
        };
        let best = dijkstra(&t, a, b, weight, |_| true).expect("connected");

        // Manual XY walk.
        let (ax, ay) = t.coords(a);
        let (bx, by) = t.coords(b);
        let mut cost = 0.0;
        let (mut x, mut y) = (ax, ay);
        while x != bx {
            let nx = if bx > x { x + 1 } else { x - 1 };
            let l = t.find_link(t.node_at(x, y).unwrap(), t.node_at(nx, y).unwrap()).unwrap();
            cost += weight(l);
            x = nx;
        }
        while y != by {
            let ny = if by > y { y + 1 } else { y - 1 };
            let l = t.find_link(t.node_at(x, y).unwrap(), t.node_at(x, ny).unwrap()).unwrap();
            cost += weight(l);
            y = ny;
        }
        prop_assert!(best.cost <= cost + 1e-9, "dijkstra {} > xy walk {}", best.cost, cost);
    }

    /// Generated random graphs are connected, respect their bandwidth
    /// range and have the requested number of cores.
    #[test]
    fn random_graphs_are_well_formed(cores in 2usize..40, seed in 0u64..50) {
        let cfg = RandomGraphConfig { cores, ..Default::default() };
        let g = cfg.generate(seed);
        prop_assert_eq!(g.core_count(), cores);
        prop_assert!(g.is_connected());
        prop_assert!(g.edge_count() >= cores - 1);
        for (_, e) in g.edges() {
            prop_assert!(e.bandwidth >= cfg.min_bandwidth);
            prop_assert!(e.bandwidth <= cfg.max_bandwidth);
        }
    }

    /// The generator hits the requested shape across configurations: the
    /// edge count equals `round(cores · avg_degree)` (clamped between the
    /// spanning minimum and the simple-digraph maximum), the graph stays
    /// connected, and bandwidths stay inside the configured range — the
    /// guarantees the `noc-dse` random sweeps build on.
    #[test]
    fn random_graphs_hit_requested_degree_and_range(
        cores in 4usize..32,
        tenths_degree in 10u32..45, // avg_degree 1.0..4.5
        bw_base in 1u32..200,
        bw_spread in 0u32..100,
        seed in 0u64..200,
    ) {
        let cfg = RandomGraphConfig {
            cores,
            avg_degree: tenths_degree as f64 / 10.0,
            min_bandwidth: noc_units::Mbps::raw(bw_base as f64),
            max_bandwidth: noc_units::Mbps::raw((bw_base + bw_spread) as f64),
        };
        let g = cfg.generate(seed);
        prop_assert_eq!(g.core_count(), cores);
        prop_assert!(g.is_connected(), "seed {} disconnected", seed);
        let target = ((cores as f64 * cfg.avg_degree).round() as usize)
            .clamp(cores - 1, cores * (cores - 1));
        prop_assert_eq!(g.edge_count(), target, "cores {} degree {}", cores, cfg.avg_degree);
        for (_, e) in g.edges() {
            prop_assert!(e.bandwidth >= cfg.min_bandwidth);
            prop_assert!(e.bandwidth <= cfg.max_bandwidth);
        }
        // Reproducibility: the same (config, seed) pair is one graph.
        prop_assert_eq!(cfg.generate(seed), g);
    }

    /// Mesh link structure: every node's degree matches its position
    /// (corner 2, edge 3, interior 4) and in-degree equals out-degree.
    #[test]
    fn mesh_degrees_match_positions((w, h) in (2usize..=7, 2usize..=7)) {
        let t = Topology::mesh(w, h, 1.0);
        for node in t.nodes() {
            let (x, y) = t.coords(node);
            let expected = [x > 0, x + 1 < w, y > 0, y + 1 < h]
                .iter()
                .filter(|&&b| b)
                .count();
            prop_assert_eq!(t.degree(node), expected);
            prop_assert_eq!(t.in_links(node).count(), t.out_links(node).count());
        }
    }
}
