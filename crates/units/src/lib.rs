//! Unit-safe typed quantities for the NMAP suite.
//!
//! The paper mixes units everywhere: bandwidth constraints in MB/s
//! (Inequality 3), communication cost in hops·MB/s (Equation 7), and
//! simulator time in cycles. This crate gives each its own newtype so the
//! compiler rejects cross-unit arithmetic — `Mbps + HopMbps` is a type
//! error, `Mbps × Hops` is the one sanctioned product (and it yields
//! [`HopMbps`]).
//!
//! # Invariants and constructors
//!
//! Every f64-backed quantity holds a **finite, non-negative** value
//! (`-0.0` is normalized to `+0.0`); [`Score`] additionally admits `+∞`
//! as the infeasible sentinel. Two constructors per type:
//!
//! * `new` — checked; rejects NaN/∞/negative with a [`UnitError`]. Use it
//!   at every boundary where a bare `f64` enters the typed world (parsers,
//!   builders, public intake APIs).
//! * `raw` — trusted; `debug_assert!`s the invariant. Use it where the
//!   value is produced by arithmetic that preserves the invariant (hot
//!   paths, fold results). CI runs the release test suite with
//!   `-C debug-assertions` so these guards actually execute.
//!
//! Because NaN is unrepresentable, every quantity has a **total order**
//! (`Ord` via `f64::total_cmp`) — quantile and sort code needs no NaN
//! special-casing.
//!
//! # The one-seam serialization rule
//!
//! All human- and machine-readable output goes through exactly one seam
//! per type: `Display` delegates to the inner `f64`'s `Display` (so `{}`
//! keeps Rust's shortest-round-trip form and `{:.1}` keeps its meaning),
//! and `to_f64`/`get` expose the raw value for writers that format
//! themselves. Nothing else renders a quantity, which is what keeps every
//! JSONL/CSV/summary byte-identical across refactors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};
use std::str::FromStr;

/// A quantity constructor rejected its input.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The value was NaN or infinite.
    NotFinite {
        /// Unit name (e.g. `"MB/s"`).
        unit: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value was negative.
    Negative {
        /// Unit name.
        unit: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value fell outside the type's closed range (e.g. a
    /// [`CycleFrac`] outside `[0, 1]`).
    OutOfRange {
        /// Unit name.
        unit: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The text form did not parse as a number.
    Parse {
        /// Unit name.
        unit: &'static str,
        /// The offending input.
        input: String,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::NotFinite { unit, value } => {
                write!(f, "{unit} value must be finite, got {value}")
            }
            UnitError::Negative { unit, value } => {
                write!(f, "{unit} value must be non-negative, got {value}")
            }
            UnitError::OutOfRange { unit, value, min, max } => {
                write!(f, "{unit} value must be in [{min}, {max}], got {value}")
            }
            UnitError::Parse { unit, input } => {
                write!(f, "cannot parse {unit} value from {input:?}")
            }
        }
    }
}

impl std::error::Error for UnitError {}

/// Implements the comparison traits for an f64 newtype whose invariant
/// excludes NaN: `total_cmp` is then a total order consistent with value
/// equality (constructors normalize `-0.0` to `+0.0`).
macro_rules! impl_total_order {
    ($name:ident) => {
        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for $name {}
        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }
    };
}

/// Implements the one-seam rendering (`Display` delegates to the inner
/// `f64`, so format specs pass through) and checked text parsing.
macro_rules! impl_display_parse {
    ($name:ident) => {
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
        impl FromStr for $name {
            type Err = UnitError;
            fn from_str(s: &str) -> Result<Self, UnitError> {
                let value: f64 = s
                    .parse()
                    .map_err(|_| UnitError::Parse { unit: Self::UNIT, input: s.to_string() })?;
                Self::new(value)
            }
        }
    };
}

/// Defines a finite, non-negative f64 quantity newtype.
macro_rules! nonneg_quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name(f64);

        impl $name {
            /// The unit's display name.
            pub const UNIT: &'static str = $unit;
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Checked constructor: rejects NaN, ±∞ and negative values.
            ///
            /// # Errors
            ///
            /// [`UnitError::NotFinite`] or [`UnitError::Negative`].
            #[inline]
            pub fn new(value: f64) -> Result<Self, UnitError> {
                if !value.is_finite() {
                    return Err(UnitError::NotFinite { unit: $unit, value });
                }
                if value < 0.0 {
                    return Err(UnitError::Negative { unit: $unit, value });
                }
                // `-0.0 + 0.0 == +0.0`; every other finite value is
                // unchanged. Keeps `total_cmp` equality == value equality.
                Ok(Self(value + 0.0))
            }

            /// Trusted constructor for values produced by
            /// invariant-preserving arithmetic (hot paths). The invariant
            /// is `debug_assert!`ed; CI exercises it in release mode via
            /// `-C debug-assertions`.
            #[inline]
            pub fn raw(value: f64) -> Self {
                debug_assert!(
                    value.is_finite() && value >= 0.0,
                    concat!($unit, " value must be finite and non-negative, got {}"),
                    value
                );
                Self(value + 0.0)
            }

            /// The raw value — the only numeric exit seam.
            #[inline]
            pub fn to_f64(self) -> f64 {
                self.0
            }

            /// True when the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// The larger of the two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if other > self { other } else { self }
            }

            /// Dimensionless ratio `self / denom` (`NaN`-free: 0/0 is
            /// defined as 0, x/0 as `+∞` only when `x > 0` never occurs
            /// here — callers guard zero denominators themselves when the
            /// distinction matters).
            #[inline]
            pub fn ratio(self, denom: Self) -> f64 {
                self.0 / denom.0
            }
        }

        impl_total_order!($name);
        impl_display_parse!($name);

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self::raw(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self::raw(iter.map(|q| q.0).sum())
            }
        }
    };
}

nonneg_quantity!(
    /// Bandwidth / throughput / link load in MB/s — the unit of link
    /// capacities (Inequality 3), commodity values (Equation 2) and
    /// simulator throughput columns.
    Mbps,
    "MB/s"
);
nonneg_quantity!(
    /// Communication cost in hops·MB/s — the Equation-7 objective: each
    /// commodity's bandwidth times the hop distance it travels.
    HopMbps,
    "hops*MB/s"
);
nonneg_quantity!(
    /// A latency measured in cycles, as a mean or other statistic (hence
    /// fractional; exact per-packet latencies are [`Cycles`]).
    Latency,
    "cycles"
);

impl Mbps {
    /// Checked constructor for values that must be **strictly positive**
    /// (link capacities, `.dse` bandwidth sweep points).
    ///
    /// # Errors
    ///
    /// [`UnitError`] as for [`Mbps::new`]; zero reports
    /// [`UnitError::OutOfRange`] with `min > 0`.
    #[inline]
    pub fn positive(value: f64) -> Result<Self, UnitError> {
        let q = Self::new(value)?;
        if q.is_zero() {
            return Err(UnitError::OutOfRange {
                unit: Self::UNIT,
                value,
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            });
        }
        Ok(q)
    }
}

/// Hop count of a route (dimensionless path length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hops(usize);

impl Hops {
    /// Wraps a hop count.
    #[inline]
    pub fn new(hops: usize) -> Self {
        Self(hops)
    }

    /// The raw count.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for Hops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// `Mbps × Hops → HopMbps`: the Equation-7 product, and the only
/// cross-unit multiplication the type system admits.
impl Mul<Hops> for Mbps {
    type Output = HopMbps;
    #[inline]
    fn mul(self, rhs: Hops) -> HopMbps {
        HopMbps::raw(self.0 * rhs.0 as f64)
    }
}

/// Commutative spelling of [`Mbps`]` × `[`Hops`].
impl Mul<Mbps> for Hops {
    type Output = HopMbps;
    #[inline]
    fn mul(self, rhs: Mbps) -> HopMbps {
        rhs * self
    }
}

/// Scaling a rate by a dimensionless fraction (e.g. a split-route share)
/// keeps the unit.
impl Mul<f64> for Mbps {
    type Output = Mbps;
    #[inline]
    fn mul(self, rhs: f64) -> Mbps {
        Mbps::raw(self.0 * rhs)
    }
}

/// Signed communication-cost difference in hops·MB/s — the unit of
/// [`HopMbps`]` − `[`HopMbps`] and of the swap-delta kernel's result.
/// Finite, any sign.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostDelta(f64);

impl CostDelta {
    /// The unit's display name.
    pub const UNIT: &'static str = "hops*MB/s";
    /// The zero delta.
    pub const ZERO: Self = Self(0.0);

    /// Checked constructor: rejects NaN and ±∞.
    ///
    /// # Errors
    ///
    /// [`UnitError::NotFinite`].
    #[inline]
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if !value.is_finite() {
            return Err(UnitError::NotFinite { unit: Self::UNIT, value });
        }
        Ok(Self(value + 0.0))
    }

    /// Trusted constructor (see the crate docs); `debug_assert!`s
    /// finiteness.
    #[inline]
    pub fn raw(value: f64) -> Self {
        debug_assert!(value.is_finite(), "cost delta must be finite, got {}", value);
        Self(value + 0.0)
    }

    /// The raw value — the only numeric exit seam.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }

    /// True for deltas that strictly improve (lower) the cost.
    #[inline]
    pub fn is_improvement(self) -> bool {
        self.0 < 0.0
    }
}

impl_total_order!(CostDelta);

impl fmt::Display for CostDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl Sub for HopMbps {
    type Output = CostDelta;
    #[inline]
    fn sub(self, rhs: Self) -> CostDelta {
        CostDelta::raw(self.0 - rhs.0)
    }
}

/// An exact simulator time or per-packet latency in whole cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Self = Self(0);

    /// Wraps a cycle count (every `u64` is valid).
    #[inline]
    pub fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// The raw count — the only numeric exit seam.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64` (exact below 2⁵³), for ratio/mean arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating difference `self − earlier` (0 when `earlier` is
    /// later), the overflow-safe spelling of an elapsed interval.
    #[inline]
    pub fn since(self, earlier: Self) -> Self {
        Self(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl Add for Cycles {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|c| c.0).sum())
    }
}

/// The fraction of wall cycles a simulator loop actually executed — the
/// density signal the event queue exposes for hybrid-loop decisions.
/// Finite, in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleFrac(f64);

impl CycleFrac {
    /// The unit's display name.
    pub const UNIT: &'static str = "fraction";
    /// Zero density (no cycle executed).
    pub const ZERO: Self = Self(0.0);
    /// Full density (every cycle executed).
    pub const ONE: Self = Self(1.0);

    /// Checked constructor: rejects NaN/∞ and values outside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`UnitError::NotFinite`] or [`UnitError::OutOfRange`].
    #[inline]
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if !value.is_finite() {
            return Err(UnitError::NotFinite { unit: Self::UNIT, value });
        }
        if !(0.0..=1.0).contains(&value) {
            return Err(UnitError::OutOfRange { unit: Self::UNIT, value, min: 0.0, max: 1.0 });
        }
        Ok(Self(value + 0.0))
    }

    /// Trusted constructor (see the crate docs); `debug_assert!`s the
    /// `[0, 1]` invariant.
    #[inline]
    pub fn raw(value: f64) -> Self {
        debug_assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "cycle fraction must be in [0, 1], got {}",
            value
        );
        Self(value + 0.0)
    }

    /// The raw value — the only numeric exit seam.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }
}

impl_total_order!(CycleFrac);

impl fmt::Display for CycleFrac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A search evaluation score: either a feasible Equation-7 cost or the
/// `+∞` infeasibility sentinel the paper's lazy-feasibility search
/// compares against. Non-negative, never NaN, totally ordered — so
/// `score < threshold` and incumbent updates need no special cases.
#[derive(Debug, Clone, Copy)]
pub struct Score(f64);

impl Score {
    /// The infeasible sentinel: compares greater than every feasible
    /// score.
    pub const INFEASIBLE: Self = Self(f64::INFINITY);
    /// The zero (best possible) score.
    pub const ZERO: Self = Self(0.0);

    /// A feasible score carrying its cost.
    #[inline]
    pub fn feasible(cost: HopMbps) -> Self {
        Self(cost.to_f64())
    }

    /// Checked constructor: rejects NaN and negative values; `+∞` is the
    /// infeasible sentinel and is accepted.
    ///
    /// # Errors
    ///
    /// [`UnitError::NotFinite`] (NaN only) or [`UnitError::Negative`].
    #[inline]
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if value.is_nan() {
            return Err(UnitError::NotFinite { unit: "score", value });
        }
        if value < 0.0 {
            return Err(UnitError::Negative { unit: "score", value });
        }
        Ok(Self(value + 0.0))
    }

    /// Trusted constructor (see the crate docs); `debug_assert!`s the
    /// not-NaN/non-negative invariant.
    #[inline]
    pub fn raw(value: f64) -> Self {
        debug_assert!(!value.is_nan() && value >= 0.0, "score must be ≥ 0 or +∞, got {}", value);
        Self(value + 0.0)
    }

    /// True for scores that carry a feasible cost (not the sentinel).
    #[inline]
    pub fn is_feasible(self) -> bool {
        self.0.is_finite()
    }

    /// The feasible cost, or `None` for [`Score::INFEASIBLE`].
    #[inline]
    pub fn cost(self) -> Option<HopMbps> {
        self.is_feasible().then(|| HopMbps::raw(self.0))
    }

    /// The raw value (`+∞` for the sentinel) — the only numeric exit
    /// seam.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }
}

impl_total_order!(Score);

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Panicking [`Mbps`] literal for compile-time-known values (tests,
/// builders with constant defaults).
///
/// # Panics
///
/// Panics on NaN/∞/negative input.
#[inline]
pub fn mbps(value: f64) -> Mbps {
    match Mbps::new(value) {
        Ok(q) => q,
        Err(e) => panic!("{e}"),
    }
}

/// Panicking [`HopMbps`] literal for compile-time-known values.
///
/// # Panics
///
/// Panics on NaN/∞/negative input.
#[inline]
pub fn hop_mbps(value: f64) -> HopMbps {
    match HopMbps::new(value) {
        Ok(q) => q,
        Err(e) => panic!("{e}"),
    }
}

/// Panicking [`Latency`] literal for compile-time-known values.
///
/// # Panics
///
/// Panics on NaN/∞/negative input.
#[inline]
pub fn latency(value: f64) -> Latency {
    match Latency::new(value) {
        Ok(q) => q,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_constructors_reject_invalid_values() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(Mbps::new(bad).is_err(), "{bad}");
            assert!(HopMbps::new(bad).is_err(), "{bad}");
            assert!(Latency::new(bad).is_err(), "{bad}");
        }
        assert!(CostDelta::new(-5.0).is_ok(), "deltas are signed");
        assert!(CostDelta::new(f64::INFINITY).is_err());
        assert!(Score::new(f64::INFINITY).is_ok(), "infeasible sentinel");
        assert!(Score::new(f64::NAN).is_err());
        assert!(Score::new(-1.0).is_err());
        assert!(CycleFrac::new(1.5).is_err());
        assert!(CycleFrac::new(-0.1).is_err());
        assert!(Mbps::positive(0.0).is_err());
        assert!(Mbps::positive(1.0).is_ok());
    }

    #[test]
    fn negative_zero_is_normalized() {
        let z = Mbps::new(-0.0).unwrap();
        assert_eq!(z, Mbps::ZERO);
        assert_eq!(z.to_f64().to_bits(), 0.0f64.to_bits());
        assert_eq!(format!("{z}"), "0");
        assert_eq!(CostDelta::raw(-0.0).to_f64().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn display_matches_f64_display_exactly() {
        for v in [0.0, 1.0, 0.1, 2600.0, 640.8000000000001, 222.8244680851064] {
            assert_eq!(format!("{}", Mbps::raw(v)), format!("{v}"));
            assert_eq!(format!("{:.1}", HopMbps::raw(v)), format!("{v:.1}"));
            assert_eq!(format!("{:>10}", Latency::raw(v)), format!("{v:>10}"));
        }
        assert_eq!(format!("{}", Score::INFEASIBLE), format!("{}", f64::INFINITY));
        assert_eq!(format!("{}", Cycles::new(1024)), "1024");
    }

    #[test]
    fn equation_seven_product() {
        let cost = Mbps::new(100.0).unwrap() * Hops::new(4);
        assert_eq!(cost, HopMbps::new(400.0).unwrap());
        assert_eq!(Hops::new(4) * Mbps::new(100.0).unwrap(), cost);
        assert_eq!(cost + HopMbps::new(100.0).unwrap(), hop_mbps(500.0));
        let total: HopMbps = [hop_mbps(1.0), hop_mbps(2.0)].into_iter().sum();
        assert_eq!(total, hop_mbps(3.0));
    }

    #[test]
    fn cost_differences_are_signed_deltas() {
        let d = hop_mbps(100.0) - hop_mbps(150.0);
        assert!(d.is_improvement());
        assert_eq!(d.to_f64(), -50.0);
        assert!(!(hop_mbps(5.0) - hop_mbps(5.0)).is_improvement());
    }

    #[test]
    fn scores_order_totally_with_the_sentinel_last() {
        let mut v = [Score::INFEASIBLE, Score::feasible(hop_mbps(10.0)), Score::ZERO];
        v.sort();
        assert_eq!(v[0], Score::ZERO);
        assert_eq!(v[2], Score::INFEASIBLE);
        assert!(!Score::INFEASIBLE.is_feasible());
        assert_eq!(Score::feasible(hop_mbps(10.0)).cost(), Some(hop_mbps(10.0)));
        assert_eq!(Score::INFEASIBLE.cost(), None);
    }

    #[test]
    fn quantities_sort_without_nan_special_casing() {
        let mut v = vec![Mbps::raw(3.0), Mbps::ZERO, Mbps::raw(1.5)];
        v.sort();
        assert_eq!(v, vec![Mbps::ZERO, Mbps::raw(1.5), Mbps::raw(3.0)]);
        assert_eq!(Mbps::raw(1.0).max(Mbps::raw(2.0)), Mbps::raw(2.0));
        assert_eq!(Mbps::raw(6.0).ratio(Mbps::raw(3.0)), 2.0);
    }

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles::new(5) + Cycles::new(7), Cycles::new(12));
        assert_eq!(Cycles::new(10).since(Cycles::new(4)), Cycles::new(6));
        assert_eq!(Cycles::new(4).since(Cycles::new(10)), Cycles::ZERO, "saturates");
        assert_eq!([Cycles::new(1), Cycles::new(2)].into_iter().sum::<Cycles>(), Cycles::new(3));
        assert_eq!(Cycles::new(3).as_f64(), 3.0);
    }

    #[test]
    fn parse_round_trips_shortest_form() {
        for v in [0.0, 1.0, 0.1, 2600.0, 1e-300, f64::MAX] {
            let q = Mbps::new(v).unwrap();
            assert_eq!(format!("{q}").parse::<Mbps>().unwrap(), q);
        }
        assert!("nan".parse::<Mbps>().is_err());
        assert!("-1".parse::<Mbps>().is_err());
        assert!("bogus".parse::<Mbps>().is_err());
    }

    #[test]
    fn unit_errors_render_their_context() {
        let e = Mbps::new(f64::NAN).unwrap_err();
        assert!(e.to_string().contains("MB/s"), "{e}");
        let e = Mbps::new(-2.0).unwrap_err();
        assert!(e.to_string().contains("non-negative"), "{e}");
        let e = CycleFrac::new(2.0).unwrap_err();
        assert!(e.to_string().contains("[0, 1]"), "{e}");
        let e = "x".parse::<Latency>().unwrap_err();
        assert!(e.to_string().contains("parse"), "{e}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "finite")]
    fn raw_debug_asserts_nan_freedom() {
        let _ = Mbps::raw(f64::NAN);
    }
}
