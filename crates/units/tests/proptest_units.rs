//! Property tests for the `noc-units` quantity types: the checked
//! constructors reject exactly the out-of-domain inputs, arithmetic is
//! closed over valid quantities (never smuggling NaN/∞ past the
//! boundary), and the one serialization seam (`Display`/`FromStr`/
//! `to_f64`) round-trips bit-exactly.

use std::str::FromStr;

use noc_units::{Cycles, HopMbps, Hops, Latency, Mbps, Score};
use proptest::prelude::*;

/// Finite non-negative payloads — the domain every quantity accepts.
fn valid() -> impl Strategy<Value = f64> {
    (0u8..4, 0.0f64..1e12).prop_map(|(kind, v)| match kind {
        0 => v,
        1 => 0.0,
        2 => f64::MIN_POSITIVE,
        _ => f64::MAX / 4.0,
    })
}

/// Everything a checked constructor must refuse.
fn invalid() -> impl Strategy<Value = f64> {
    (0u8..4, f64::MIN_POSITIVE..1e12).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => -v,
    })
}

proptest! {
    // ---- constructor boundary -------------------------------------

    #[test]
    fn constructors_accept_the_valid_domain(v in valid()) {
        prop_assert!(Mbps::new(v).is_ok());
        prop_assert!(HopMbps::new(v).is_ok());
        prop_assert!(Latency::new(v).is_ok());
        prop_assert!(Score::new(v).is_ok());
    }

    #[test]
    fn constructors_reject_nan_inf_negative(v in invalid()) {
        prop_assert!(Mbps::new(v).is_err());
        prop_assert!(HopMbps::new(v).is_err());
        prop_assert!(Latency::new(v).is_err());
    }

    #[test]
    fn positive_constructor_also_rejects_zero(v in valid()) {
        prop_assert_eq!(Mbps::positive(v).is_ok(), v > 0.0);
    }

    #[test]
    fn negative_zero_is_normalized(v in Just(-0.0f64)) {
        let q = Mbps::new(v).unwrap();
        prop_assert!(q.to_f64().is_sign_positive());
        prop_assert_eq!(q, Mbps::ZERO);
    }

    // ---- arithmetic unit-closure ----------------------------------

    #[test]
    fn addition_is_closed_and_exact(a in valid(), b in valid()) {
        // Quantity addition must equal raw f64 addition bit-for-bit
        // (byte-identity of every serialized sum) unless the sum
        // overflows to infinity, which the quantity domain forbids.
        let (qa, qb) = (Mbps::new(a).unwrap(), Mbps::new(b).unwrap());
        if (a + b).is_finite() {
            let sum = qa + qb;
            prop_assert_eq!(sum.to_f64().to_bits(), (a + b).to_bits());
        }
    }

    #[test]
    fn sum_matches_fold_order(values in prop::collection::vec(0.0f64..1e9, 0..16)) {
        // `Sum` must accumulate in iteration order, exactly like the
        // bare-f64 loop it replaced.
        let typed: Mbps = values.iter().map(|&v| Mbps::new(v).unwrap()).sum();
        let raw = values.iter().fold(0.0f64, |acc, &v| acc + v);
        prop_assert_eq!(typed.to_f64().to_bits(), raw.to_bits());
    }

    #[test]
    fn rate_times_hops_is_hop_mbps(rate in 0.0f64..1e9, hops in 0usize..64) {
        let product: HopMbps = Mbps::new(rate).unwrap() * Hops::new(hops);
        prop_assert_eq!(product.to_f64().to_bits(), (rate * hops as f64).to_bits());
        // And commuted.
        let flipped: HopMbps = Hops::new(hops) * Mbps::new(rate).unwrap();
        prop_assert_eq!(flipped, product);
    }

    #[test]
    fn cost_difference_round_trips(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let delta = HopMbps::new(a).unwrap() - HopMbps::new(b).unwrap();
        prop_assert_eq!(delta.to_f64().to_bits(), (a - b).to_bits());
    }

    #[test]
    fn ord_agrees_with_f64_on_the_valid_domain(a in valid(), b in valid()) {
        // `Ord` via total_cmp must agree with the partial order the raw
        // comparators used — the comparator swap is behavior-preserving.
        let (qa, qb) = (Mbps::new(a).unwrap(), Mbps::new(b).unwrap());
        prop_assert_eq!(qa.cmp(&qb), a.partial_cmp(&b).unwrap());
    }

    #[test]
    fn max_matches_f64_max(a in valid(), b in valid()) {
        let m = Mbps::new(a).unwrap().max(Mbps::new(b).unwrap());
        prop_assert_eq!(m.to_f64().to_bits(), a.max(b).to_bits());
    }

    #[test]
    fn cycles_add_saturates_nothing_in_range(a in 0u64..1u64 << 62, b in 0u64..1u64 << 62) {
        prop_assert_eq!((Cycles::new(a) + Cycles::new(b)).get(), a + b);
    }

    // ---- serialization seam ---------------------------------------

    #[test]
    fn display_is_bitwise_f64_display(v in valid()) {
        // The one-seam rule: `{}` on a quantity is `{}` on its payload,
        // so pre-refactor outputs stay byte-identical.
        let q = Mbps::new(v).unwrap();
        prop_assert_eq!(format!("{q}"), format!("{v}"));
        prop_assert_eq!(format!("{q:.1}"), format!("{v:.1}"));
        prop_assert_eq!(format!("{q:.0}"), format!("{v:.0}"));
    }

    #[test]
    fn display_parse_round_trip(v in valid()) {
        // Rust's shortest-round-trip float formatting guarantees
        // parse(format(v)) == v, and the quantity seam must preserve it.
        let q = Mbps::new(v).unwrap();
        let back = Mbps::from_str(&format!("{q}")).unwrap();
        prop_assert_eq!(back.to_f64().to_bits(), q.to_f64().to_bits());
    }

    #[test]
    fn from_str_rejects_out_of_domain_text(v in invalid()) {
        let text = format!("{v}");
        prop_assert!(Mbps::from_str(&text).is_err());
        prop_assert!(Latency::from_str(&text).is_err());
    }

    // ---- Score: the one type that admits +inf ---------------------

    #[test]
    fn score_feasibility_round_trips(cost in valid()) {
        let s = Score::feasible(HopMbps::new(cost).unwrap());
        prop_assert!(s.is_feasible());
        prop_assert_eq!(s.cost().unwrap().to_f64().to_bits(), cost.to_bits());
        prop_assert!(Score::INFEASIBLE.cost().is_none());
        prop_assert!(s < Score::INFEASIBLE);
    }
}
