//! The delta-gated swap descent's central guarantee: **bit-identical**
//! outcomes to the retained full-recompute kernel — same mappings, same
//! cost bits, same routed paths/loads, same evaluation counts and the
//! same winners — on every bundled application and on seeded random
//! graphs, under generous and tight link capacities alike.
//!
//! The gate may only skip candidates the full `evaluate()` would reject
//! from its threshold comparison without routing; any divergence here
//! means the floating-point safety margin is wrong.

use nmap::{map_single_path_kernel, EvalContext, MappingProblem, SinglePathOptions, SwapKernel};
use noc_apps::App;
use noc_graph::{RandomGraphConfig, Topology};

/// Runs both kernels on one problem/options pair and demands equality of
/// the entire outcome struct (mapping, cost, feasibility, paths, loads,
/// tables, evaluations).
fn assert_kernels_identical(problem: &MappingProblem, options: &SinglePathOptions, label: &str) {
    let full =
        map_single_path_kernel(&mut EvalContext::new(problem), options, SwapKernel::FullRecompute)
            .unwrap_or_else(|e| panic!("{label}: full kernel failed: {e}"));
    let gated =
        map_single_path_kernel(&mut EvalContext::new(problem), options, SwapKernel::DeltaGated)
            .unwrap_or_else(|e| panic!("{label}: gated kernel failed: {e}"));
    assert_eq!(full, gated, "{label}: kernels diverged");
}

#[test]
fn kernels_agree_on_all_six_bundled_apps() {
    for app in App::all() {
        let graph = app.core_graph();
        let (w, h) = app.mesh_dims();
        // Generous capacity: the descent mostly compares costs.
        let generous = MappingProblem::new(graph.clone(), Topology::mesh(w, h, 2_000.0)).unwrap();
        // Tight capacity: infeasible candidates score INFINITY, exercising
        // the incumbent-stays-infinite and feasibility-flip paths.
        let tight = MappingProblem::new(graph, Topology::mesh(w, h, 400.0)).unwrap();
        for (problem, regime) in [(&generous, "generous"), (&tight, "tight")] {
            assert_kernels_identical(
                problem,
                &SinglePathOptions::paper_exact(),
                &format!("{} {regime} paper", app.name()),
            );
        }
        // The default multi-restart configuration on the generous fabric.
        assert_kernels_identical(
            &generous,
            &SinglePathOptions::default(),
            &format!("{} default", app.name()),
        );
    }
}

#[test]
fn kernels_agree_on_seeded_random_graphs() {
    // ≥ 4 seeded instances across sizes, mesh and torus, including a
    // capacity tight enough that feasibility steers the search.
    let cases = [
        (12usize, 0u64, 900.0),
        (16, 1, 2_000.0),
        (20, 2, 600.0),
        (25, 3, 2_000.0),
        (14, 4, 450.0),
    ];
    for (cores, seed, capacity) in cases {
        let graph = RandomGraphConfig { cores, ..Default::default() }.generate(seed);
        let (w, h) = Topology::fit_mesh_dims(cores);
        let mesh = MappingProblem::new(graph.clone(), Topology::mesh(w, h, capacity)).unwrap();
        assert_kernels_identical(
            &mesh,
            &SinglePathOptions::paper_exact(),
            &format!("rand{cores}#{seed} mesh"),
        );
        let torus = MappingProblem::new(graph, Topology::torus(w, h, capacity)).unwrap();
        assert_kernels_identical(
            &torus,
            &SinglePathOptions { passes: 2, restarts: 2 },
            &format!("rand{cores}#{seed} torus"),
        );
    }
}

#[test]
fn gated_kernel_is_the_default_everywhere() {
    // map_single_path / map_single_path_with must route through the gated
    // kernel (the perf win is the default), staying equal to the explicit
    // kernel calls.
    let graph = RandomGraphConfig { cores: 12, ..Default::default() }.generate(9);
    let problem = MappingProblem::new(graph, Topology::mesh(4, 3, 800.0)).unwrap();
    let options = SinglePathOptions::default();
    let implicit = nmap::map_single_path(&problem, &options).unwrap();
    let explicit =
        map_single_path_kernel(&mut EvalContext::new(&problem), &options, SwapKernel::DeltaGated)
            .unwrap();
    assert_eq!(implicit, explicit);
}
