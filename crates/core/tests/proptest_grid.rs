//! Property-based tests for the dimension-generic grid machinery:
//! dimension-ordered routing and orthant (quadrant) DAGs on random
//! N-dimensional meshes and tori.

use nmap::routing::route_dor;
use nmap::{Mapping, MappingProblem};
use noc_graph::{CoreGraph, NodeId, QuadrantDag, Topology};
use proptest::prelude::*;

/// Random grid dimensions: rank 1–4, extents 1–5, at most ~64 nodes so a
/// case stays cheap.
fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..=5, 1..=4)
        .prop_filter("node count bounded", |dims| dims.iter().product::<usize>() <= 64)
        .prop_filter("at least two nodes", |dims| dims.iter().product::<usize>() >= 2)
}

/// Independent per-axis distance oracle: wrap-aware only where the torus
/// wrap is realized (declared and extent > 2) — written from the paper's
/// definition, not via `Grid::distance`.
fn oracle_distance(dims: &[usize], torus: bool, a: &[usize], b: &[usize]) -> usize {
    dims.iter()
        .zip(a.iter().zip(b))
        .map(|(&extent, (&x, &y))| {
            let d = x.abs_diff(y);
            if torus && extent > 2 {
                d.min(extent - d)
            } else {
                d
            }
        })
        .sum()
}

/// A one-commodity problem between two distinct nodes of the grid.
fn pair_problem(topology: Topology, src: NodeId, dst: NodeId) -> (MappingProblem, Mapping) {
    let nodes = topology.node_count();
    let mut graph = CoreGraph::new();
    let a = graph.add_core("src");
    let b = graph.add_core("dst");
    graph.add_comm(a, b, 10.0).unwrap();
    let problem = MappingProblem::new(graph, topology).unwrap();
    let mut mapping = Mapping::new(nodes);
    mapping.place(a, src);
    mapping.place(b, dst);
    (problem, mapping)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DOR route length equals the sum of per-axis wrap-aware
    /// distances (= the closed-form hop distance), and the route is a
    /// contiguous walk from source to destination.
    #[test]
    fn dor_route_length_is_the_sum_of_axis_distances(
        dims in dims_strategy(),
        torus in any::<bool>(),
        picks in (0usize..4096, 0usize..4096),
    ) {
        let topology = if torus {
            Topology::torus_nd(&dims, 1e9).unwrap()
        } else {
            Topology::mesh_nd(&dims, 1e9).unwrap()
        };
        let n = topology.node_count();
        let src = NodeId::new(picks.0 % n);
        let dst = NodeId::new(picks.1 % n);
        prop_assume!(src != dst);

        let want = oracle_distance(
            &dims,
            torus,
            topology.grid_coords(src),
            topology.grid_coords(dst),
        );
        prop_assert_eq!(topology.hop_distance(src, dst), want);

        let (problem, mapping) = pair_problem(topology, src, dst);
        let (paths, _) = route_dor(&problem, &mapping).unwrap();
        prop_assert_eq!(paths[0].hops(), want, "dims {:?} torus {}", &dims, torus);
        prop_assert_eq!(paths[0].nodes.first(), Some(&src));
        prop_assert_eq!(paths[0].nodes.last(), Some(&dst));
        // Contiguity: every step is a real directed link.
        for pair in paths[0].nodes.windows(2) {
            prop_assert!(problem.topology().find_link(pair[0], pair[1]).is_some());
        }
    }

    /// Every walk over the orthant DAG from the source terminates at the
    /// destination in exactly `dist` hops: each DAG link strictly reduces
    /// the distance to the destination, and no non-destination node on a
    /// minimal path is a dead end.
    #[test]
    fn orthant_dag_walks_terminate_at_dest(
        dims in dims_strategy(),
        torus in any::<bool>(),
        picks in (0usize..4096, 0usize..4096),
    ) {
        let topology = if torus {
            Topology::torus_nd(&dims, 1e9).unwrap()
        } else {
            Topology::mesh_nd(&dims, 1e9).unwrap()
        };
        let n = topology.node_count();
        let src = NodeId::new(picks.0 % n);
        let dst = NodeId::new(picks.1 % n);
        prop_assume!(src != dst);

        let dag = QuadrantDag::new(&topology, src, dst);
        prop_assert!(!dag.links().is_empty());
        let shortest = topology.hop_distance(src, dst);

        // (a) Every DAG link is productive: one hop closer to dest.
        for &l in dag.links() {
            let link = topology.link(l);
            prop_assert_eq!(
                topology.hop_distance(link.src, dst),
                topology.hop_distance(link.dst, dst) + 1,
            );
        }
        // (b) No dead ends: every non-destination node on a minimal path
        // has a productive out-link, so — with (a) — any maximal walk from
        // the source must reach dest after exactly `shortest` hops.
        for u in topology.nodes() {
            let on_minimal =
                topology.hop_distance(src, u) + topology.hop_distance(u, dst) == shortest;
            if !on_minimal || u == dst {
                continue;
            }
            prop_assert!(
                topology.out_links(u).any(|(id, _)| dag.contains(id)),
                "dead end at {} (dims {:?} torus {})", u, &dims, torus
            );
        }
        // (c) One explicit greedy walk as a sanity check.
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let (_, link) = topology
                .out_links(at)
                .find(|(id, _)| dag.contains(*id))
                .expect("no dead ends per (b)");
            at = link.dst;
            hops += 1;
            prop_assert!(hops <= shortest, "walk exceeded the minimal hop count");
        }
        prop_assert_eq!(hops, shortest);
    }
}
