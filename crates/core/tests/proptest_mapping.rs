//! Property-based tests for the mapping pipeline: placement invariants,
//! routing invariants and LP cross-checks on random problem instances.

use nmap::{
    initialize, map_single_path, mcf::solve_mcf, routing, Mapping, MappingProblem, McfKind,
    PathScope, SinglePathOptions,
};
use noc_graph::{NodeId, RandomGraphConfig, Topology};
use proptest::prelude::*;

/// A random problem: `cores` cores on the smallest fitting mesh.
fn random_problem(cores: usize, seed: u64, capacity: f64) -> MappingProblem {
    let graph = RandomGraphConfig {
        cores,
        avg_degree: 2.0,
        min_bandwidth: noc_units::Mbps::raw(10.0),
        max_bandwidth: noc_units::Mbps::raw(300.0),
    }
    .generate(seed);
    let (w, h) = Topology::fit_mesh_dims(cores);
    MappingProblem::new(graph, Topology::mesh(w, h, capacity)).expect("fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `initialize()` always yields a complete, injective placement.
    #[test]
    fn initialize_is_complete_and_injective(cores in 2usize..14, seed in 0u64..100) {
        let problem = random_problem(cores, seed, 1e9);
        let mapping = initialize(&problem);
        prop_assert!(mapping.is_complete(problem.cores()));
        let mut nodes: Vec<_> = mapping.assignments().map(|(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), cores);
    }

    /// The greedy router emits minimal contiguous paths whose aggregated
    /// loads match an independent recount, and the routed volume equals
    /// bandwidth × hop-distance per commodity.
    #[test]
    fn router_invariants(cores in 2usize..12, seed in 0u64..100) {
        let problem = random_problem(cores, seed, 1e9);
        let mapping = initialize(&problem);
        let (paths, loads) = routing::route_min_paths(&problem, &mapping).expect("mesh");
        let commodities = problem.commodities(&mapping);

        let mut recount = vec![0.0f64; problem.topology().link_count()];
        for path in &paths {
            let c = commodities[path.edge.index()];
            // Minimality.
            prop_assert_eq!(
                path.hops(),
                problem.topology().hop_distance(c.source, c.dest)
            );
            // Contiguity.
            prop_assert_eq!(path.nodes.first().copied(), Some(c.source));
            prop_assert_eq!(path.nodes.last().copied(), Some(c.dest));
            for (i, &l) in path.links.iter().enumerate() {
                prop_assert_eq!(problem.topology().link(l).src, path.nodes[i]);
                prop_assert_eq!(problem.topology().link(l).dst, path.nodes[i + 1]);
                recount[l.index()] += c.value.to_f64();
            }
        }
        for (id, _) in problem.topology().links() {
            prop_assert!((loads.get(id) - recount[id.index()]).abs() < 1e-9);
        }
    }

    /// Pairwise swaps preserve completeness and injectivity through long
    /// random swap sequences.
    #[test]
    fn swap_sequences_preserve_injectivity(
        cores in 2usize..10,
        seed in 0u64..50,
        swaps in prop::collection::vec((0usize..16, 0usize..16), 1..40),
    ) {
        let problem = random_problem(cores, seed, 1e9);
        let mut mapping = initialize(&problem);
        let n = problem.topology().node_count();
        for (a, b) in swaps {
            mapping.swap_nodes(NodeId::new(a % n), NodeId::new(b % n));
        }
        prop_assert!(mapping.is_complete(problem.cores()));
        let mut nodes: Vec<_> = mapping.assignments().map(|(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), cores);
    }

    /// The full single-path NMAP never returns a worse cost than its own
    /// initial placement, and its outcome is internally consistent.
    #[test]
    fn nmap_improves_on_initialize(cores in 3usize..10, seed in 0u64..50) {
        let problem = random_problem(cores, seed, 1e9);
        let init_cost = problem.comm_cost(&initialize(&problem));
        let out = map_single_path(&problem, &SinglePathOptions::paper_exact()).expect("maps");
        prop_assert!(out.comm_cost.to_f64() <= init_cost.to_f64() + 1e-9);
        prop_assert_eq!(out.comm_cost, problem.comm_cost(&out.mapping));
        prop_assert!(out.comm_cost.to_f64() >= problem.cores().total_bandwidth().to_f64() - 1e-9);
    }

    /// The min-max-load LP (fractional optimum) is a lower bound on the
    /// greedy single-path router's max load, under both scopes.
    #[test]
    fn lp_bounds_greedy_router(cores in 2usize..8, seed in 0u64..30) {
        let problem = random_problem(cores, seed, 1e9);
        let mapping = initialize(&problem);
        let (_, loads) = routing::route_min_paths(&problem, &mapping).expect("mesh");
        for scope in [PathScope::Quadrant, PathScope::AllPaths] {
            let lp = solve_mcf(&problem, &mapping, McfKind::MinMaxLoad, scope).expect("lp");
            prop_assert!(
                lp.objective <= loads.max() + 1e-6,
                "scope {scope:?}: bound {} > greedy {}",
                lp.objective,
                loads.max()
            );
        }
    }

    /// With unlimited capacities MCF2's optimal total flow equals the
    /// Equation-7 communication cost (all flow on shortest paths) — an
    /// exact cross-check between the LP pipeline and the combinatorial
    /// cost function.
    #[test]
    fn mcf2_matches_comm_cost_uncapacitated(cores in 2usize..7, seed in 0u64..30) {
        let problem = random_problem(cores, seed, 1e9);
        let mapping = initialize(&problem);
        let sol = solve_mcf(&problem, &mapping, McfKind::FlowMin, PathScope::AllPaths)
            .expect("uncapacitated MCF2 is feasible");
        let cost = problem.comm_cost(&mapping).to_f64();
        prop_assert!(
            (sol.objective - cost).abs() < 1e-4 * (1.0 + cost),
            "MCF2 {} vs Eq7 {}",
            sol.objective,
            cost
        );
    }

    /// MCF decomposition: route fractions per commodity sum to 1 and the
    /// reconstructed link loads match the LP's flow variables.
    #[test]
    fn mcf_decomposition_is_consistent(cores in 2usize..7, seed in 0u64..30) {
        let problem = random_problem(cores, seed, 1e9);
        let mapping = initialize(&problem);
        let sol = solve_mcf(&problem, &mapping, McfKind::MinMaxLoad, PathScope::Quadrant)
            .expect("lp");
        let commodities = problem.commodities(&mapping);
        for c in &commodities {
            if !c.value.is_zero() {
                let total: f64 =
                    sol.tables.routes_of(c.edge).iter().map(|r| r.fraction).sum();
                prop_assert!((total - 1.0).abs() < 1e-4, "fractions sum to {total}");
            }
        }
        let recomputed = sol.tables.link_loads(problem.topology(), &commodities);
        for (id, _) in problem.topology().links() {
            prop_assert!(
                (sol.link_loads.get(id) - recomputed.get(id)).abs()
                    < 1e-3 * (1.0 + sol.link_loads.get(id)),
                "link {id}: {} vs {}",
                sol.link_loads.get(id),
                recomputed.get(id)
            );
        }
    }

    /// MCF1 slack is zero whenever the greedy single-path routing already
    /// fits the capacities (splitting can only do better), and the
    /// feasibility flag of the single-path mapper is consistent with its
    /// own loads.
    #[test]
    fn mcf1_slack_consistent_with_feasibility(cores in 2usize..7, seed in 0u64..30) {
        let problem = random_problem(cores, seed, 400.0);
        let mapping = initialize(&problem);
        let (_, loads) = routing::route_min_paths(&problem, &mapping).expect("mesh");
        let slack = solve_mcf(&problem, &mapping, McfKind::SlackMin, PathScope::AllPaths)
            .expect("lp")
            .objective;
        if loads.within_capacity(problem.topology()) {
            prop_assert!(slack < 1e-4, "greedy fits but MCF1 slack = {slack}");
        }
        prop_assert!(slack >= -1e-9);
    }
}

/// Regression guard: an empty mapping refuses to produce commodities.
#[test]
#[should_panic(expected = "mapping must place every core")]
fn incomplete_mapping_panics_in_commodities() {
    let problem = random_problem(4, 0, 1e9);
    let empty = Mapping::new(problem.topology().node_count());
    let _ = problem.commodities(&empty);
}
