//! 2-D equivalence pin: the dimension-generic DOR router must reproduce
//! the legacy hand-written XY router **link for link** on every 2-D mesh
//! and torus.
//!
//! The generic router replaced the 2-D-only implementation during the
//! grid refactor; the old code lives on here as the test oracle. Any
//! divergence — step order, wrap tie-breaking, link identity — fails this
//! suite before it can perturb a pinned sweep output.

use nmap::routing::{route_dor, route_xy, CommodityPath, LinkLoads};
use nmap::{initialize, Mapping, MappingProblem};
use noc_graph::{LinkId, NodeId, RandomGraphConfig, Topology};

/// The pre-refactor `route_xy`: X then Y over `width`/`height` with the
/// torus shortcut per dimension, verbatim from the 2-D implementation.
fn legacy_route_xy(
    problem: &MappingProblem,
    mapping: &Mapping,
    width: usize,
    height: usize,
    wraps: bool,
) -> (Vec<CommodityPath>, LinkLoads) {
    let topology = problem.topology();
    let commodities = problem.commodities(mapping);
    let mut loads = LinkLoads::zeros(topology.link_count());
    let mut paths = Vec::with_capacity(commodities.len());

    for c in &commodities {
        let (mut x, mut y) = topology.coords(c.source);
        let (tx, ty) = topology.coords(c.dest);
        let mut nodes = vec![c.source];
        let mut links = Vec::new();

        while x != tx {
            let nx = legacy_step_toward(x, tx, width, wraps);
            let next = topology.node_at(nx, y).expect("in range");
            let link = topology
                .find_link(*nodes.last().expect("non-empty"), next)
                .expect("mesh neighbours are linked");
            links.push(link);
            nodes.push(next);
            x = nx;
        }
        while y != ty {
            let ny = legacy_step_toward(y, ty, height, wraps);
            let next = topology.node_at(x, ny).expect("in range");
            let link = topology
                .find_link(*nodes.last().expect("non-empty"), next)
                .expect("mesh neighbours are linked");
            links.push(link);
            nodes.push(next);
            y = ny;
        }

        for &l in &links {
            loads.add(l, c.value.to_f64());
        }
        paths.push(CommodityPath { edge: c.edge, links, nodes });
    }

    (paths, loads)
}

fn legacy_step_toward(from: usize, to: usize, extent: usize, wraps: bool) -> usize {
    let forward = (to + extent - from) % extent;
    let backward = extent - forward;
    let go_forward = if wraps && extent > 2 { forward <= backward } else { to > from };
    if go_forward {
        (from + 1) % extent
    } else {
        (from + extent - 1) % extent
    }
}

/// Deterministic placements on one problem: the constructive NMAP seed
/// plus a few derived swaps, covering many (source, dest) geometries.
fn placements(problem: &MappingProblem) -> Vec<Mapping> {
    let base = initialize(problem);
    let n = problem.topology().node_count();
    let mut all = vec![base];
    for k in 1..5 {
        let mut m = all.last().unwrap().clone();
        m.swap_nodes(NodeId::new((2 * k) % n), NodeId::new((5 * k + 1) % n));
        all.push(m);
    }
    all
}

fn assert_equivalent(width: usize, height: usize, torus: bool, seed: u64) {
    let topology = if torus {
        Topology::torus(width, height, 1e9)
    } else {
        Topology::mesh(width, height, 1e9)
    };
    let nodes = topology.node_count();
    let cores = (nodes * 3 / 4).max(2);
    let graph = RandomGraphConfig { cores, ..Default::default() }.generate(seed);
    let problem = MappingProblem::new(graph, topology).unwrap();

    for mapping in placements(&problem) {
        let (generic_paths, generic_loads) = route_dor(&problem, &mapping).unwrap();
        let (legacy_paths, legacy_loads) =
            legacy_route_xy(&problem, &mapping, width, height, torus);
        // Link-for-link identity: same link ids in the same order per
        // commodity, same node walks, bit-identical loads.
        assert_eq!(generic_paths.len(), legacy_paths.len());
        for (g, l) in generic_paths.iter().zip(&legacy_paths) {
            assert_eq!(g.edge, l.edge);
            let glinks: Vec<LinkId> = g.links.clone();
            assert_eq!(glinks, l.links, "{width}x{height} torus={torus} seed={seed}");
            assert_eq!(g.nodes, l.nodes);
        }
        assert_eq!(generic_loads.as_slice(), legacy_loads.as_slice());
        // And route_xy is still exactly that router under its 2-D name.
        let (alias_paths, alias_loads) = route_xy(&problem, &mapping).unwrap();
        assert_eq!(alias_paths, generic_paths);
        assert_eq!(alias_loads, generic_loads);
    }
}

#[test]
fn generic_dor_equals_legacy_xy_on_meshes() {
    for (w, h) in [(2, 2), (3, 3), (4, 3), (4, 4), (5, 2), (1, 6), (6, 1)] {
        for seed in 0..3 {
            assert_equivalent(w, h, false, seed);
        }
    }
}

#[test]
fn generic_dor_equals_legacy_xy_on_tori() {
    // Includes extents of 1 and 2 (no realized wrap) and odd/even wraps
    // (distinct tie-break geometries).
    for (w, h) in [(3, 3), (4, 4), (5, 3), (2, 5), (5, 2), (4, 5)] {
        for seed in 0..3 {
            assert_equivalent(w, h, true, seed);
        }
    }
}
