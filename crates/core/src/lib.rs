//! **NMAP** — bandwidth-constrained mapping of cores onto NoC architectures.
//!
//! This crate implements the primary contribution of Murali & De Micheli,
//! *"Bandwidth-Constrained Mapping of Cores onto NoC Architectures"*
//! (DATE 2004): a fast heuristic that assigns the cores of an application
//! (a [`noc_graph::CoreGraph`]) to the nodes of a mesh/torus NoC
//! (a [`noc_graph::Topology`]) such that link bandwidth constraints are
//! satisfied and the average communication delay
//! `Σ_k vl(d_k) · dist(src_k, dst_k)` (Equation 7) is minimized.
//!
//! Two routing regimes are provided:
//!
//! * [`map_single_path`] — Section 5: minimum-path routing. Commodities are
//!   routed one-by-one (in decreasing bandwidth order) over the least-loaded
//!   minimal path inside their *quadrant graph*; the placement is improved
//!   by pairwise swaps.
//! * [`map_with_splitting`] — Section 6: split-traffic routing. Feasibility
//!   and cost of each candidate placement are evaluated by the
//!   multi-commodity-flow programs **MCF1** (minimize capacity-violation
//!   slack, Equation 8) and **MCF2** (minimize total flow, Equation 9),
//!   solved with the [`noc_lp`] simplex. Restricting flow to the quadrant
//!   ([`PathScope::Quadrant`]) yields the low-jitter NMAPTM variant
//!   (Equation 10); [`PathScope::AllPaths`] yields NMAPTA.
//!
//! The building blocks (greedy [`initialize`] placement, the
//! [`routing`] module's load-balanced min-path and dimension-ordered XY
//! routers, link-load accounting, and the MCF model builder) are public so
//! baseline mappers and experiment harnesses can recombine them.
//!
//! The [`search`] module unifies every placement algorithm behind the
//! [`Mapper`] trait and a name-keyed registry ([`search::core_registry`]),
//! and adds two strategies built on the O(deg)
//! [`EvalContext::swap_delta`] kernel: seeded simulated annealing
//! ([`search::SaMapper`]) and deterministic tabu search
//! ([`search::TabuMapper`]).
//!
//! # Quickstart
//!
//! ```
//! use noc_graph::{CoreGraph, Topology};
//! use nmap::{MappingProblem, map_single_path, SinglePathOptions};
//!
//! // A four-core pipeline onto a 2x2 mesh with 1 GB/s links.
//! let mut app = CoreGraph::new();
//! let cores: Vec<_> = (0..4).map(|i| app.add_core(format!("c{i}"))).collect();
//! app.add_comm(cores[0], cores[1], 400.0)?;
//! app.add_comm(cores[1], cores[2], 300.0)?;
//! app.add_comm(cores[2], cores[3], 200.0)?;
//!
//! let problem = MappingProblem::new(app, Topology::mesh(2, 2, 1000.0))?;
//! let outcome = map_single_path(&problem, &SinglePathOptions::default())?;
//! assert!(outcome.feasible);
//! // A pipeline embeds perfectly: every hot edge spans exactly one link.
//! assert_eq!(outcome.comm_cost.to_f64(), 400.0 + 300.0 + 200.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod display;
mod error;
mod eval;
mod init;
mod mapping;
pub mod mcf;
mod problem;
pub mod routing;
pub mod search;
mod single_path;
mod split;

pub use display::{render_mapping_grid, summarize};
pub use error::MapError;
pub use eval::EvalContext;
pub use init::initialize;
pub use mapping::Mapping;
pub use mcf::{McfKind, McfSolution, McfSolveStats, McfWarmState, PathScope};
pub use problem::{Commodity, MappingProblem};
pub use routing::{CommodityPath, LinkLoads, RoutingTables, SplitRoute};
pub use search::{MapOutcome, Mapper};
pub use single_path::{
    map_single_path, map_single_path_kernel, map_single_path_with, SinglePathOptions,
    SinglePathOutcome, SwapKernel,
};
pub use split::{map_with_splitting, SplitOptions, SplitOutcome};

/// Convenience alias for fallible NMAP operations.
pub type Result<T> = std::result::Result<T, MapError>;
