//! The search layer: every placement algorithm in the workspace behind
//! one [`Mapper`] trait, plus a name-keyed [`Registry`] so harnesses can
//! treat mappers as data instead of enum arms.
//!
//! Before this layer, NMAP single-path, NMAP-split, and the baseline
//! mappers each had their own call shape (`map_single_path(problem,
//! opts) -> SinglePathOutcome`, `pmap(problem) -> Mapping`, ...) glued
//! together by a hand-written `match` in the DSE engine. The trait
//! unifies them:
//!
//! * [`Mapper::map`] drives a shared [`EvalContext`] (cached quadrant
//!   DAGs, scratch buffers, the O(deg) [`EvalContext::swap_delta`]
//!   kernel) and returns a single [`MapOutcome`] — mapping, Equation-7
//!   cost, feasibility, and a work measure.
//! * [`Mapper::name`] is the mapper's canonical `.dse` spelling (the
//!   bare keyword for named configurations, `keyword[..]` otherwise);
//!   the DSE spec format parses every emitted name back to an equal
//!   configuration (round-trip property, tested).
//! * [`Registry`] maps names to mapper factories. Factories take a seed
//!   so stochastic mappers ([`SaMapper`]) derive their random stream
//!   from the scenario that runs them — never from worker identity —
//!   keeping parallel sweeps byte-identical. [`core_registry`] registers
//!   the mappers of this crate; `noc_baselines::standard_registry()`
//!   adds PMAP/GMAP/PBB on top.
//!
//! Two search strategies beyond the paper ride on the cheap swap-delta
//! kernel, following the strategy axis explored by Marcon et al.
//! (*Exploring NoC Mapping Strategies*): seeded simulated annealing
//! ([`SaMapper`]) and deterministic tabu search ([`TabuMapper`]).

mod sa;
mod tabu;

pub use sa::{SaMapper, SaOptions};
pub use tabu::{TabuMapper, TabuOptions};

use noc_units::{HopMbps, Score};

use crate::{
    initialize, map_single_path_with, map_with_splitting, EvalContext, Mapping, PathScope, Result,
    SinglePathOptions, SplitOptions,
};

/// Unified result of any [`Mapper`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MapOutcome {
    /// The best placement found.
    pub mapping: Mapping,
    /// Equation-7 communication cost of `mapping` (hops × bandwidth,
    /// independent of routing; comparable across mappers).
    pub comm_cost: HopMbps,
    /// Whether the mapper's own evaluation regime found the placement
    /// bandwidth-feasible (min-path routing for the swap searches and
    /// constructive mappers, split MCF routing for NMAP-split).
    pub feasible: bool,
    /// Mapper-specific work measure: candidate placements examined for
    /// the swap searches, LP solves for NMAP-split, node expansions for
    /// PBB, 0 for the pure constructive mappers.
    pub evaluations: usize,
}

/// A placement algorithm: consumes an evaluation context (problem +
/// caches) and produces a complete [`MapOutcome`].
pub trait Mapper {
    /// Canonical `.dse` spelling of this configuration (`nmap`,
    /// `sa[m1000t0.1c0.99]`, ...). Stable: used as the mapper column of
    /// sweep records and round-trips through the spec parser.
    fn name(&self) -> String;

    /// Runs the algorithm.
    ///
    /// # Errors
    ///
    /// [`crate::MapError::InvalidOptions`] when the mapper's options fail
    /// their `check()`; otherwise only the error conditions of the
    /// underlying evaluation (unroutable commodities, LP breakdown).
    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome>;

    /// The placement and work measure only, for engines that route and
    /// score the result themselves (the DSE engine's map stage feeds a
    /// separate route stage): same mapping and evaluations as
    /// [`Mapper::map`], but implementations whose search does not already
    /// compute feasibility (the constructive mappers) override this to
    /// skip the outcome's routing-based feasibility check instead of
    /// computing an answer the caller throws away.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mapper::map`].
    fn place(&self, ctx: &mut EvalContext<'_>) -> Result<(Mapping, usize)> {
        self.map(ctx).map(|out| (out.mapping, out.evaluations))
    }
}

/// A boxed, thread-safe [`Mapper`] — the currency of the [`Registry`].
pub type BoxedMapper = Box<dyn Mapper + Send + Sync>;

/// One registry entry: a canonical name plus a seed-taking factory.
struct RegistryEntry {
    name: String,
    build: Box<dyn Fn(u64) -> BoxedMapper + Send + Sync>,
}

/// Name-keyed mapper registry.
///
/// Entries are kept in registration order (the order tables and docs list
/// them in). Factories receive a seed so stochastic mappers stay a pure
/// function of `(name, seed)`; deterministic mappers ignore it.
#[derive(Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("names", &self.names().collect::<Vec<_>>()).finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `build` under `name`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — two algorithms under one spelling is
    /// always a bug.
    pub fn register<F>(&mut self, name: impl Into<String>, build: F)
    where
        F: Fn(u64) -> BoxedMapper + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "mapper `{name}` is already registered"
        );
        self.entries.push(RegistryEntry { name, build: Box::new(build) });
    }

    /// Builds the mapper registered under `name`, threading `seed` into
    /// its factory. `None` for unknown names.
    pub fn build(&self, name: &str, seed: u64) -> Option<BoxedMapper> {
        self.entries.iter().find(|e| e.name == name).map(|e| (e.build)(seed))
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> impl ExactSizeIterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Number of registered mappers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The registry of this crate's mappers: the NMAP family (`nmap-init`,
/// `nmap`, `nmap-paper`, `nmap-split-quadrant`, `nmap-split-all`) plus
/// the two kernel-powered search strategies (`sa`, `tabu`).
pub fn core_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register("nmap-init", |_| Box::new(InitMapper));
    registry.register("nmap", |_| Box::new(SinglePathMapper::new(SinglePathOptions::default())));
    registry.register("nmap-paper", |_| {
        Box::new(SinglePathMapper::new(SinglePathOptions::paper_exact()))
    });
    registry.register("nmap-split-quadrant", |_| {
        Box::new(SplitMapper::new(SplitOptions { scope: PathScope::Quadrant, passes: 1 }))
    });
    registry.register("nmap-split-all", |_| {
        Box::new(SplitMapper::new(SplitOptions { scope: PathScope::AllPaths, passes: 1 }))
    });
    registry.register("sa", |seed| Box::new(SaMapper::new(SaOptions::default(), seed)));
    registry.register("tabu", |_| Box::new(TabuMapper::new(TabuOptions::default())));
    registry
}

/// Scores a complete placement the way the constructive mappers report
/// it — Equation-7 cost plus min-path bandwidth feasibility — so
/// [`Mapper`] wrappers around placement-only algorithms (here
/// `initialize()`, in `noc-baselines` PMAP and GMAP) share one outcome
/// assembly.
///
/// # Errors
///
/// Propagates [`crate::MapError::Unroutable`] from the router.
pub fn constructive_outcome_of(
    ctx: &mut EvalContext<'_>,
    mapping: Mapping,
    evaluations: usize,
) -> Result<MapOutcome> {
    let comm_cost = ctx.comm_cost(&mapping);
    let topology = ctx.problem().topology();
    let feasible = ctx.route_min_loads(&mapping)?.within_capacity(topology);
    Ok(MapOutcome { mapping, comm_cost, feasible, evaluations })
}

/// NMAP's greedy constructive placement only (`initialize()`), no
/// improvement loop — the cheapest member of the family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InitMapper;

impl Mapper for InitMapper {
    fn name(&self) -> String {
        "nmap-init".to_string()
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        let mapping = initialize(ctx.problem());
        constructive_outcome_of(ctx, mapping, 0)
    }

    fn place(&self, ctx: &mut EvalContext<'_>) -> Result<(Mapping, usize)> {
        Ok((initialize(ctx.problem()), 0))
    }
}

/// NMAP single-minimum-path mapping (Section 5) behind the trait.
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePathMapper {
    options: SinglePathOptions,
}

impl SinglePathMapper {
    /// Wraps [`map_single_path_with`] with the given options.
    pub fn new(options: SinglePathOptions) -> Self {
        Self { options }
    }
}

impl Mapper for SinglePathMapper {
    fn name(&self) -> String {
        if self.options == SinglePathOptions::paper_exact() {
            "nmap-paper".to_string()
        } else if self.options == SinglePathOptions::default() {
            "nmap".to_string()
        } else {
            format!("nmap[p{}r{}]", self.options.passes, self.options.restarts)
        }
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        let out = map_single_path_with(ctx, &self.options)?;
        Ok(MapOutcome {
            mapping: out.mapping,
            comm_cost: out.comm_cost,
            feasible: out.feasible,
            evaluations: out.evaluations,
        })
    }
}

/// NMAP with split-traffic routing (Section 6) behind the trait:
/// MCF-driven placement, `evaluations` counts LP solves.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMapper {
    options: SplitOptions,
}

impl SplitMapper {
    /// Wraps [`map_with_splitting`] with the given options.
    pub fn new(options: SplitOptions) -> Self {
        Self { options }
    }
}

impl Mapper for SplitMapper {
    fn name(&self) -> String {
        let base = match self.options.scope {
            PathScope::Quadrant => "nmap-split-quadrant",
            PathScope::AllPaths => "nmap-split-all",
        };
        if self.options.passes == 1 {
            base.to_string()
        } else {
            format!("{base}[p{}]", self.options.passes)
        }
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        let out = map_with_splitting(ctx.problem(), &self.options)?;
        Ok(MapOutcome {
            mapping: out.mapping,
            comm_cost: out.comm_cost,
            feasible: out.feasible,
            evaluations: out.lp_solves,
        })
    }
}

/// Shared outcome assembly for the swap searches ([`SaMapper`],
/// [`TabuMapper`]): prefer the best *feasible* placement (its evaluate()
/// score is its exact cost); fall back to the best-cost placement seen
/// when nothing feasible was found.
fn search_outcome(
    ctx: &mut EvalContext<'_>,
    best_score: Score,
    best: Mapping,
    best_any: Mapping,
    evaluations: usize,
) -> MapOutcome {
    if let Some(comm_cost) = best_score.cost() {
        MapOutcome { mapping: best, comm_cost, feasible: true, evaluations }
    } else {
        let comm_cost = ctx.comm_cost(&best_any);
        MapOutcome { mapping: best_any, comm_cost, feasible: false, evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingProblem;
    use noc_graph::{RandomGraphConfig, Topology};

    fn problem(seed: u64) -> MappingProblem {
        let g = RandomGraphConfig { cores: 8, ..Default::default() }.generate(seed);
        MappingProblem::new(g, Topology::mesh(3, 3, 2_000.0)).unwrap()
    }

    #[test]
    fn registry_rejects_duplicates() {
        let mut r = Registry::new();
        r.register("x", |_| Box::new(InitMapper));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.register("x", |_| Box::new(InitMapper))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn core_registry_builds_every_entry_and_names_round_trip() {
        let registry = core_registry();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            [
                "nmap-init",
                "nmap",
                "nmap-paper",
                "nmap-split-quadrant",
                "nmap-split-all",
                "sa",
                "tabu"
            ]
        );
        let p = problem(4);
        for name in registry.names().collect::<Vec<_>>() {
            let mapper = registry.build(name, 7).expect("registered");
            assert_eq!(mapper.name(), name, "factory must build its own name");
            let out = mapper.map(&mut EvalContext::new(&p)).expect("small mesh maps");
            assert!(out.mapping.is_complete(p.cores()), "{name} left cores unplaced");
            assert_eq!(out.comm_cost, p.comm_cost(&out.mapping), "{name} cost mismatch");
        }
        assert!(registry.build("nosuch", 0).is_none());
    }

    #[test]
    fn trait_outcomes_match_the_legacy_entry_points() {
        let p = problem(9);
        // Single-path.
        let legacy = crate::map_single_path(&p, &SinglePathOptions::default()).unwrap();
        let out = SinglePathMapper::new(SinglePathOptions::default())
            .map(&mut EvalContext::new(&p))
            .unwrap();
        assert_eq!(out.mapping, legacy.mapping);
        assert_eq!(out.comm_cost, legacy.comm_cost);
        assert_eq!(out.feasible, legacy.feasible);
        assert_eq!(out.evaluations, legacy.evaluations);
        // Init.
        let out = InitMapper.map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.mapping, initialize(&p));
        assert_eq!(out.evaluations, 0);
        // Split.
        let opts = SplitOptions { scope: PathScope::Quadrant, passes: 1 };
        let legacy = map_with_splitting(&p, &opts).unwrap();
        let out = SplitMapper::new(opts).map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.mapping, legacy.mapping);
        assert_eq!(out.evaluations, legacy.lp_solves);
        assert_eq!(out.feasible, legacy.feasible);
    }

    #[test]
    fn names_cover_parameterized_forms() {
        assert_eq!(SinglePathMapper::new(SinglePathOptions::default()).name(), "nmap");
        assert_eq!(SinglePathMapper::new(SinglePathOptions::paper_exact()).name(), "nmap-paper");
        assert_eq!(
            SinglePathMapper::new(SinglePathOptions { passes: 4, restarts: 2 }).name(),
            "nmap[p4r2]"
        );
        assert_eq!(
            SplitMapper::new(SplitOptions { scope: PathScope::AllPaths, passes: 1 }).name(),
            "nmap-split-all"
        );
        assert_eq!(
            SplitMapper::new(SplitOptions { scope: PathScope::Quadrant, passes: 3 }).name(),
            "nmap-split-quadrant[p3]"
        );
    }
}
