//! Seeded simulated annealing over pairwise swaps.
//!
//! The move set is exactly the descent's ([`Mapping::swap_nodes`]:
//! core↔core swaps and core→free-slot moves); proposals are scored by the
//! O(deg) [`EvalContext::swap_delta`] kernel, so a move costs far less
//! than a full Equation-7 scan. Feasibility is handled the way the
//! paper's search handles it: whenever the walk reaches a cost that could
//! beat the feasible incumbent, the full lazy-feasibility
//! [`EvalContext::evaluate`] confirms (exact cost + bandwidth check), and
//! only confirmed-feasible placements become the incumbent.
//!
//! Determinism: the random stream is `ChaCha8` seeded from the
//! constructor's seed — in DSE sweeps that is the *scenario* seed, never
//! worker identity, so parallel sweep output stays byte-identical.

use noc_probe::Value;
use noc_units::Score;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::{search_outcome, MapOutcome, Mapper};
use crate::{initialize, EvalContext, MapError, Result};

/// Proposed-move interval between `sa.sample` trajectory events when a
/// live probe is attached (~20 samples over the default budget).
const SA_SAMPLE_EVERY: usize = 1_000;

/// Tuning knobs for [`SaMapper`].
#[derive(Debug, Clone, PartialEq)]
pub struct SaOptions {
    /// Number of proposed moves (the annealing budget).
    pub moves: usize,
    /// Initial temperature as a *fraction of the seed placement's cost*,
    /// so the schedule adapts to the problem's cost scale.
    // lint: allow(f64-api) — dimensionless fraction of the seed cost.
    pub initial_temp: f64,
    /// Geometric cooling factor applied after every proposed move, in
    /// `(0, 1]`.
    // lint: allow(f64-api) — dimensionless geometric factor.
    pub cooling: f64,
}

impl Default for SaOptions {
    /// `20_000` moves, `T₀ = 5%` of the seed cost, cooling `0.9995` —
    /// the temperature decays by ~4–5 orders of magnitude over the run.
    fn default() -> Self {
        Self { moves: 20_000, initial_temp: 0.05, cooling: 0.9995 }
    }
}

impl SaOptions {
    /// Checks the options, returning the first violation as a message
    /// (the single source of the constraints; the `.dse` parser and
    /// [`SaMapper::map`] both use it).
    ///
    /// # Errors
    ///
    /// A human-readable message when a knob is out of range.
    pub fn check(&self) -> std::result::Result<(), String> {
        if self.moves == 0 {
            return Err("sa moves must be at least 1".into());
        }
        if !(self.initial_temp.is_finite() && self.initial_temp > 0.0) {
            return Err(format!(
                "sa initial temperature must be positive, got {}",
                self.initial_temp
            ));
        }
        if !(self.cooling.is_finite() && self.cooling > 0.0 && self.cooling <= 1.0) {
            return Err(format!("sa cooling must be in (0, 1], got {}", self.cooling));
        }
        Ok(())
    }
}

/// Simulated-annealing mapper (registry name `sa`).
#[derive(Debug, Clone, PartialEq)]
pub struct SaMapper {
    options: SaOptions,
    seed: u64,
}

impl SaMapper {
    /// Creates the mapper. `seed` drives the ChaCha proposal/acceptance
    /// stream; in DSE sweeps pass the scenario seed.
    pub fn new(options: SaOptions, seed: u64) -> Self {
        Self { options, seed }
    }
}

/// Uniform `[0, 1)` draw from the top 53 bits of one `next_u64`.
fn unit(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Mapper for SaMapper {
    fn name(&self) -> String {
        if self.options == SaOptions::default() {
            "sa".to_string()
        } else {
            format!(
                "sa[m{}t{}c{}]",
                self.options.moves, self.options.initial_temp, self.options.cooling
            )
        }
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        self.options.check().map_err(MapError::InvalidOptions)?;
        let problem = ctx.problem();
        let n = problem.topology().node_count();
        let mut current = initialize(problem);
        let mut evaluations = 1usize;
        let mut best_score = ctx.evaluate(&current, Score::INFEASIBLE)?;
        let mut best = current.clone();
        // The walk tracks its cost in raw f64 (incremental `+= delta`
        // drifts by rounding, re-anchored below) — same arithmetic as the
        // pre-typed kernel; the typed seams are evaluate()/swap_delta().
        let mut current_cost = ctx.comm_cost(&current).to_f64();
        let mut best_any_cost = current_cost;
        let mut best_any = current.clone();
        if n < 2 {
            return Ok(search_outcome(ctx, best_score, best, best_any, evaluations));
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut temp = (self.options.initial_temp * current_cost).max(f64::MIN_POSITIVE);
        let mut accepted = 0usize;
        for proposed in 0..self.options.moves {
            if proposed % SA_SAMPLE_EVERY == 0 && ctx.probe().is_enabled() {
                ctx.probe().emit(
                    "sa.sample",
                    &[
                        ("move", Value::from(proposed)),
                        ("temp", Value::from(temp)),
                        ("current_cost", Value::from(current_cost)),
                        ("best_cost", Value::from(best_any_cost)),
                        ("accepted", Value::from(accepted)),
                    ],
                );
            }
            let a = (rng.next_u64() % n as u64) as usize;
            let mut b = (rng.next_u64() % (n as u64 - 1)) as usize;
            if b >= a {
                b += 1;
            }
            let (a, b) = (noc_graph::NodeId::new(a), noc_graph::NodeId::new(b));
            temp = (temp * self.options.cooling).max(f64::MIN_POSITIVE);
            if current.core_at(a).is_none() && current.core_at(b).is_none() {
                continue;
            }
            evaluations += 1;
            let delta = ctx.swap_delta(&current, a, b).to_f64();
            let accept = delta <= 0.0 || unit(&mut rng) < (-delta / temp).exp();
            if !accept {
                continue;
            }
            current.swap_nodes(a, b);
            current_cost += delta;
            accepted += 1;
            if accepted % 1024 == 0 {
                // The incrementally tracked cost drifts by one rounding
                // error per accepted move; periodically re-anchor it.
                current_cost = ctx.comm_cost(&current).to_f64();
            }
            if current_cost < best_any_cost {
                best_any_cost = current_cost;
                best_any = current.clone();
            }
            if current_cost < best_score.to_f64() {
                // Candidate incumbent: confirm with the exact cost and
                // the bandwidth-feasibility check.
                let score = ctx.evaluate(&current, best_score)?;
                if score < best_score {
                    best_score = score;
                    best = current.clone();
                }
            }
        }
        Ok(search_outcome(ctx, best_score, best, best_any, evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingProblem;
    use noc_graph::{CoreGraph, CoreId, RandomGraphConfig, Topology};

    fn problem(seed: u64) -> MappingProblem {
        let g = RandomGraphConfig { cores: 9, ..Default::default() }.generate(seed);
        MappingProblem::new(g, Topology::mesh(3, 3, 2_000.0)).unwrap()
    }

    #[test]
    fn same_seed_same_outcome_different_seed_may_differ() {
        let p = problem(3);
        let run = |seed| SaMapper::new(SaOptions::default(), seed).map(&mut EvalContext::new(&p));
        let a = run(1).unwrap();
        let b = run(1).unwrap();
        assert_eq!(a, b, "SA must be a pure function of (problem, seed)");
        assert!(a.feasible);
        assert_eq!(a.comm_cost, p.comm_cost(&a.mapping));
    }

    #[test]
    fn anneal_does_not_lose_to_the_constructive_seed() {
        for seed in 0..3 {
            let p = problem(seed);
            let init_cost = p.comm_cost(&crate::initialize(&p));
            let out =
                SaMapper::new(SaOptions::default(), seed).map(&mut EvalContext::new(&p)).unwrap();
            assert!(
                out.comm_cost.to_f64() <= init_cost.to_f64() + 1e-9,
                "seed {seed}: SA {} worse than init {init_cost}",
                out.comm_cost
            );
        }
    }

    #[test]
    fn infeasible_problems_are_reported_not_hidden() {
        // One 500 MB/s flow on 100 MB/s links: nothing fits.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 500.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 100.0)).unwrap();
        let out = SaMapper::new(SaOptions::default(), 7).map(&mut EvalContext::new(&p)).unwrap();
        assert!(!out.feasible);
        assert!(out.mapping.node_of(CoreId::new(0)).is_some());
        assert_eq!(out.comm_cost, p.comm_cost(&out.mapping));
    }

    #[test]
    fn invalid_options_error_instead_of_running() {
        let p = problem(0);
        for bad in [
            SaOptions { moves: 0, ..Default::default() },
            SaOptions { initial_temp: 0.0, ..Default::default() },
            SaOptions { cooling: 1.5, ..Default::default() },
            SaOptions { cooling: 0.0, ..Default::default() },
        ] {
            assert!(bad.check().is_err());
            let got = SaMapper::new(bad, 0).map(&mut EvalContext::new(&p));
            assert!(matches!(got, Err(MapError::InvalidOptions(_))), "{got:?}");
        }
    }

    #[test]
    fn single_node_problem_returns_the_seed_placement() {
        let mut g = CoreGraph::new();
        g.add_core("only");
        let p = MappingProblem::new(g, Topology::mesh(1, 1, 100.0)).unwrap();
        let out = SaMapper::new(SaOptions::default(), 0).map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.comm_cost, noc_units::HopMbps::ZERO);
        assert!(out.feasible);
    }

    #[test]
    fn names_round_trip_defaults_and_parameters() {
        assert_eq!(SaMapper::new(SaOptions::default(), 5).name(), "sa");
        let custom = SaOptions { moves: 1_000, initial_temp: 0.1, cooling: 0.99 };
        assert_eq!(SaMapper::new(custom, 5).name(), "sa[m1000t0.1c0.99]");
    }
}
