//! Deterministic tabu search over pairwise swaps.
//!
//! Each iteration scans every node pair with the O(deg)
//! [`EvalContext::swap_delta`] kernel and applies the best admissible
//! move — even an uphill one, which is how the search escapes the local
//! minima the plain descent stops at. A move just taken is *tabu*
//! (forbidden) for the next [`TabuOptions::tenure`] iterations unless it
//! aspires: it would improve on the best cost seen so far. Ties break
//! toward the first pair in scan order, so the whole search is a pure
//! function of the problem — no seed needed.
//!
//! Feasibility follows the paper's regime: candidate incumbents are
//! confirmed with the full lazy-feasibility [`EvalContext::evaluate`]
//! (exact cost + bandwidth check); only confirmed-feasible placements
//! can win.

use noc_graph::NodeId;
use noc_probe::Value;
use noc_units::Score;

use super::{search_outcome, MapOutcome, Mapper};
use crate::{initialize, EvalContext, MapError, Result};

/// Iteration interval between `tabu.sample` trajectory events when a
/// live probe is attached (~16 samples over the default budget).
const TABU_SAMPLE_EVERY: usize = 4;

/// Tuning knobs for [`TabuMapper`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabuOptions {
    /// Number of tabu iterations (one applied move each).
    pub iterations: usize,
    /// How many iterations a just-taken move stays forbidden.
    pub tenure: usize,
}

impl Default for TabuOptions {
    /// 64 iterations, tenure 8 — enough to cross the basins the plain
    /// descent is trapped in on the bundled applications.
    fn default() -> Self {
        Self { iterations: 64, tenure: 8 }
    }
}

impl TabuOptions {
    /// Checks the options, returning the first violation as a message
    /// (single source of the constraints; used by the `.dse` parser and
    /// [`TabuMapper::map`]).
    ///
    /// # Errors
    ///
    /// A human-readable message when a knob is out of range.
    pub fn check(&self) -> std::result::Result<(), String> {
        if self.iterations == 0 {
            return Err("tabu iterations must be at least 1".into());
        }
        if self.tenure == 0 {
            return Err(
                "tabu tenure must be at least 1 (0 is plain best-move hill climbing)".into()
            );
        }
        Ok(())
    }
}

/// Tabu-tenure pairwise-swap mapper (registry name `tabu`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabuMapper {
    options: TabuOptions,
}

impl TabuMapper {
    /// Creates the mapper.
    pub fn new(options: TabuOptions) -> Self {
        Self { options }
    }
}

impl Mapper for TabuMapper {
    fn name(&self) -> String {
        if self.options == TabuOptions::default() {
            "tabu".to_string()
        } else {
            format!("tabu[i{}t{}]", self.options.iterations, self.options.tenure)
        }
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        self.options.check().map_err(MapError::InvalidOptions)?;
        let problem = ctx.problem();
        let n = problem.topology().node_count();
        let mut current = initialize(problem);
        let mut evaluations = 1usize;
        let mut best_score = ctx.evaluate(&current, Score::INFEASIBLE)?;
        let mut best = current.clone();
        // Raw f64 cost tracking, exactly refreshed each iteration — the
        // typed seams are evaluate()/swap_delta().
        let mut current_cost = ctx.comm_cost(&current).to_f64();
        let mut best_any_cost = current_cost;
        let mut best_any = current.clone();
        // `tabu_until[i * n + j]`: the move (i, j) is forbidden while
        // `iter <= tabu_until`.
        let mut tabu_until = vec![0usize; n * n];

        for iter in 1..=self.options.iterations {
            if (iter - 1) % TABU_SAMPLE_EVERY == 0 && ctx.probe().is_enabled() {
                ctx.probe().emit(
                    "tabu.sample",
                    &[
                        ("iter", Value::from(iter)),
                        ("current_cost", Value::from(current_cost)),
                        ("best_cost", Value::from(best_any_cost)),
                    ],
                );
            }
            let mut chosen: Option<(NodeId, NodeId, f64)> = None;
            for i in 0..n {
                for j in (i + 1)..n {
                    let a = NodeId::new(i);
                    let b = NodeId::new(j);
                    if current.core_at(a).is_none() && current.core_at(b).is_none() {
                        continue;
                    }
                    evaluations += 1;
                    let delta = ctx.swap_delta(&current, a, b).to_f64();
                    let tabu = tabu_until[i * n + j] >= iter;
                    let aspires = current_cost + delta < best_any_cost;
                    if tabu && !aspires {
                        continue;
                    }
                    if chosen.is_none_or(|(_, _, d)| delta < d) {
                        chosen = Some((a, b, delta));
                    }
                }
            }
            // Every admissible pair was empty↔empty or tabu: stuck.
            let Some((a, b, _)) = chosen else { break };
            current.swap_nodes(a, b);
            // Exact refresh (one O(E) scan per iteration) keeps the
            // aspiration comparisons drift-free.
            current_cost = ctx.comm_cost(&current).to_f64();
            tabu_until[a.index() * n + b.index()] = iter + self.options.tenure;
            if current_cost < best_any_cost {
                best_any_cost = current_cost;
                best_any = current.clone();
            }
            if current_cost < best_score.to_f64() {
                let score = ctx.evaluate(&current, best_score)?;
                if score < best_score {
                    best_score = score;
                    best = current.clone();
                }
            }
        }
        Ok(search_outcome(ctx, best_score, best, best_any, evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingProblem;
    use noc_graph::{CoreGraph, CoreId, RandomGraphConfig, Topology};

    fn problem(seed: u64) -> MappingProblem {
        let g = RandomGraphConfig { cores: 9, ..Default::default() }.generate(seed);
        MappingProblem::new(g, Topology::mesh(3, 3, 2_000.0)).unwrap()
    }

    #[test]
    fn tabu_is_deterministic_and_scores_consistently() {
        let p = problem(2);
        let run = || TabuMapper::new(TabuOptions::default()).map(&mut EvalContext::new(&p));
        let a = run().unwrap();
        assert_eq!(a, run().unwrap(), "tabu has no random state");
        assert!(a.feasible);
        assert_eq!(a.comm_cost, p.comm_cost(&a.mapping));
    }

    #[test]
    fn tabu_does_not_lose_to_the_constructive_seed() {
        for seed in 0..3 {
            let p = problem(seed);
            let init_cost = p.comm_cost(&crate::initialize(&p));
            let out =
                TabuMapper::new(TabuOptions::default()).map(&mut EvalContext::new(&p)).unwrap();
            assert!(out.comm_cost.to_f64() <= init_cost.to_f64() + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn uphill_moves_are_taken_when_tenure_blocks_the_reverse() {
        // On a 2-node fabric with one core, the only move oscillates;
        // tenure forbids the immediate reverse, so the search must stop
        // (all moves tabu, nothing aspires) instead of looping forever.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 1, 1_000.0)).unwrap();
        let out = TabuMapper::new(TabuOptions { iterations: 50, tenure: 10 })
            .map(&mut EvalContext::new(&p))
            .unwrap();
        assert!(out.feasible);
        assert_eq!(out.comm_cost, noc_units::hop_mbps(10.0), "both placements cost one hop");
    }

    #[test]
    fn infeasible_capacity_reported_not_hidden() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 500.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 100.0)).unwrap();
        let out = TabuMapper::new(TabuOptions::default()).map(&mut EvalContext::new(&p)).unwrap();
        assert!(!out.feasible);
        assert!(out.mapping.node_of(CoreId::new(0)).is_some());
    }

    #[test]
    fn invalid_options_error_instead_of_running() {
        let p = problem(0);
        for bad in
            [TabuOptions { iterations: 0, tenure: 1 }, TabuOptions { iterations: 5, tenure: 0 }]
        {
            assert!(bad.check().is_err());
            let got = TabuMapper::new(bad).map(&mut EvalContext::new(&p));
            assert!(matches!(got, Err(MapError::InvalidOptions(_))), "{got:?}");
        }
    }

    #[test]
    fn names_round_trip_defaults_and_parameters() {
        assert_eq!(TabuMapper::new(TabuOptions::default()).name(), "tabu");
        assert_eq!(
            TabuMapper::new(TabuOptions { iterations: 200, tenure: 5 }).name(),
            "tabu[i200t5]"
        );
    }
}
