//! Human-readable rendering of mappings and link loads — the textual
//! equivalent of the paper's Figure 2(c) mapping diagram.

use std::fmt::Write as _;

use noc_graph::{NodeId, TopologyKind};

use crate::routing::LinkLoads;
use crate::{Mapping, MappingProblem};

/// Renders the mapping as a grid of core names (grid topologies; rank-3
/// and higher grids print one `layer ...` block per 2-D slice) or an
/// assignment list (custom topologies).
///
/// # Example
///
/// ```
/// use noc_graph::{CoreGraph, Topology};
/// use nmap::{MappingProblem, Mapping, render_mapping_grid};
///
/// let mut g = CoreGraph::new();
/// let a = g.add_core("alpha");
/// let b = g.add_core("beta");
/// g.add_comm(a, b, 10.0)?;
/// let problem = MappingProblem::new(g, Topology::mesh(2, 1, 100.0))?;
/// let mut m = Mapping::new(2);
/// m.place(a, noc_graph::NodeId::new(0));
/// m.place(b, noc_graph::NodeId::new(1));
/// let grid = render_mapping_grid(&problem, &m);
/// assert!(grid.contains("alpha"));
/// assert!(grid.contains("beta"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_mapping_grid(problem: &MappingProblem, mapping: &Mapping) -> String {
    let topology = problem.topology();
    let cores = problem.cores();
    match topology.kind() {
        TopologyKind::Grid(grid) => {
            // Column width: longest name (or the `.` placeholder).
            let cell = cores.cores().map(|c| cores.name(c).len()).max().unwrap_or(1).max(1);
            let width = grid.axis(0).extent;
            let height = if grid.rank() > 1 { grid.axis(1).extent } else { 1 };
            let layer_size = width * height;
            let layers = topology.node_count() / layer_size;
            let mut out = String::new();
            for layer in 0..layers {
                if grid.rank() > 2 {
                    if layer > 0 {
                        out.push('\n');
                    }
                    // Higher-axis coordinates of this slice, e.g. `layer 1`
                    // for z=1 of a 3-D grid, `layer 1,0` at rank 4.
                    let coords = topology.grid_coords(NodeId::new(layer * layer_size));
                    let label: Vec<String> = coords[2..].iter().map(usize::to_string).collect();
                    let _ = writeln!(out, "layer {}", label.join(","));
                }
                for y in 0..height {
                    for x in 0..width {
                        let node = NodeId::new(layer * layer_size + y * width + x);
                        let label = mapping.core_at(node).map(|c| cores.name(c)).unwrap_or(".");
                        if x > 0 {
                            out.push_str("  ");
                        }
                        let _ = write!(out, "{label:<cell$}");
                    }
                    // Trailing spaces make diffs noisy; trim per row.
                    while out.ends_with(' ') {
                        out.pop();
                    }
                    out.push('\n');
                }
            }
            out
        }
        TopologyKind::Custom => {
            let mut out = String::new();
            for (core, node) in mapping.assignments() {
                let _ = writeln!(out, "{} -> {node}", cores.name(core));
            }
            out
        }
    }
}

/// One-paragraph summary of a mapping's quality: cost, worst link and
/// utilization, ready for logs and CLI output.
pub fn summarize(problem: &MappingProblem, mapping: &Mapping, loads: &LinkLoads) -> String {
    let cost = problem.comm_cost(mapping);
    let lower_bound = problem.cores().total_bandwidth();
    let max_load = loads.max();
    let worst = problem
        .topology()
        .links()
        .max_by(|a, b| loads.get(a.0).partial_cmp(&loads.get(b.0)).expect("loads are finite"));
    let mut out = format!(
        "comm cost {cost:.0} hops*MB/s ({:.2}x the 1-hop lower bound)\n",
        cost.to_f64() / lower_bound.to_f64()
    );
    if let Some((id, link)) = worst {
        let _ = writeln!(
            out,
            "hottest link {id} ({} -> {}): {max_load:.0} MB/s of {:.0} capacity",
            link.src, link.dst, link.capacity
        );
    }
    let _ = writeln!(
        out,
        "feasible: {}",
        if loads.within_capacity(problem.topology()) { "yes" } else { "NO" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing;
    use noc_graph::{CoreGraph, NodeId, Topology};

    fn sample() -> (MappingProblem, Mapping) {
        let mut g = CoreGraph::new();
        let a = g.add_core("cpu");
        let b = g.add_core("mem");
        g.add_comm(a, b, 100.0).unwrap();
        let problem = MappingProblem::new(g, Topology::mesh(2, 2, 500.0)).unwrap();
        let mut m = Mapping::new(4);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(3));
        (problem, m)
    }

    #[test]
    fn grid_shows_cores_and_gaps() {
        let (p, m) = sample();
        let grid = render_mapping_grid(&p, &m);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("cpu"));
        assert!(lines[0].contains('.'), "empty node must render as a dot");
        assert!(lines[1].ends_with("mem"));
    }

    #[test]
    fn summary_reports_cost_and_hotspot() {
        let (p, m) = sample();
        let (_, loads) = routing::route_min_paths(&p, &m).unwrap();
        let text = summarize(&p, &m, &loads);
        assert!(text.contains("comm cost 200"), "got: {text}");
        assert!(text.contains("100 MB/s of 500 capacity"));
        assert!(text.contains("feasible: yes"));
    }

    #[test]
    fn infeasible_summary_shouts() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 900.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 1, 100.0)).unwrap();
        let mut m = Mapping::new(2);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(1));
        let (_, loads) = routing::route_min_paths(&p, &m).unwrap();
        assert!(summarize(&p, &m, &loads).contains("feasible: NO"));
    }

    #[test]
    fn grid_3d_renders_layer_blocks() {
        let mut g = CoreGraph::new();
        let a = g.add_core("cpu");
        let b = g.add_core("mem");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::mesh_nd(&[2, 2, 2], 100.0).unwrap();
        let front = t.node_at_coords(&[0, 0, 0]).unwrap();
        let back = t.node_at_coords(&[1, 1, 1]).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(8);
        m.place(a, front);
        m.place(b, back);
        let grid = render_mapping_grid(&p, &m);
        assert_eq!(grid, "layer 0\ncpu  .\n.    .\n\nlayer 1\n.    .\n.    mem\n");
    }

    #[test]
    fn custom_topology_renders_as_list() {
        let mut g = CoreGraph::new();
        let a = g.add_core("x");
        let t = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), 1.0)]).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(2);
        m.place(a, NodeId::new(1));
        assert_eq!(render_mapping_grid(&p, &m), "x -> u1\n");
    }
}
