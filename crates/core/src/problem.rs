//! The mapping problem instance and its commodity view.

use noc_graph::{CoreGraph, EdgeId, NodeId, Topology};
use noc_units::{HopMbps, Hops, Mbps};

use crate::{MapError, Mapping, Result};

/// One commodity `d_k` of Equation 2: the traffic of a single core-graph
/// edge, pinned to topology endpoints by a concrete [`Mapping`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// The core-graph edge this commodity carries.
    pub edge: EdgeId,
    /// Commodity value `vl(d_k)` in MB/s.
    pub value: Mbps,
    /// `source(d_k) = map(v_i)`.
    pub source: NodeId,
    /// `dest(d_k) = map(v_j)`.
    pub dest: NodeId,
}

/// A complete instance of the mapping problem: the application core graph
/// `G(V, E)` plus the NoC topology graph `P(U, F)`.
///
/// Construction validates the structural requirements of Equation 1
/// (`|V| ≤ |U|`, non-empty application).
#[derive(Debug, Clone)]
pub struct MappingProblem {
    cores: CoreGraph,
    topology: Topology,
}

impl MappingProblem {
    /// Creates a problem instance.
    ///
    /// # Errors
    ///
    /// * [`MapError::EmptyProblem`] if the core graph has no vertices.
    /// * [`MapError::TooManyCores`] if `|V| > |U|`.
    pub fn new(cores: CoreGraph, topology: Topology) -> Result<Self> {
        if cores.core_count() == 0 {
            return Err(MapError::EmptyProblem);
        }
        if cores.core_count() > topology.node_count() {
            return Err(MapError::TooManyCores {
                cores: cores.core_count(),
                nodes: topology.node_count(),
            });
        }
        Ok(Self { cores, topology })
    }

    /// The application core graph.
    pub fn cores(&self) -> &CoreGraph {
        &self.cores
    }

    /// The NoC topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the problem, returning its parts.
    pub fn into_parts(self) -> (CoreGraph, Topology) {
        (self.cores, self.topology)
    }

    /// The commodity set `D` induced by `mapping` (Equation 2), in
    /// core-graph edge order.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not place every core (see
    /// [`Mapping::is_complete`]).
    pub fn commodities(&self, mapping: &Mapping) -> Vec<Commodity> {
        let mut out = Vec::with_capacity(self.cores.edge_count());
        self.commodities_into(mapping, &mut out);
        out
    }

    /// Writes the commodity set of `mapping` into `out` (cleared first) —
    /// the allocation-reusing form of [`MappingProblem::commodities`],
    /// producing the same commodities in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not place every core.
    pub fn commodities_into(&self, mapping: &Mapping, out: &mut Vec<Commodity>) {
        assert!(
            mapping.is_complete(&self.cores),
            "mapping must place every core before commodities can be formed"
        );
        out.clear();
        out.extend(self.cores.edges().map(|(edge, e)| Commodity {
            edge,
            value: e.bandwidth,
            source: mapping.node_of(e.src).expect("complete mapping"),
            dest: mapping.node_of(e.dst).expect("complete mapping"),
        }));
    }

    /// Commodity indices ordered by decreasing value, the processing order
    /// of the paper's `shortestpath()` routine.
    pub fn commodity_order(&self) -> Vec<EdgeId> {
        self.cores.edges_by_decreasing_bandwidth()
    }

    /// Communication cost of `mapping` per Equation 7:
    /// `Σ_k vl(d_k) · dist(source(d_k), dest(d_k))` where `dist` is the
    /// minimum hop count. This depends only on the placement, not on the
    /// routing. Allocation-free (summed straight off the edge list in
    /// edge order) — it is the inner loop of every swap descent.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` is incomplete.
    pub fn comm_cost(&self, mapping: &Mapping) -> HopMbps {
        assert!(
            mapping.is_complete(&self.cores),
            "mapping must place every core before commodities can be formed"
        );
        self.cores
            .edges()
            .map(|(_, e)| {
                let src = mapping.node_of(e.src).expect("complete mapping");
                let dst = mapping.node_of(e.dst).expect("complete mapping");
                e.bandwidth * Hops::new(self.topology.hop_distance(src, dst))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::Topology;

    fn two_core_app() -> CoreGraph {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 100.0).unwrap();
        g
    }

    #[test]
    fn construction_validates_sizes() {
        let g = two_core_app();
        assert!(MappingProblem::new(g.clone(), Topology::mesh(2, 1, 1.0)).is_ok());
        let err = MappingProblem::new(g, Topology::mesh(1, 1, 1.0)).unwrap_err();
        assert_eq!(err, MapError::TooManyCores { cores: 2, nodes: 1 });
        let err = MappingProblem::new(CoreGraph::new(), Topology::mesh(2, 2, 1.0)).unwrap_err();
        assert_eq!(err, MapError::EmptyProblem);
    }

    #[test]
    fn commodities_follow_mapping() {
        let g = two_core_app();
        let t = Topology::mesh(2, 2, 1.0);
        let problem = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(problem.topology().node_count());
        m.place(noc_graph::CoreId::new(0), NodeId::new(0));
        m.place(noc_graph::CoreId::new(1), NodeId::new(3));
        let cs = problem.commodities(&m);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].source, NodeId::new(0));
        assert_eq!(cs[0].dest, NodeId::new(3));
        assert_eq!(cs[0].value.to_f64(), 100.0);
    }

    #[test]
    fn comm_cost_is_bandwidth_times_hops() {
        let g = two_core_app();
        let problem = MappingProblem::new(g, Topology::mesh(2, 2, 1.0)).unwrap();
        let mut m = Mapping::new(4);
        m.place(noc_graph::CoreId::new(0), NodeId::new(0));
        m.place(noc_graph::CoreId::new(1), NodeId::new(3));
        assert_eq!(problem.comm_cost(&m).to_f64(), 200.0); // 100 MB/s * 2 hops
        let mut m2 = Mapping::new(4);
        m2.place(noc_graph::CoreId::new(0), NodeId::new(0));
        m2.place(noc_graph::CoreId::new(1), NodeId::new(1));
        assert_eq!(problem.comm_cost(&m2).to_f64(), 100.0);
    }

    #[test]
    #[should_panic(expected = "mapping must place every core")]
    fn incomplete_mapping_panics() {
        let g = two_core_app();
        let problem = MappingProblem::new(g, Topology::mesh(2, 2, 1.0)).unwrap();
        let m = Mapping::new(4);
        let _ = problem.commodities(&m);
    }

    #[test]
    fn commodity_order_is_decreasing() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_comm(a, b, 10.0).unwrap();
        g.add_comm(b, c, 500.0).unwrap();
        let problem = MappingProblem::new(g, Topology::mesh(2, 2, 1.0)).unwrap();
        let order = problem.commodity_order();
        assert_eq!(order[0].index(), 1);
        assert_eq!(order[1].index(), 0);
    }
}
