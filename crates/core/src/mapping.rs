//! The one-to-one mapping function `map : V → U` of Equation 1.

use noc_graph::{CoreGraph, CoreId, NodeId};

/// A (possibly partial) placement of cores onto topology nodes.
///
/// Maintains both directions of the assignment so `map(v)` and `map⁻¹(u)`
/// are O(1), and guarantees injectivity: placing a core on an occupied node
/// panics rather than silently evicting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    core_to_node: Vec<Option<NodeId>>,
    node_to_core: Vec<Option<CoreId>>,
}

impl Mapping {
    /// Creates an empty mapping over a topology with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        Self { core_to_node: Vec::new(), node_to_core: vec![None; node_count] }
    }

    /// Number of nodes of the target topology.
    pub fn node_count(&self) -> usize {
        self.node_to_core.len()
    }

    /// Number of cores currently placed.
    pub fn placed_count(&self) -> usize {
        self.core_to_node.iter().filter(|n| n.is_some()).count()
    }

    /// Places `core` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, already occupied, or if `core` is
    /// already placed somewhere else (use [`Mapping::swap_nodes`] to move
    /// cores around).
    pub fn place(&mut self, core: CoreId, node: NodeId) {
        assert!(node.index() < self.node_to_core.len(), "node {node} out of range");
        assert!(self.node_to_core[node.index()].is_none(), "node {node} is already occupied");
        if core.index() >= self.core_to_node.len() {
            self.core_to_node.resize(core.index() + 1, None);
        }
        assert!(self.core_to_node[core.index()].is_none(), "core {core} is already placed");
        self.core_to_node[core.index()] = Some(node);
        self.node_to_core[node.index()] = Some(core);
    }

    /// The node hosting `core`, if placed.
    pub fn node_of(&self, core: CoreId) -> Option<NodeId> {
        self.core_to_node.get(core.index()).copied().flatten()
    }

    /// The core occupying `node` (`map⁻¹(u)`), if any.
    pub fn core_at(&self, node: NodeId) -> Option<CoreId> {
        self.node_to_core.get(node.index()).copied().flatten()
    }

    /// True if every core of `graph` is placed.
    pub fn is_complete(&self, graph: &CoreGraph) -> bool {
        graph.cores().all(|c| self.node_of(c).is_some())
    }

    /// Exchanges the contents of two node positions. Either or both may be
    /// empty, so this covers core↔core swaps and core→free-slot moves —
    /// the move set of the paper's pairwise improvement loop.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn swap_nodes(&mut self, a: NodeId, b: NodeId) {
        assert!(a.index() < self.node_to_core.len(), "node {a} out of range");
        assert!(b.index() < self.node_to_core.len(), "node {b} out of range");
        if a == b {
            return;
        }
        let ca = self.node_to_core[a.index()];
        let cb = self.node_to_core[b.index()];
        self.node_to_core[a.index()] = cb;
        self.node_to_core[b.index()] = ca;
        if let Some(c) = ca {
            self.core_to_node[c.index()] = Some(b);
        }
        if let Some(c) = cb {
            self.core_to_node[c.index()] = Some(a);
        }
    }

    /// Iterates over `(core, node)` assignments in core order.
    pub fn assignments(&self) -> impl Iterator<Item = (CoreId, NodeId)> + '_ {
        self.core_to_node
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|node| (CoreId::new(i), node)))
    }

    /// Collects the assignment as a vector of `(core, node)` pairs — the
    /// shape expected by [`noc_graph::mapping_dot`].
    pub fn to_pairs(&self) -> Vec<(CoreId, NodeId)> {
        self.assignments().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_lookup_both_directions() {
        let mut m = Mapping::new(4);
        m.place(CoreId::new(2), NodeId::new(1));
        assert_eq!(m.node_of(CoreId::new(2)), Some(NodeId::new(1)));
        assert_eq!(m.core_at(NodeId::new(1)), Some(CoreId::new(2)));
        assert_eq!(m.core_at(NodeId::new(0)), None);
        assert_eq!(m.node_of(CoreId::new(0)), None);
        assert_eq!(m.placed_count(), 1);
    }

    #[test]
    fn swap_two_occupied_nodes() {
        let mut m = Mapping::new(4);
        m.place(CoreId::new(0), NodeId::new(0));
        m.place(CoreId::new(1), NodeId::new(3));
        m.swap_nodes(NodeId::new(0), NodeId::new(3));
        assert_eq!(m.node_of(CoreId::new(0)), Some(NodeId::new(3)));
        assert_eq!(m.node_of(CoreId::new(1)), Some(NodeId::new(0)));
    }

    #[test]
    fn swap_with_empty_node_moves_core() {
        let mut m = Mapping::new(4);
        m.place(CoreId::new(0), NodeId::new(0));
        m.swap_nodes(NodeId::new(0), NodeId::new(2));
        assert_eq!(m.node_of(CoreId::new(0)), Some(NodeId::new(2)));
        assert_eq!(m.core_at(NodeId::new(0)), None);
        // Swapping two empty nodes is a no-op.
        m.swap_nodes(NodeId::new(0), NodeId::new(1));
        assert_eq!(m.placed_count(), 1);
    }

    #[test]
    fn swap_same_node_is_noop() {
        let mut m = Mapping::new(2);
        m.place(CoreId::new(0), NodeId::new(1));
        m.swap_nodes(NodeId::new(1), NodeId::new(1));
        assert_eq!(m.node_of(CoreId::new(0)), Some(NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_placement_on_node_panics() {
        let mut m = Mapping::new(2);
        m.place(CoreId::new(0), NodeId::new(0));
        m.place(CoreId::new(1), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_placement_of_core_panics() {
        let mut m = Mapping::new(2);
        m.place(CoreId::new(0), NodeId::new(0));
        m.place(CoreId::new(0), NodeId::new(1));
    }

    #[test]
    fn completeness_tracks_core_graph() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let mut m = Mapping::new(4);
        assert!(!m.is_complete(&g));
        m.place(a, NodeId::new(0));
        assert!(!m.is_complete(&g));
        m.place(b, NodeId::new(1));
        assert!(m.is_complete(&g));
    }

    #[test]
    fn assignments_iterate_in_core_order() {
        let mut m = Mapping::new(4);
        m.place(CoreId::new(1), NodeId::new(3));
        m.place(CoreId::new(0), NodeId::new(2));
        let pairs = m.to_pairs();
        assert_eq!(pairs, vec![(CoreId::new(0), NodeId::new(2)), (CoreId::new(1), NodeId::new(3))]);
    }

    #[test]
    fn swap_preserves_injectivity() {
        let mut m = Mapping::new(6);
        for i in 0..4 {
            m.place(CoreId::new(i), NodeId::new(i));
        }
        m.swap_nodes(NodeId::new(0), NodeId::new(5));
        m.swap_nodes(NodeId::new(1), NodeId::new(2));
        // All four cores still placed on distinct nodes.
        let mut seen = std::collections::HashSet::new();
        for (_, node) in m.assignments() {
            assert!(seen.insert(node), "duplicate node {node}");
        }
        assert_eq!(m.placed_count(), 4);
    }
}
