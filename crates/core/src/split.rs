//! `mappingwithsplitting()` — Section 6 of the paper.
//!
//! The same initialize-then-pairwise-swap skeleton as the single-path
//! algorithm, but candidate placements are scored by multi-commodity-flow
//! programs instead of a deterministic router:
//!
//! * While no bandwidth-feasible placement is known, swaps are scored by
//!   **MCF1** slack (Equation 8) and the search descends toward
//!   feasibility.
//! * Once a feasible placement is found, swaps are scored by **MCF2**
//!   total flow (Equation 9) and the search minimizes communication cost.
//!
//! One deviation from the printed pseudocode, recorded in DESIGN.md §6:
//! when the search first reaches feasibility we immediately score that
//! mapping with MCF2 and seed `Bestmapping` from it (the paper's listing
//! leaves `bestcommcost` at `maxvalue` until the *next* improving swap,
//! which would discard the discovered feasible mapping if no later swap
//! also evaluates below it).

use noc_graph::NodeId;
use noc_units::HopMbps;

use crate::mcf::{solve_mcf, McfKind, McfSolution, PathScope};
use crate::routing::{LinkLoads, RoutingTables};
use crate::{initialize, Mapping, MappingProblem, Result};

/// Tuning knobs for [`map_with_splitting`].
#[derive(Debug, Clone, PartialEq)]
pub struct SplitOptions {
    /// Which links each commodity may use: [`PathScope::AllPaths`] is the
    /// paper's NMAPTA, [`PathScope::Quadrant`] the low-jitter NMAPTM.
    pub scope: PathScope,
    /// Number of full pairwise-swap sweeps (the paper performs one).
    pub passes: usize,
}

impl Default for SplitOptions {
    fn default() -> Self {
        Self { scope: PathScope::AllPaths, passes: 1 }
    }
}

impl SplitOptions {
    /// Checks the options, returning the first violation as a message —
    /// the single source of the option constraints, shared by
    /// [`map_with_splitting`] and the `.dse` spec parser.
    ///
    /// # Errors
    ///
    /// A human-readable message when `passes` is zero.
    pub fn check(&self) -> std::result::Result<(), String> {
        if self.passes == 0 {
            return Err("passes must be at least 1 (the paper performs one sweep)".into());
        }
        Ok(())
    }
}

/// Result of [`map_with_splitting`].
#[derive(Debug, Clone, PartialEq)]
pub struct SplitOutcome {
    /// The best placement found.
    pub mapping: Mapping,
    /// Equation-7 communication cost of `mapping` (hops × bandwidth,
    /// independent of routing; for cross-algorithm comparison).
    pub comm_cost: HopMbps,
    /// MCF2 objective of the final flow (total flow over all links), when
    /// feasible.
    // lint: allow(f64-api) — `f64::INFINITY` is the documented
    // not-feasible sentinel, which no non-negative quantity type admits.
    pub total_flow: f64,
    /// Final MCF1 slack: 0 when `feasible`, otherwise the smallest total
    /// capacity violation the search could reach.
    // lint: allow(f64-api) — LP objective; simplex round-off can dip a
    // mathematically-zero slack below 0, outside `Mbps`'s invariant.
    pub slack: f64,
    /// Whether the bandwidth constraints are satisfiable by split routing
    /// under this placement.
    pub feasible: bool,
    /// Split routing tables of the final flow.
    pub tables: RoutingTables,
    /// Aggregate link loads of the final flow.
    pub link_loads: LinkLoads,
    /// Number of LP solves performed (diagnostics).
    pub lp_solves: usize,
}

/// Runs NMAP with split-traffic routing (the paper's
/// `mappingwithsplitting()` routine).
///
/// # Errors
///
/// [`crate::MapError::InvalidOptions`] when `options` fail
/// [`SplitOptions::check`]; otherwise propagates LP failures as
/// [`crate::MapError::Lp`] (iteration limits; MCF1 and the final
/// extraction never report infeasibility).
pub fn map_with_splitting(
    problem: &MappingProblem,
    options: &SplitOptions,
) -> Result<SplitOutcome> {
    options.check().map_err(crate::MapError::InvalidOptions)?;
    let node_count = problem.topology().node_count();
    let mut lp_solves = 0usize;

    let mut placed = initialize(problem);
    let mut best = placed.clone();

    let mut feasible = false;
    let mut best_slack = mcf1(problem, &placed, options.scope, &mut lp_solves)?;
    let mut best_flow = f64::INFINITY;

    if best_slack <= SLACK_EPSILON {
        feasible = true;
        best_flow = mcf2(problem, &placed, options.scope, &mut lp_solves)?;
        best = placed.clone();
    }

    for _ in 0..options.passes {
        for i in 0..node_count {
            for j in (i + 1)..node_count {
                let a = NodeId::new(i);
                let b = NodeId::new(j);
                if placed.core_at(a).is_none() && placed.core_at(b).is_none() {
                    continue;
                }
                let mut candidate = placed.clone();
                candidate.swap_nodes(a, b);

                if !feasible {
                    let slack = mcf1(problem, &candidate, options.scope, &mut lp_solves)?;
                    if slack <= SLACK_EPSILON {
                        feasible = true;
                        best_flow = mcf2(problem, &candidate, options.scope, &mut lp_solves)?;
                        best = candidate.clone();
                        placed = candidate;
                    } else if slack < best_slack {
                        best_slack = slack;
                        best = candidate;
                    }
                } else {
                    let flow = mcf2(problem, &candidate, options.scope, &mut lp_solves)?;
                    if flow < best_flow {
                        best_flow = flow;
                        best = candidate;
                    }
                }
            }
            placed = best.clone();
        }
    }

    // Final flow extraction on the winning mapping.
    let final_solution: McfSolution = if feasible {
        solve_mcf(problem, &best, McfKind::FlowMin, options.scope)?
    } else {
        solve_mcf(problem, &best, McfKind::SlackMin, options.scope)?
    };
    let slack = if feasible { 0.0 } else { final_solution.objective };
    let total_flow = if feasible { final_solution.objective } else { f64::INFINITY };

    Ok(SplitOutcome {
        comm_cost: problem.comm_cost(&best),
        mapping: best,
        total_flow,
        slack,
        feasible,
        tables: final_solution.tables,
        link_loads: final_solution.link_loads,
        lp_solves,
    })
}

/// Slack below which a mapping counts as bandwidth-feasible (MB/s).
const SLACK_EPSILON: f64 = 1e-6;

fn mcf1(
    problem: &MappingProblem,
    mapping: &Mapping,
    scope: PathScope,
    lp_solves: &mut usize,
) -> Result<f64> {
    *lp_solves += 1;
    Ok(solve_mcf(problem, mapping, McfKind::SlackMin, scope)?.objective)
}

fn mcf2(
    problem: &MappingProblem,
    mapping: &Mapping,
    scope: PathScope,
    lp_solves: &mut usize,
) -> Result<f64> {
    *lp_solves += 1;
    match solve_mcf(problem, mapping, McfKind::FlowMin, scope) {
        Ok(sol) => Ok(sol.objective),
        // A capacity-infeasible candidate scores `maxvalue`, mirroring the
        // single-path algorithm's treatment.
        Err(e) if crate::mcf::is_infeasible(&e) => Ok(f64::INFINITY),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, CoreId, EdgeId, Topology};

    fn pipeline(n: usize, bw: f64) -> CoreGraph {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("s{i}"))).collect();
        for w in ids.windows(2) {
            g.add_comm(w[0], w[1], bw).unwrap();
        }
        g
    }

    #[test]
    fn feasible_problem_minimizes_flow() {
        let p = MappingProblem::new(pipeline(4, 100.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        assert!(out.feasible);
        assert_eq!(out.slack, 0.0);
        // Ample capacity: optimal flow puts every edge on 1 hop.
        assert!((out.total_flow - 300.0).abs() < 1e-4, "flow {}", out.total_flow);
        assert!((out.comm_cost.to_f64() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn splitting_rescues_infeasible_single_path() {
        // 300 MB/s flow, 160 MB/s links: single-path can never fit, split
        // routing can (150+150 across the two disjoint routes of a 2x2).
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 300.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 160.0)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        assert!(out.feasible, "split routing must satisfy 300 over 2x160 paths");
        assert!(out.link_loads.within_capacity(p.topology()));
        assert!(out.tables.routes_of(EdgeId::new(0)).len() >= 2, "traffic must split");
    }

    #[test]
    fn truly_infeasible_reports_min_slack() {
        // 300 MB/s flow, 100 MB/s links on 2x2: max deliverable between
        // adjacent nodes is 200 (two paths share no link), slack >= 100.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 300.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 100.0)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        assert!(!out.feasible);
        assert!((out.slack - 100.0).abs() < 1e-4, "slack {}", out.slack);
        assert!(out.total_flow.is_infinite());
    }

    #[test]
    fn quadrant_scope_keeps_paths_minimal() {
        let p = MappingProblem::new(pipeline(4, 120.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions { scope: PathScope::Quadrant, passes: 1 })
            .unwrap();
        assert!(out.feasible);
        let commodities = p.commodities(&out.mapping);
        for c in &commodities {
            let min_hops = p.topology().hop_distance(c.source, c.dest);
            for r in out.tables.routes_of(c.edge) {
                assert_eq!(r.links.len(), min_hops, "NMAPTM route not minimal");
            }
        }
    }

    #[test]
    fn split_cost_not_worse_than_single_path() {
        use crate::{map_single_path, SinglePathOptions};
        let p = MappingProblem::new(pipeline(5, 200.0), Topology::mesh(3, 2, 1e9)).unwrap();
        let single = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        let split = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        // With ample capacity both should find minimal embeddings; the MCF
        // total flow equals the Eq-7 cost at the optimum.
        assert!(split.total_flow <= single.comm_cost.to_f64() + 1e-6);
    }

    #[test]
    fn lp_solve_count_is_tracked() {
        let p = MappingProblem::new(pipeline(3, 10.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        assert!(out.lp_solves >= 2, "at least MCF1 + MCF2 on the initial mapping");
    }

    #[test]
    fn loads_and_tables_agree() {
        let p = MappingProblem::new(pipeline(4, 150.0), Topology::mesh(2, 2, 200.0)).unwrap();
        let out = map_with_splitting(&p, &SplitOptions::default()).unwrap();
        let commodities = p.commodities(&out.mapping);
        let recomputed = out.tables.link_loads(p.topology(), &commodities);
        for (id, _) in p.topology().links() {
            assert!(
                (out.link_loads.get(id) - recomputed.get(id)).abs() < 1e-3,
                "link {id} mismatch"
            );
        }
    }
}
