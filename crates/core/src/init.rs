//! The constructive `initialize()` placement of Section 5.
//!
//! 1. The core with the largest total communication demand (in the
//!    undirected view of the core graph) is placed on the topology node
//!    with the most neighbours.
//! 2. Repeatedly, the unmapped core communicating most with the already
//!    mapped cores is selected, and placed on the free node minimizing
//!    `Σ_{w ∈ mapped} comm(next, w) · dist(candidate, map(w))`.
//!
//! All ties break toward lower ids, making the routine deterministic.

use noc_graph::CoreId;
use noc_units::Mbps;

use crate::{Mapping, MappingProblem};

/// Computes the initial placement for `problem` (the paper's
/// `initialize()` routine).
///
/// Returns a complete [`Mapping`]: every core of the application is
/// assigned to a distinct topology node.
pub fn initialize(problem: &MappingProblem) -> Mapping {
    let cores = problem.cores();
    let topology = problem.topology();
    let mut mapping = Mapping::new(topology.node_count());

    let mut unmapped: Vec<CoreId> = cores.cores().collect();
    let mut mapped: Vec<CoreId> = Vec::with_capacity(unmapped.len());

    // Seed: max-communication core onto the max-degree (most central) node.
    let seed = cores.max_comm_core().expect("non-empty problem");
    let seed_node = topology.max_degree_node();
    mapping.place(seed, seed_node);
    unmapped.retain(|&c| c != seed);
    mapped.push(seed);

    while let Some(next) = select_next_core(problem, &unmapped, &mapped) {
        // Evaluate every free node; pick the min-cost one (ties → lowest id).
        let mut best_node = None;
        let mut best_cost = f64::INFINITY;
        for node in topology.nodes() {
            if mapping.core_at(node).is_some() {
                continue;
            }
            let mut cost = 0.0;
            for &w in &mapped {
                let comm = cores.comm_between(next, w);
                if comm > Mbps::ZERO {
                    let host = mapping.node_of(w).expect("mapped core has a node");
                    cost += comm.to_f64() * topology.hop_distance(node, host) as f64;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_node = Some(node);
            }
        }
        let node = best_node.expect("|V| <= |U| guarantees a free node");
        mapping.place(next, node);
        unmapped.retain(|&c| c != next);
        mapped.push(next);
    }

    debug_assert!(mapping.is_complete(cores));
    mapping
}

/// The unmapped core with maximum total communication to the mapped set;
/// ties break toward the lower core id. Cores with no communication to the
/// mapped set are still eligible (they are placed last, by id).
fn select_next_core(
    problem: &MappingProblem,
    unmapped: &[CoreId],
    mapped: &[CoreId],
) -> Option<CoreId> {
    let cores = problem.cores();
    unmapped.iter().copied().max_by(|&a, &b| {
        let comm_a: Mbps = mapped.iter().map(|&w| cores.comm_between(a, w)).sum();
        let comm_b: Mbps = mapped.iter().map(|&w| cores.comm_between(b, w)).sum();
        // `Mbps` orders totally (NaN unrepresentable), and `total_cmp`
        // agrees with `partial_cmp` on the finite values both admit.
        comm_a.cmp(&comm_b).then(b.cmp(&a))
        // prefer lower id on ties
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};

    fn problem(edges: &[(usize, usize, f64)], cores: usize, w: usize, h: usize) -> MappingProblem {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..cores).map(|i| g.add_core(format!("c{i}"))).collect();
        for &(a, b, bw) in edges {
            g.add_comm(ids[a], ids[b], bw).unwrap();
        }
        MappingProblem::new(g, Topology::mesh(w, h, 1e9)).unwrap()
    }

    #[test]
    fn seed_goes_to_center() {
        // Star: core 0 talks to everyone; must land on the 3x3 center.
        let p = problem(&[(0, 1, 100.0), (0, 2, 100.0), (0, 3, 100.0), (0, 4, 100.0)], 5, 3, 3);
        let m = initialize(&p);
        let center = p.topology().node_at(1, 1).unwrap();
        assert_eq!(m.node_of(CoreId::new(0)), Some(center));
    }

    #[test]
    fn star_satellites_surround_hub() {
        let p = problem(&[(0, 1, 100.0), (0, 2, 100.0), (0, 3, 100.0), (0, 4, 100.0)], 5, 3, 3);
        let m = initialize(&p);
        let hub = m.node_of(CoreId::new(0)).unwrap();
        for i in 1..5 {
            let n = m.node_of(CoreId::new(i)).unwrap();
            assert_eq!(p.topology().hop_distance(hub, n), 1, "satellite {i} not adjacent to hub");
        }
    }

    #[test]
    fn heavy_pair_lands_adjacent() {
        let p = problem(&[(0, 1, 1000.0), (1, 2, 10.0), (2, 3, 10.0)], 4, 4, 4);
        let m = initialize(&p);
        let a = m.node_of(CoreId::new(0)).unwrap();
        let b = m.node_of(CoreId::new(1)).unwrap();
        assert_eq!(p.topology().hop_distance(a, b), 1);
    }

    #[test]
    fn placement_is_complete_and_injective() {
        let p = problem(
            &[(0, 1, 50.0), (1, 2, 40.0), (2, 3, 30.0), (3, 4, 20.0), (4, 5, 10.0)],
            6,
            3,
            2,
        );
        let m = initialize(&p);
        assert!(m.is_complete(p.cores()));
        let mut nodes: Vec<_> = m.assignments().map(|(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 6);
    }

    #[test]
    fn pipeline_initial_cost_is_reasonable() {
        // A 4-stage pipeline on a 2x2 mesh can achieve cost = sum of edges
        // (all adjacent). initialize() should get within 1 extra hop of it.
        let p = problem(&[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0)], 4, 2, 2);
        let m = initialize(&p);
        let cost = p.comm_cost(&m);
        assert!(cost.to_f64() <= 400.0, "cost {cost} too high for a 2x2 pipeline");
    }

    #[test]
    fn isolated_cores_are_still_placed() {
        let p = problem(&[(0, 1, 10.0)], 4, 2, 2);
        let m = initialize(&p);
        assert!(m.is_complete(p.cores()));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = problem(
            &[(0, 1, 70.0), (1, 2, 362.0), (2, 3, 362.0), (3, 4, 357.0), (4, 0, 27.0)],
            5,
            3,
            3,
        );
        assert_eq!(initialize(&p), initialize(&p));
    }

    #[test]
    fn works_on_torus() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 5.0).unwrap();
        let p = MappingProblem::new(g, Topology::torus(3, 3, 1e9)).unwrap();
        let m = initialize(&p);
        assert!(m.is_complete(p.cores()));
        let (na, nb) = (m.node_of(a).unwrap(), m.node_of(b).unwrap());
        assert_eq!(p.topology().hop_distance(na, nb), 1);
    }
}
