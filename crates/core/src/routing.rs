//! Routing engines and link-load accounting.
//!
//! * [`route_min_paths`] — the routing half of the paper's
//!   `shortestpath()` routine: commodities are processed in decreasing
//!   bandwidth order and each is routed over the least-loaded minimal path
//!   inside its quadrant graph (Dijkstra with load-dependent weights,
//!   weights grow by `vl(d_k)` after each commodity is committed).
//! * [`route_dor`] — deterministic dimension-ordered routing over the
//!   grid's axes in stride order (X, then Y, then Z, ...), used for the
//!   DPMAP/DGMAP rows of the paper's Figure 4; [`route_xy`] is its
//!   historical 2-D spelling.
//! * [`LinkLoads`] — aggregate per-link traffic, the left-hand side of the
//!   bandwidth constraint (Inequality 3).
//! * [`RoutingTables`] — per-commodity path sets with flow fractions; the
//!   single-path and split-traffic flows share this representation.

use noc_graph::{dijkstra, Axis, EdgeId, LinkId, NodeId, QuadrantDag, Topology};

use crate::{Commodity, MapError, Mapping, MappingProblem, Result};

// lint: allow-file(f64-api) — this module is the routing hot path: link
// loads are a dense per-link `Vec<f64>` accumulator driven inside the
// Dijkstra weight closure, and `SplitRoute::fraction` is dimensionless.
// Values are MB/s by construction (they enter from typed `Mbps`
// commodity values via `to_f64()`), and they re-enter the typed world at
// the report/record seams.

/// Absolute slack (MB/s) tolerated when comparing loads to capacities,
/// compensating LP and floating-point round-off.
pub const CAPACITY_TOLERANCE: f64 = 1e-6;

/// A single-path route for one commodity.
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityPath {
    /// The core-graph edge routed.
    pub edge: EdgeId,
    /// Links traversed, in travel order.
    pub links: Vec<LinkId>,
    /// Nodes visited, source first, destination last.
    pub nodes: Vec<NodeId>,
}

impl CommodityPath {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// One routed fraction of a split commodity: a path and the share of the
/// commodity's bandwidth it carries (`0 < fraction ≤ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitRoute {
    /// Links of the path, in travel order.
    pub links: Vec<LinkId>,
    /// Fraction of the commodity's value carried by this path.
    pub fraction: f64,
}

/// Per-commodity routing tables: each commodity maps to one or more
/// weighted paths. Single-path routings have exactly one entry with
/// fraction 1. This is the data a NoC's source-routing tables would be
/// loaded with (the paper estimates them under 10% of buffer bits).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingTables {
    routes: Vec<Vec<SplitRoute>>,
}

impl RoutingTables {
    /// Builds tables from single-path routes (fraction 1 each), indexed by
    /// commodity (core-graph edge) order.
    pub fn from_single_paths(paths: &[CommodityPath]) -> Self {
        let mut routes = vec![Vec::new(); paths.len()];
        for p in paths {
            routes[p.edge.index()] = vec![SplitRoute { links: p.links.clone(), fraction: 1.0 }];
        }
        Self { routes }
    }

    /// Builds tables directly from per-commodity split routes, indexed by
    /// commodity order.
    pub fn from_split_routes(routes: Vec<Vec<SplitRoute>>) -> Self {
        Self { routes }
    }

    /// Number of commodities covered.
    pub fn commodity_count(&self) -> usize {
        self.routes.len()
    }

    /// The weighted paths of commodity `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn routes_of(&self, edge: EdgeId) -> &[SplitRoute] {
        &self.routes[edge.index()]
    }

    /// Largest number of alternative paths any commodity uses (routing
    /// table depth).
    pub fn max_paths_per_commodity(&self) -> usize {
        self.routes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Recomputes aggregate link loads for these tables given the
    /// commodity values.
    pub fn link_loads(&self, topology: &Topology, commodities: &[Commodity]) -> LinkLoads {
        let mut loads = LinkLoads::zeros(topology.link_count());
        for c in commodities {
            for route in self.routes_of(c.edge) {
                for &l in &route.links {
                    loads.add(l, (c.value * route.fraction).to_f64());
                }
            }
        }
        loads
    }
}

/// Aggregate traffic per directed link: `Σ_k x^k_{i,j}` of Inequality 3.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkLoads {
    loads: Vec<f64>,
}

impl LinkLoads {
    /// All-zero loads for `link_count` links.
    pub fn zeros(link_count: usize) -> Self {
        Self { loads: vec![0.0; link_count] }
    }

    /// Load on `link` in MB/s.
    pub fn get(&self, link: LinkId) -> f64 {
        self.loads[link.index()]
    }

    /// Adds `amount` MB/s to `link`.
    pub fn add(&mut self, link: LinkId, amount: f64) {
        self.loads[link.index()] += amount;
    }

    /// Zeroes every load in place, keeping the allocation (scratch reuse
    /// in [`crate::EvalContext`]).
    pub fn reset(&mut self) {
        self.loads.fill(0.0);
    }

    /// The heaviest link load — the minimum uniform link capacity that
    /// would make this routing feasible (the paper's Figure 4 metric).
    pub fn max(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all link loads — the MCF2 objective (Equation 9) value of
    /// this routing.
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// True if every link load is within its capacity (Inequality 3),
    /// modulo [`CAPACITY_TOLERANCE`].
    pub fn within_capacity(&self, topology: &Topology) -> bool {
        topology
            .links()
            .all(|(id, link)| self.loads[id.index()] <= link.capacity.to_f64() + CAPACITY_TOLERANCE)
    }

    /// Total capacity violation `Σ max(0, load - capacity)` — comparable
    /// to the MCF1 slack objective (Equation 8).
    pub fn violation(&self, topology: &Topology) -> f64 {
        topology
            .links()
            .map(|(id, link)| (self.loads[id.index()] - link.capacity.to_f64()).max(0.0))
            .sum()
    }

    /// Read-only view of the raw per-link loads.
    pub fn as_slice(&self) -> &[f64] {
        &self.loads
    }
}

/// Routes every commodity over a single minimal path, balancing load
/// greedily (the routing phase of the paper's `shortestpath()` routine).
///
/// Commodities are processed in decreasing bandwidth order. Each is routed
/// by Dijkstra over its quadrant DAG with link weight
/// `1 + (traffic already committed to the link)`; after routing, the
/// path's links gain the commodity's bandwidth. Because every quadrant
/// path is minimal, the result is always a minimum-hop routing.
///
/// Any change to this loop (order, weights, tie-breaking) must be
/// mirrored in [`crate::EvalContext::route_min_loads`], the cached
/// loads-only replay of the same algorithm; their bit-identity is
/// asserted by the `eval` module's tests.
///
/// # Errors
///
/// [`MapError::Unroutable`] if a commodity's endpoints are disconnected
/// (impossible on meshes/tori, possible on custom topologies).
///
/// # Panics
///
/// Panics if `mapping` is incomplete.
pub fn route_min_paths(
    problem: &MappingProblem,
    mapping: &Mapping,
) -> Result<(Vec<CommodityPath>, LinkLoads)> {
    let topology = problem.topology();
    let commodities = problem.commodities(mapping);
    let order = problem.commodity_order();

    let mut loads = LinkLoads::zeros(topology.link_count());
    let mut paths: Vec<Option<CommodityPath>> = vec![None; commodities.len()];

    for edge in order {
        let c = commodities[edge.index()];
        if c.source == c.dest {
            // Cannot happen through the public API (mapping is injective and
            // the core graph has no self-loops) but keep the router total.
            paths[edge.index()] =
                Some(CommodityPath { edge, links: Vec::new(), nodes: vec![c.source] });
            continue;
        }
        let quadrant = QuadrantDag::new(topology, c.source, c.dest);
        let outcome =
            dijkstra(topology, c.source, c.dest, |l| 1.0 + loads.get(l), |l| quadrant.contains(l))
                .ok_or(MapError::Unroutable { commodity: edge.index() })?;
        for &l in &outcome.links {
            loads.add(l, c.value.to_f64());
        }
        paths[edge.index()] =
            Some(CommodityPath { edge, links: outcome.links, nodes: outcome.nodes });
    }

    Ok((paths.into_iter().map(|p| p.expect("all commodities routed")).collect(), loads))
}

/// Routes every commodity with deterministic **dimension-ordered routing**
/// (DOR): the grid's axes are resolved one at a time in stride order —
/// first along X, then Y, then Z, ... — each along the shorter wrap
/// direction on wrapping axes (ties toward increasing coordinate). On 2-D
/// grids this is exactly the "dimension ordered (XY) routing" used by the
/// DPMAP/DGMAP rows of Figure 4; on a 3-D grid it becomes XYZ routing.
///
/// # Errors
///
/// [`MapError::GridRequired`] for custom topologies (the error names the
/// offending kind).
///
/// # Panics
///
/// Panics if `mapping` is incomplete.
pub fn route_dor(
    problem: &MappingProblem,
    mapping: &Mapping,
) -> Result<(Vec<CommodityPath>, LinkLoads)> {
    let topology = problem.topology();
    let grid = topology
        .grid_structure()
        .ok_or_else(|| MapError::GridRequired { found: topology.kind().describe() })?;

    let commodities = problem.commodities(mapping);
    let mut loads = LinkLoads::zeros(topology.link_count());
    let mut paths = Vec::with_capacity(commodities.len());

    for c in &commodities {
        let mut coords = topology.grid_coords(c.source).to_vec();
        let target = topology.grid_coords(c.dest);
        let mut nodes = vec![c.source];
        let mut links = Vec::new();

        for (axis, &goal) in target.iter().enumerate() {
            let ax = grid.axis(axis);
            while coords[axis] != goal {
                coords[axis] = step_toward(coords[axis], goal, ax);
                let next = topology.node_at_coords(&coords).expect("in range");
                let link = topology
                    .find_link(*nodes.last().expect("non-empty"), next)
                    .expect("grid neighbours are linked");
                links.push(link);
                nodes.push(next);
            }
        }

        for &l in &links {
            loads.add(l, c.value.to_f64());
        }
        paths.push(CommodityPath { edge: c.edge, links, nodes });
    }

    Ok((paths, loads))
}

/// Historical 2-D spelling of [`route_dor`] — X-then-Y on meshes and tori.
/// Works on grids of any rank (it *is* the generic router).
///
/// # Errors
///
/// Same conditions as [`route_dor`].
///
/// # Panics
///
/// Panics if `mapping` is incomplete.
pub fn route_xy(
    problem: &MappingProblem,
    mapping: &Mapping,
) -> Result<(Vec<CommodityPath>, LinkLoads)> {
    route_dor(problem, mapping)
}

/// One dimension-ordered step from `from` toward `to` along `axis`; the
/// torus shortcut is taken when the axis wraps and it is strictly shorter
/// (ties toward increasing coordinate).
fn step_toward(from: usize, to: usize, axis: Axis) -> usize {
    debug_assert_ne!(from, to);
    let extent = axis.extent;
    let forward = (to + extent - from) % extent; // distance going +1 with wrap
    let backward = extent - forward;
    let go_forward = if axis.wraps() {
        forward <= backward // tie → increasing coordinate
    } else {
        to > from
    };
    if go_forward {
        (from + 1) % extent
    } else {
        (from + extent - 1) % extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, CoreId, Topology};

    /// Two parallel heavy flows between opposite mesh corners.
    fn crossing_problem() -> (MappingProblem, Mapping) {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(c, d, 100.0).unwrap();
        let t = Topology::mesh(2, 2, 1e9);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(4);
        m.place(a, NodeId::new(0)); // (0,0)
        m.place(b, NodeId::new(3)); // (1,1)
        m.place(c, NodeId::new(1)); // (1,0)
        m.place(d, NodeId::new(2)); // (0,1)
        (p, m)
    }

    #[test]
    fn min_path_routes_are_minimal() {
        let (p, m) = crossing_problem();
        let (paths, _) = route_min_paths(&p, &m).unwrap();
        for path in &paths {
            let c = p.commodities(&m)[path.edge.index()];
            assert_eq!(path.hops(), p.topology().hop_distance(c.source, c.dest));
            assert_eq!(path.nodes.first(), Some(&c.source));
            assert_eq!(path.nodes.last(), Some(&c.dest));
        }
    }

    #[test]
    fn min_path_router_balances_crossing_flows() {
        // Two diagonal 100 MB/s flows on a 2x2 mesh: each has two minimal
        // paths; load balancing must keep every link at 100, never 200.
        let (p, m) = crossing_problem();
        let (_, loads) = route_min_paths(&p, &m).unwrap();
        assert_eq!(loads.max(), 100.0, "router failed to balance: {loads:?}");
    }

    #[test]
    fn loads_match_paths() {
        let (p, m) = crossing_problem();
        let (paths, loads) = route_min_paths(&p, &m).unwrap();
        let tables = RoutingTables::from_single_paths(&paths);
        let recomputed = tables.link_loads(p.topology(), &p.commodities(&m));
        for (id, _) in p.topology().links() {
            assert!((loads.get(id) - recomputed.get(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::mesh(3, 3, 1e9);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(9);
        m.place(a, NodeId::new(0)); // (0,0)
        m.place(b, NodeId::new(8)); // (2,2)
        let (paths, _) = route_xy(&p, &m).unwrap();
        let coords: Vec<(usize, usize)> =
            paths[0].nodes.iter().map(|&n| p.topology().coords(n)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn xy_routing_on_torus_takes_wrap() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::torus(5, 5, 1e9);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(25);
        m.place(a, NodeId::new(0)); // (0,0)
        m.place(b, NodeId::new(4)); // (4,0)
        let (paths, _) = route_xy(&p, &m).unwrap();
        assert_eq!(paths[0].hops(), 1, "should use the wrap link");
    }

    #[test]
    fn xy_requires_mesh() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::custom(
            2,
            [(NodeId::new(0), NodeId::new(1), 1e9), (NodeId::new(1), NodeId::new(0), 1e9)],
        )
        .unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(2);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(1));
        assert_eq!(
            route_xy(&p, &m).unwrap_err(),
            MapError::GridRequired { found: "custom".into() }
        );
        // ...but the min-path router works on custom topologies.
        assert!(route_min_paths(&p, &m).is_ok());
    }

    #[test]
    fn dor_routing_resolves_axes_in_order_on_3d_grids() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::mesh_nd(&[3, 3, 2], 1e9).unwrap();
        let src = t.node_at_coords(&[0, 0, 0]).unwrap();
        let dst = t.node_at_coords(&[2, 1, 1]).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(18);
        m.place(a, src);
        m.place(b, dst);
        let (paths, _) = route_dor(&p, &m).unwrap();
        let coords: Vec<Vec<usize>> =
            paths[0].nodes.iter().map(|&n| p.topology().grid_coords(n).to_vec()).collect();
        assert_eq!(
            coords,
            vec![
                vec![0, 0, 0],
                vec![1, 0, 0],
                vec![2, 0, 0], // X resolved first...
                vec![2, 1, 0], // ...then Y...
                vec![2, 1, 1], // ...then Z.
            ]
        );
        assert_eq!(paths[0].hops(), p.topology().hop_distance(src, dst));
    }

    #[test]
    fn dor_routing_takes_wraps_per_axis_on_3d_tori() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        let t = Topology::torus_nd(&[4, 4, 4], 1e9).unwrap();
        let src = t.node_at_coords(&[0, 0, 0]).unwrap();
        let dst = t.node_at_coords(&[3, 3, 3]).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(64);
        m.place(a, src);
        m.place(b, dst);
        let (paths, _) = route_dor(&p, &m).unwrap();
        assert_eq!(paths[0].hops(), 3, "every axis should use its wrap link");
    }

    #[test]
    fn xy_concentrates_load_more_than_min_path() {
        // Many flows from the left column to the right column: XY pushes
        // them all through the same horizontal rows deterministically; the
        // load-balanced router can only do better or equal.
        let mut g = CoreGraph::new();
        let cores: Vec<CoreId> = (0..6).map(|i| g.add_core(format!("c{i}"))).collect();
        g.add_comm(cores[0], cores[1], 100.0).unwrap();
        g.add_comm(cores[2], cores[3], 100.0).unwrap();
        g.add_comm(cores[4], cores[5], 100.0).unwrap();
        let t = Topology::mesh(3, 3, 1e9);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(9);
        // sources on column 0, destinations all at (2,1): shared sink.
        m.place(cores[0], NodeId::new(0));
        m.place(cores[2], NodeId::new(3));
        m.place(cores[4], NodeId::new(6));
        m.place(cores[1], NodeId::new(5));
        m.place(cores[3], NodeId::new(4)); // decoy middle
        m.place(cores[5], NodeId::new(8));
        let (_, xy) = route_xy(&p, &m).unwrap();
        let (_, mp) = route_min_paths(&p, &m).unwrap();
        assert!(mp.max() <= xy.max() + 1e-9);
    }

    #[test]
    fn capacity_checks() {
        let (p, m) = crossing_problem();
        let (_, loads) = route_min_paths(&p, &m).unwrap();
        assert!(loads.within_capacity(p.topology()));
        assert_eq!(loads.violation(p.topology()), 0.0);

        // Rebuild with tiny capacities: violations appear.
        let (g, _) = p.into_parts();
        let tight = Topology::mesh(2, 2, 50.0);
        let p2 = MappingProblem::new(g, tight).unwrap();
        let (_, loads2) = route_min_paths(&p2, &m).unwrap();
        assert!(!loads2.within_capacity(p2.topology()));
        assert!(loads2.violation(p2.topology()) > 0.0);
    }

    #[test]
    fn routing_tables_report_path_counts() {
        let (p, m) = crossing_problem();
        let (paths, _) = route_min_paths(&p, &m).unwrap();
        let tables = RoutingTables::from_single_paths(&paths);
        assert_eq!(tables.commodity_count(), 2);
        assert_eq!(tables.max_paths_per_commodity(), 1);
        for (e, _) in p.cores().edges() {
            assert_eq!(tables.routes_of(e).len(), 1);
            assert_eq!(tables.routes_of(e)[0].fraction, 1.0);
        }
    }

    #[test]
    fn step_toward_mesh_and_torus() {
        let mesh5 = Axis { extent: 5, wrap: false };
        let torus5 = Axis { extent: 5, wrap: true };
        assert_eq!(step_toward(0, 3, mesh5), 1);
        assert_eq!(step_toward(3, 0, mesh5), 2);
        // Torus: 0 -> 4 wraps backward (distance 1 vs 4).
        assert_eq!(step_toward(0, 4, torus5), 4);
        // Equidistant (0 -> 2 in extent 4): tie goes forward.
        assert_eq!(step_toward(0, 2, Axis { extent: 4, wrap: true }), 1);
        // Declared wrap on a size-2 axis is not realized: steps stay mesh-like.
        assert_eq!(step_toward(0, 1, Axis { extent: 2, wrap: true }), 1);
    }

    #[test]
    fn link_loads_arithmetic() {
        let mut loads = LinkLoads::zeros(3);
        loads.add(LinkId::new(0), 10.0);
        loads.add(LinkId::new(0), 5.0);
        loads.add(LinkId::new(2), 7.0);
        assert_eq!(loads.get(LinkId::new(0)), 15.0);
        assert_eq!(loads.max(), 15.0);
        assert_eq!(loads.total(), 22.0);
        assert_eq!(loads.as_slice(), &[15.0, 0.0, 7.0]);
    }
}
