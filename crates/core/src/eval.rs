//! Reusable evaluation context for placement search — the hot path of
//! [`map_single_path`](crate::map_single_path) and of every design-space
//! sweep built on top of it.
//!
//! Evaluating one candidate placement means routing every commodity over
//! its quadrant DAG and checking link capacities. The naive loop rebuilds
//! three mapping-independent artifacts on every call:
//!
//! * the **quadrant DAG** of each `(source, dest)` node pair — a pure
//!   function of the topology, yet a pairwise-swap descent revisits the
//!   same pairs thousands of times;
//! * the **commodity processing order** (edges by decreasing bandwidth) —
//!   a pure function of the core graph;
//! * the **scratch vectors** (commodity list, per-link loads) — identical
//!   shape on every evaluation.
//!
//! [`EvalContext`] caches the first two and reuses the third, while
//! producing *bit-identical* results to the uncached
//! [`routing::route_min_paths`](crate::routing::route_min_paths) +
//! [`MappingProblem::comm_cost`] pipeline: the same Dijkstra queries run
//! with the same weights in the same order, so every floating-point
//! operation is unchanged (asserted by tests and the workspace determinism
//! suite).

use noc_graph::{dijkstra, NodeId, QuadrantDag};
use noc_probe::{Counter, Probe};
use noc_units::{CostDelta, HopMbps, Score};

use crate::routing::LinkLoads;
use crate::{Commodity, MapError, Mapping, MappingProblem, Result};

/// Telemetry handles for the search layer (see `crates/probe`): no-ops
/// unless [`EvalContext::set_probe`] attached a live probe, and strictly
/// out-of-band — nothing in the search reads them, so every mapper
/// result is byte-identical with probes on, off, or compiled out.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchCounters {
    /// Full candidate evaluations ([`EvalContext::evaluate`] calls).
    pub evaluations: Counter,
    /// O(deg) swap-delta prefilter computations.
    pub swap_deltas: Counter,
    /// Delta-gated descent: candidates the gate let through to a full
    /// evaluation.
    pub gate_accepts: Counter,
    /// Delta-gated descent: candidates pruned by the gate.
    pub gate_rejects: Counter,
}

impl SearchCounters {
    fn new(probe: &Probe) -> Self {
        Self {
            evaluations: probe.counter("search.evaluations"),
            swap_deltas: probe.counter("search.swap_deltas"),
            gate_accepts: probe.counter("search.gate_accepts"),
            gate_rejects: probe.counter("search.gate_rejects"),
        }
    }
}

/// Cached state for repeatedly evaluating placements of one
/// [`MappingProblem`].
///
/// Create one per problem and feed it to
/// [`map_single_path_with`](crate::map_single_path_with), or drive it
/// directly via [`EvalContext::evaluate`] for custom search loops.
#[derive(Debug, Clone)]
pub struct EvalContext<'p> {
    problem: &'p MappingProblem,
    /// Commodity processing order (decreasing bandwidth) — graph-only.
    order: Vec<noc_graph::EdgeId>,
    /// Quadrant DAG cache, keyed by `source * node_count + dest`.
    quadrants: Vec<Option<QuadrantDag>>,
    /// Scratch: commodity list of the mapping under evaluation.
    commodities: Vec<Commodity>,
    /// Scratch: per-link loads of the routing under evaluation.
    loads: LinkLoads,
    /// Quadrant cache misses (diagnostics: DAGs actually built).
    built_quadrants: usize,
    /// Telemetry (no-op handles unless a probe was attached).
    probe: Probe,
    pub(crate) counters: SearchCounters,
}

impl<'p> EvalContext<'p> {
    /// Creates an empty context for `problem`. Caches fill lazily.
    pub fn new(problem: &'p MappingProblem) -> Self {
        let nodes = problem.topology().node_count();
        Self {
            problem,
            order: problem.commodity_order(),
            quadrants: vec![None; nodes * nodes],
            commodities: Vec::with_capacity(problem.cores().edge_count()),
            loads: LinkLoads::zeros(problem.topology().link_count()),
            built_quadrants: 0,
            probe: Probe::default(),
            counters: SearchCounters::default(),
        }
    }

    /// Attaches a telemetry probe (see `crates/probe`). The search layer
    /// only ever *writes* to it, so attaching one cannot change any
    /// mapper's result — pinned by the probe-identity differential suite.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.probe = probe.clone();
        self.counters = SearchCounters::new(&self.probe);
    }

    /// The attached probe (disabled unless [`Self::set_probe`] was
    /// called), for mappers that emit their own events through it.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The problem this context evaluates against.
    pub fn problem(&self) -> &'p MappingProblem {
        self.problem
    }

    /// Number of distinct quadrant DAGs built so far (cache size).
    pub fn built_quadrants(&self) -> usize {
        self.built_quadrants
    }

    /// Equation-7 communication cost of `mapping` — delegates to the
    /// (allocation-free) [`MappingProblem::comm_cost`].
    ///
    /// # Panics
    ///
    /// Panics if `mapping` is incomplete.
    pub fn comm_cost(&self, mapping: &Mapping) -> HopMbps {
        self.problem.comm_cost(mapping)
    }

    /// Equation-7 cost change of exchanging the contents of nodes `a` and
    /// `b` in `mapping` (the move set of [`Mapping::swap_nodes`]), in
    /// `O(deg(a) + deg(b))` hop-distance queries instead of the full
    /// O(E) scan: only commodities incident to the two swapped cores
    /// change their hop distance, so only those are re-measured. On
    /// mesh/torus topologies each query is a closed form, so the whole
    /// call is O(deg); custom topologies answer each query with a BFS
    /// (see [`noc_graph::Topology::hop_distance`]), which the full scan
    /// pays per edge too. Either node may be empty (a core→free-slot
    /// move); `a == b` or two empty nodes give [`CostDelta::ZERO`].
    ///
    /// The returned delta equals `comm_cost(swapped) - comm_cost(mapping)`
    /// up to floating-point rounding of the different summation orders —
    /// exact in real arithmetic, including on custom topologies with
    /// asymmetric hop distances (directions are preserved per edge). Use
    /// it to *rank* or *prefilter* candidate swaps; confirm an accepted
    /// candidate with the full [`EvalContext::evaluate`] when bit-exact
    /// costs matter (that is what the delta-gated swap descent does).
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not place every core whose commodities
    /// touch `a` or `b`, or if a node is out of range.
    pub fn swap_delta(&self, mapping: &Mapping, a: NodeId, b: NodeId) -> CostDelta {
        self.counters.swap_deltas.inc();
        if a == b {
            return CostDelta::ZERO;
        }
        let topology = self.problem.topology();
        let cores = self.problem.cores();
        let ca = mapping.core_at(a);
        let cb = mapping.core_at(b);
        // Accumulate in raw f64 — the exact op sequence of the pre-typed
        // kernel — and stamp the unit once at the exit.
        let mut delta = 0.0;
        let hop = |x: NodeId, y: NodeId| topology.hop_distance(x, y) as f64;
        if let Some(ca) = ca {
            for (_, e) in cores.out_edges(ca) {
                if Some(e.dst) == cb {
                    // ca→cb rides the swap on both ends: a→b becomes b→a.
                    delta += e.bandwidth.to_f64() * (hop(b, a) - hop(a, b));
                    continue;
                }
                let other = mapping.node_of(e.dst).expect("complete mapping");
                delta += e.bandwidth.to_f64() * (hop(b, other) - hop(a, other));
            }
            for (_, e) in cores.in_edges(ca) {
                if Some(e.src) == cb {
                    delta += e.bandwidth.to_f64() * (hop(a, b) - hop(b, a));
                    continue;
                }
                let other = mapping.node_of(e.src).expect("complete mapping");
                delta += e.bandwidth.to_f64() * (hop(other, b) - hop(other, a));
            }
        }
        if let Some(cb) = cb {
            for (_, e) in cores.out_edges(cb) {
                if Some(e.dst) == ca {
                    continue; // counted once via ca's incoming loop
                }
                let other = mapping.node_of(e.dst).expect("complete mapping");
                delta += e.bandwidth.to_f64() * (hop(a, other) - hop(b, other));
            }
            for (_, e) in cores.in_edges(cb) {
                if Some(e.src) == ca {
                    continue; // counted once via ca's outgoing loop
                }
                let other = mapping.node_of(e.src).expect("complete mapping");
                delta += e.bandwidth.to_f64() * (hop(other, a) - hop(other, b));
            }
        }
        CostDelta::raw(delta)
    }

    /// Routes every commodity over a single minimal path exactly like
    /// [`routing::route_min_paths`](crate::routing::route_min_paths), but
    /// returns only the aggregate link loads and reuses the cached
    /// quadrant DAGs and scratch buffers.
    ///
    /// # Errors
    ///
    /// [`MapError::Unroutable`] under the same conditions as the uncached
    /// router.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` is incomplete.
    pub fn route_min_loads(&mut self, mapping: &Mapping) -> Result<&LinkLoads> {
        self.problem.commodities_into(mapping, &mut self.commodities);
        self.loads.reset();
        let topology = self.problem.topology();
        let nodes = topology.node_count();

        for &edge in &self.order {
            let c = self.commodities[edge.index()];
            if c.source == c.dest {
                // Unreachable through the public API (injective mapping, no
                // self-loops); mirror route_min_paths and stay total.
                continue;
            }
            let key = c.source.index() * nodes + c.dest.index();
            if self.quadrants[key].is_none() {
                self.built_quadrants += 1;
                self.quadrants[key] = Some(QuadrantDag::new(topology, c.source, c.dest));
            }
            let quadrant = self.quadrants[key].as_ref().expect("filled above");
            let loads = &self.loads;
            let outcome = dijkstra(
                topology,
                c.source,
                c.dest,
                |l| 1.0 + loads.get(l),
                |l| quadrant.contains(l),
            )
            .ok_or(MapError::Unroutable { commodity: edge.index() })?;
            for &l in &outcome.links {
                self.loads.add(l, c.value.to_f64());
            }
        }
        Ok(&self.loads)
    }

    /// The paper's `shortestpath()` score of `mapping`: its Equation-7
    /// communication cost if the routed loads satisfy every link capacity,
    /// [`Score::INFEASIBLE`] otherwise.
    ///
    /// Lazy feasibility as in the swap descent: when the (cheap,
    /// placement-only) cost already fails to beat `threshold`, the
    /// (expensive) routing-based capacity check is skipped — such
    /// candidates would be rejected either way.
    ///
    /// The threshold comparison is **inclusive**: `cost == threshold`
    /// returns [`Score::INFEASIBLE`] too, because the descent only commits
    /// *strict* improvements (`cost < incumbent`) — an equal-cost
    /// candidate can never win, so routing it would be wasted work. Pass
    /// [`Score::INFEASIBLE`] as the threshold to force a full evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError::Unroutable`] from the router.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` is incomplete.
    pub fn evaluate(&mut self, mapping: &Mapping, threshold: Score) -> Result<Score> {
        self.counters.evaluations.inc();
        let cost = self.comm_cost(mapping);
        if cost.to_f64() >= threshold.to_f64() {
            return Ok(Score::INFEASIBLE);
        }
        let topology = self.problem.topology();
        let feasible = self.route_min_loads(mapping)?.within_capacity(topology);
        Ok(if feasible { Score::feasible(cost) } else { Score::INFEASIBLE })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing;
    use noc_graph::{NodeId, RandomGraphConfig, Topology};

    fn random_problem(seed: u64) -> MappingProblem {
        let g = RandomGraphConfig { cores: 12, ..Default::default() }.generate(seed);
        MappingProblem::new(g, Topology::mesh(4, 3, 500.0)).unwrap()
    }

    /// Deterministic complete placements to compare both evaluation paths.
    fn placements(problem: &MappingProblem) -> Vec<Mapping> {
        let base = crate::initialize(problem);
        let n = problem.topology().node_count();
        let mut all = vec![base.clone()];
        for k in 1..6 {
            let mut m = all.last().unwrap().clone();
            m.swap_nodes(NodeId::new(k % n), NodeId::new((3 * k + 1) % n));
            all.push(m);
        }
        all
    }

    #[test]
    fn cached_loads_match_uncached_router_bit_for_bit() {
        for seed in 0..4 {
            let p = random_problem(seed);
            let mut ctx = EvalContext::new(&p);
            for m in placements(&p) {
                let (_, want) = routing::route_min_paths(&p, &m).unwrap();
                let got = ctx.route_min_loads(&m).unwrap();
                assert_eq!(got.as_slice(), want.as_slice(), "seed {seed}");
            }
        }
    }

    #[test]
    fn cached_comm_cost_matches_problem_comm_cost() {
        let p = random_problem(9);
        let ctx = EvalContext::new(&p);
        for m in placements(&p) {
            assert_eq!(ctx.comm_cost(&m), p.comm_cost(&m));
            assert!(ctx.comm_cost(&m).to_f64().is_finite());
        }
    }

    #[test]
    fn quadrant_cache_is_hit_on_reevaluation() {
        let p = random_problem(2);
        let mut ctx = EvalContext::new(&p);
        let m = crate::initialize(&p);
        ctx.route_min_loads(&m).unwrap();
        let after_first = ctx.built_quadrants();
        assert!(after_first > 0);
        ctx.route_min_loads(&m).unwrap();
        assert_eq!(ctx.built_quadrants(), after_first, "second pass must not rebuild");
    }

    #[test]
    fn evaluate_scores_like_the_paper() {
        let p = random_problem(5);
        let mut ctx = EvalContext::new(&p);
        let m = crate::initialize(&p);
        let cost = ctx.comm_cost(&m);
        // Below-threshold candidates are rejected without routing.
        assert!(!ctx.evaluate(&m, Score::feasible(cost)).unwrap().is_feasible());
        // Otherwise the score is the cost (feasible) or infinity.
        let score = ctx.evaluate(&m, Score::INFEASIBLE).unwrap();
        let feasible = ctx.route_min_loads(&m).unwrap().within_capacity(p.topology());
        assert_eq!(score.is_feasible(), feasible);
        if feasible {
            assert_eq!(score.cost(), Some(cost));
        }
    }

    #[test]
    fn evaluate_at_exact_threshold_returns_infinity() {
        // The boundary contract: `cost == threshold` is a rejection (the
        // descent needs strict improvement), with no routing performed.
        let p = random_problem(3);
        let mut ctx = EvalContext::new(&p);
        let m = crate::initialize(&p);
        let cost = ctx.comm_cost(&m);
        assert!(cost > HopMbps::ZERO);
        assert!(!ctx.evaluate(&m, Score::feasible(cost)).unwrap().is_feasible());
        assert_eq!(ctx.built_quadrants(), 0, "equality must not trigger routing");
        // Nudging the threshold just above the cost re-enables evaluation.
        let threshold = Score::raw(cost.to_f64() * (1.0 + 1e-12));
        let score = ctx.evaluate(&m, threshold).unwrap();
        assert!(score.cost() == Some(cost) || !score.is_feasible());
    }

    /// `swap_delta` against ground truth: `comm_cost(after) - comm_cost(before)`.
    fn assert_deltas_match(p: &MappingProblem, m: &Mapping) {
        let ctx = EvalContext::new(p);
        let base = ctx.comm_cost(m);
        let n = p.topology().node_count();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                let mut swapped = m.clone();
                swapped.swap_nodes(a, b);
                let want = (ctx.comm_cost(&swapped) - base).to_f64();
                let got = ctx.swap_delta(m, a, b).to_f64();
                let tol = 1e-9 * (1.0 + base.to_f64());
                assert!(
                    (got - want).abs() <= tol,
                    "swap ({i},{j}): delta {got} but full recompute says {want}"
                );
            }
        }
    }

    #[test]
    fn swap_delta_matches_full_recompute_on_random_meshes() {
        for seed in 0..4 {
            let p = random_problem(seed);
            for m in placements(&p) {
                assert_deltas_match(&p, &m);
            }
        }
    }

    #[test]
    fn swap_delta_handles_tori_and_empty_nodes() {
        // 5 cores on a 3x3 torus: four empty positions exercise the
        // core→free-slot and empty↔empty cases.
        let g = RandomGraphConfig { cores: 5, ..Default::default() }.generate(11);
        let p = MappingProblem::new(g, Topology::torus(3, 3, 500.0)).unwrap();
        for m in placements(&p) {
            assert_deltas_match(&p, &m);
        }
    }

    #[test]
    fn swap_delta_is_exact_on_asymmetric_custom_topologies() {
        use noc_graph::CoreGraph;
        // A directed ring plus one chord: hop(a, b) != hop(b, a) for most
        // pairs, so the per-edge direction handling is load-bearing.
        let mut g = CoreGraph::new();
        let cores: Vec<_> = (0..4).map(|i| g.add_core(format!("c{i}"))).collect();
        g.add_comm(cores[0], cores[1], 10.0).unwrap();
        g.add_comm(cores[1], cores[2], 20.0).unwrap();
        g.add_comm(cores[3], cores[0], 30.0).unwrap();
        g.add_comm(cores[2], cores[3], 5.0).unwrap();
        let ring: Vec<_> =
            (0..5).map(|i| (NodeId::new(i), NodeId::new((i + 1) % 5), 100.0)).collect();
        let mut links = ring;
        links.push((NodeId::new(0), NodeId::new(3), 100.0));
        let t = Topology::custom(5, links).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        assert_ne!(
            p.topology().hop_distance(NodeId::new(1), NodeId::new(0)),
            p.topology().hop_distance(NodeId::new(0), NodeId::new(1)),
            "test premise: distances are asymmetric"
        );
        let mut m = Mapping::new(5);
        for (i, &c) in cores.iter().enumerate() {
            m.place(c, NodeId::new(i));
        }
        assert_deltas_match(&p, &m);
    }

    #[test]
    fn swap_delta_of_identical_nodes_is_zero() {
        let p = random_problem(1);
        let ctx = EvalContext::new(&p);
        let m = crate::initialize(&p);
        assert_eq!(ctx.swap_delta(&m, NodeId::new(2), NodeId::new(2)), CostDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "no path between")]
    fn disconnected_custom_topology_panics_like_uncached_router() {
        use noc_graph::{CoreGraph, NodeId};
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 10.0).unwrap();
        g.add_comm(b, a, 10.0).unwrap();
        // Only a one-way link: b -> a has no route, and the quadrant
        // builder reports it the same way route_min_paths does.
        let t = Topology::custom(2, [(NodeId::new(0), NodeId::new(1), 100.0)]).unwrap();
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(2);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(1));
        let mut ctx = EvalContext::new(&p);
        let _ = ctx.route_min_loads(&m);
    }
}
