//! Multi-commodity-flow formulations (Equations 5, 8, 9, 10).
//!
//! Three linear programs over per-commodity link flows `x^k_{i,j} ≥ 0`:
//!
//! * **MCF1** ([`McfKind::SlackMin`], Equation 8) — minimize the total
//!   capacity-violation slack `Σ s_{i,j}`; a zero optimum proves the
//!   mapping can meet all bandwidth constraints with split traffic.
//! * **MCF2** ([`McfKind::FlowMin`], Equation 9) — minimize the total flow
//!   `Σ x^k_{i,j}` (communication cost) subject to hard capacities.
//! * **Min-max load** ([`McfKind::MinMaxLoad`]) — minimize the uniform
//!   capacity `λ` such that every link load is ≤ λ; this computes the
//!   "minimum bandwidth needed" metric of the paper's Figure 4.
//!
//! Flow conservation (Equation 5) is imposed **per commodity** at every
//! node (the split-traffic routing tables require per-commodity flows; see
//! DESIGN.md §6 for the discussion of the paper's aggregated notation).
//! Restricting a commodity's variables to its quadrant DAG
//! ([`PathScope::Quadrant`]) yields the equal-hop-delay NMAPTM variant of
//! Equation 10; [`PathScope::AllPaths`] is the unrestricted NMAPTA.

use std::collections::BTreeMap;

use noc_graph::{LinkId, NodeId, QuadrantDag, Topology};
use noc_lp::{LinearProgram, Sense, SimplexOptions, SolveError, TableauSnapshot, VarId};

use crate::routing::{LinkLoads, RoutingTables, SplitRoute};
use crate::{Commodity, MapError, Mapping, MappingProblem, Result};

/// Which links each commodity may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathScope {
    /// Any link of the topology (NMAPTA: traffic split across all paths).
    AllPaths,
    /// Only the commodity's quadrant DAG — all paths minimal, equal hop
    /// delay (NMAPTM: split across minimum paths, Equation 10).
    Quadrant,
}

/// Which objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McfKind {
    /// MCF1: minimize total capacity-violation slack (Equation 8).
    SlackMin,
    /// MCF2: minimize total flow subject to capacities (Equation 9).
    FlowMin,
    /// Minimize the uniform link capacity λ needed by the mapping
    /// (capacities in the topology are ignored).
    MinMaxLoad,
}

/// Result of one MCF solve.
#[derive(Debug, Clone, PartialEq)]
pub struct McfSolution {
    /// The objective that was optimized.
    pub kind: McfKind,
    /// Optimal objective value: total slack (MCF1), total flow (MCF2) or
    /// minimal uniform capacity (min-max load).
    // lint: allow(f64-api) — the objective's unit depends on `kind`
    // (slack/flow/capacity), and MCF1 slack is legitimately negative when
    // the instance is infeasible; no single quantity type fits.
    pub objective: f64,
    /// Aggregate link loads of the optimal flow.
    pub link_loads: LinkLoads,
    /// Per-commodity routing tables obtained by flow decomposition.
    pub tables: RoutingTables,
}

/// Threshold below which a flow value is treated as zero when reading the
/// LP solution back (link loads, per-commodity flows) and during flow
/// decomposition (residual peeling in [`solve_mcf_for`]'s tables).
///
/// The value sits well above the simplex optimality tolerance (`1e-9`) so
/// solver round-off never materializes as phantom flow, and well below any
/// meaningful bandwidth (MB/s magnitudes in the paper's applications), so
/// real traffic is never dropped. Note the **sparse pivot's** zero test in
/// `noc-lp` is deliberately *not* this epsilon: it skips only exact `0.0`
/// multipliers, because skipping small-but-nonzero entries would change
/// the executed arithmetic and break bit-identity with the dense oracle
/// (DESIGN.md §19).
pub const FLOW_EPSILON: f64 = 1e-6;

/// Solves the chosen MCF program for `mapping`.
///
/// # Errors
///
/// * [`MapError::Lp`] wrapping [`SolveError::Infeasible`] — only possible
///   for [`McfKind::FlowMin`] when the capacities cannot carry the traffic
///   (MCF1 and min-max load are always feasible).
/// * Other [`MapError::Lp`] variants on solver failure.
///
/// # Panics
///
/// Panics if `mapping` is incomplete.
pub fn solve_mcf(
    problem: &MappingProblem,
    mapping: &Mapping,
    kind: McfKind,
    scope: PathScope,
) -> Result<McfSolution> {
    solve_mcf_for(problem.topology(), &problem.commodities(mapping), kind, scope)
}

/// Solves the chosen MCF program for an explicit commodity set — the
/// general entry point behind [`solve_mcf`]. Passing a single commodity
/// computes per-flow link sizing (how much capacity one flow needs on each
/// link under optimal splitting), used by the DSP design flow of
/// Section 7.2.
///
/// The returned [`RoutingTables`] are indexed by the commodities' [core
/// graph edge ids](noc_graph::EdgeId), so tables from disjoint subsets can
/// be merged.
///
/// # Errors
///
/// Same conditions as [`solve_mcf`].
pub fn solve_mcf_for(
    topology: &Topology,
    commodities: &[Commodity],
    kind: McfKind,
    scope: PathScope,
) -> Result<McfSolution> {
    solve_mcf_inner(topology, commodities, kind, scope, None, None, false)
        .map(|(solution, _, _)| solution)
}

/// [`solve_mcf_for`] under explicit simplex options — the seam benches use
/// to time the sparse pivot against its dense oracle
/// ([`noc_lp::PivotMode::Dense`]) on identical MCF instances. Solutions
/// are bit-identical across pivot modes; only the wall time differs.
///
/// # Errors
///
/// Same conditions as [`solve_mcf`], plus
/// [`SolveError::InvalidOptions`] when `options` fails validation.
pub fn solve_mcf_for_with_options(
    topology: &Topology,
    commodities: &[Commodity],
    kind: McfKind,
    scope: PathScope,
    options: SimplexOptions,
) -> Result<McfSolution> {
    solve_mcf_inner(topology, commodities, kind, scope, None, Some(options), false)
        .map(|(solution, _, _)| solution)
}

/// Warm-start state carried across the bandwidth axis of a sweep: the
/// final simplex tableau of the previous capacity point (a
/// [`TableauSnapshot`]) plus enough fingerprint to refuse reuse across
/// different formulations.
///
/// Produced and consumed by [`solve_mcf_warm`]. Reuse is only valid when
/// the topology *structure* and commodity set are unchanged and only link
/// capacities (constraint right-hand sides) moved; anything else reports a
/// basis mismatch inside `noc-lp` and falls back to a cold solve. The
/// snapshot restart rebuilds the RHS column from the stored basis inverse
/// instead of refactorizing the basis, and the state is consumed — the
/// tableau moves through the solve — so a warm hit costs only the RHS
/// recompute plus a few dual pivots, with no tableau-sized copies.
#[derive(Debug, Clone, PartialEq)]
pub struct McfWarmState {
    snapshot: TableauSnapshot,
    kind: McfKind,
    scope: PathScope,
    /// Pivot count of the lineage's cold solve — the baseline for
    /// pivots-saved estimates.
    cold_pivots: usize,
}

impl McfWarmState {
    /// Heap bytes held by the captured tableau — what carrying the state
    /// across a sweep costs in memory.
    pub fn memory_bytes(&self) -> usize {
        self.snapshot.memory_bytes()
    }
}

/// Pivot counters from one [`solve_mcf_warm`] call, for probe reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McfSolveStats {
    /// Simplex pivots of this solve (dual + cleanup pivots when warm).
    pub pivots: usize,
    /// Phase-1 pivots (zero when the solve was warm-started).
    pub phase1_pivots: usize,
    /// True when the previous basis was reused (no two-phase solve ran).
    pub warm_hit: bool,
    /// Estimated pivots avoided versus the lineage's cold solve: the cold
    /// baseline minus this solve's total pivots (saturating at zero).
    pub pivots_saved: usize,
}

/// [`solve_mcf_for`] with dual-simplex warm starting: when `previous` holds
/// the tableau snapshot of a structurally identical instance (same topology
/// wiring, commodities, `kind` and `scope`; only link capacities changed),
/// the LP re-optimizes from that tableau instead of running a cold
/// two-phase solve. The state is consumed — a sweep moves one tableau
/// along the whole capacity axis without copying it. Any mismatch silently
/// falls back to the cold path, so the result is always available;
/// [`McfSolveStats::warm_hit`] reports which path ran.
///
/// # Errors
///
/// Same conditions as [`solve_mcf`].
pub fn solve_mcf_warm(
    topology: &Topology,
    commodities: &[Commodity],
    kind: McfKind,
    scope: PathScope,
    previous: Option<McfWarmState>,
) -> Result<(McfSolution, McfWarmState, McfSolveStats)> {
    let (solution, state, stats) =
        solve_mcf_inner(topology, commodities, kind, scope, previous, None, true)?;
    Ok((solution, state.expect("capture was requested"), stats))
}

fn solve_mcf_inner(
    topology: &Topology,
    commodities: &[Commodity],
    kind: McfKind,
    scope: PathScope,
    previous: Option<McfWarmState>,
    options: Option<SimplexOptions>,
    capture: bool,
) -> Result<(McfSolution, Option<McfWarmState>, McfSolveStats)> {
    let mut model = McfModel::build(topology, commodities, kind, scope);
    if let Some(options) = options {
        model.lp.set_options(options);
    }
    let reusable = previous.filter(|w| w.kind == kind && w.scope == scope);
    // Any warm-path failure — snapshot mismatch, iteration limit, even an
    // infeasibility verdict — falls back to the cold solve, so every
    // returned value *and every error* comes from either the cold path or
    // a uniqueness-guarded warm re-optimization. Sweeps with warm starting
    // on and off therefore agree error-for-error, not just value-for-value.
    // The state is consumed: a hit moves the tableau through the dual
    // simplex without copying it, and any fallback recaptures from cold.
    let warm = reusable.and_then(|w| {
        let McfWarmState { snapshot, cold_pivots, .. } = w;
        match model.lp.resolve_with_snapshot(snapshot) {
            Ok(solved) => Some((solved, cold_pivots)),
            Err(_) => None,
        }
    });
    let (solution, snapshot, stats, cold_pivots) = match warm {
        Some(((solution, snapshot, stats), cold_pivots)) => {
            (solution, Some(snapshot), stats, cold_pivots)
        }
        None if capture => {
            // Only the warm-chaining entry point pays for a snapshot
            // capture; plain solves keep the cheaper basis-only path.
            let (solution, snapshot, stats) =
                model.lp.solve_with_snapshot().map_err(MapError::from)?;
            let pivots = stats.pivots;
            (solution, Some(snapshot), stats, pivots)
        }
        None => {
            let (solution, _, stats) = model.lp.solve_with_basis().map_err(MapError::from)?;
            let pivots = stats.pivots;
            (solution, None, stats, pivots)
        }
    };
    let mcf_stats = McfSolveStats {
        pivots: stats.pivots,
        phase1_pivots: stats.phase1_pivots,
        warm_hit: stats.warm_start,
        pivots_saved: if stats.warm_start {
            cold_pivots.saturating_sub(stats.pivots + stats.refactor_pivots)
        } else {
            0
        },
    };
    let next = snapshot.map(|snapshot| McfWarmState { snapshot, kind, scope, cold_pivots });

    let mut link_loads = LinkLoads::zeros(topology.link_count());
    let mut flows: Vec<BTreeMap<LinkId, f64>> = vec![BTreeMap::new(); commodities.len()];
    for (k, vars) in model.flow_vars.iter().enumerate() {
        for &(link, var) in vars {
            let v = solution.value(var);
            if v > FLOW_EPSILON {
                link_loads.add(link, v);
                flows[k].insert(link, v);
            }
        }
    }

    let tables = decompose_flows(topology, commodities, flows);
    Ok((McfSolution { kind, objective: solution.objective, link_loads, tables }, next, mcf_stats))
}

/// Checks whether a mapping admits a feasible split-traffic routing:
/// convenience wrapper returning the MCF1 slack (0 = feasible).
// lint: allow(f64-api) — slack is signed (negative = infeasible), outside
// the non-negative quantity range.
pub fn mcf1_slack(problem: &MappingProblem, mapping: &Mapping, scope: PathScope) -> Result<f64> {
    Ok(solve_mcf(problem, mapping, McfKind::SlackMin, scope)?.objective)
}

/// The assembled LP plus the variable layout needed to read flows back.
struct McfModel {
    lp: LinearProgram,
    /// Per commodity: `(link, variable)` pairs in scope.
    flow_vars: Vec<Vec<(LinkId, VarId)>>,
}

impl McfModel {
    fn build(
        topology: &Topology,
        commodities: &[Commodity],
        kind: McfKind,
        scope: PathScope,
    ) -> Self {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let flow_cost = match kind {
            McfKind::FlowMin => 1.0,
            McfKind::SlackMin | McfKind::MinMaxLoad => 0.0,
        };

        // Flow variables, restricted to each commodity's scope.
        let mut flow_vars: Vec<Vec<(LinkId, VarId)>> = Vec::with_capacity(commodities.len());
        for (k, c) in commodities.iter().enumerate() {
            let mut vars = Vec::new();
            if !c.value.is_zero() && c.source != c.dest {
                let links: Vec<LinkId> = match scope {
                    PathScope::AllPaths => topology.links().map(|(id, _)| id).collect(),
                    PathScope::Quadrant => {
                        QuadrantDag::new(topology, c.source, c.dest).links().to_vec()
                    }
                };
                for link in links {
                    let var = lp.add_variable(format!("x_{k}_{link}"), flow_cost);
                    vars.push((link, var));
                }
            }
            flow_vars.push(vars);
        }

        // Per-link variable lists for the capacity rows.
        let mut per_link: Vec<Vec<VarId>> = vec![Vec::new(); topology.link_count()];
        for vars in &flow_vars {
            for &(link, var) in vars {
                per_link[link.index()].push(var);
            }
        }

        // Capacity constraints (Inequality 3 with the kind-specific twist).
        match kind {
            McfKind::SlackMin => {
                for (id, link) in topology.links() {
                    let vars = &per_link[id.index()];
                    if vars.is_empty() {
                        continue;
                    }
                    let slack = lp.add_variable(format!("s_{id}"), 1.0);
                    let mut terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                    terms.push((slack, -1.0));
                    lp.add_le(&terms, link.capacity.to_f64());
                }
            }
            McfKind::FlowMin => {
                for (id, link) in topology.links() {
                    let vars = &per_link[id.index()];
                    if vars.is_empty() {
                        continue;
                    }
                    let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                    lp.add_le(&terms, link.capacity.to_f64());
                }
            }
            McfKind::MinMaxLoad => {
                let lambda = lp.add_variable("lambda", 1.0);
                for (id, _) in topology.links() {
                    let vars = &per_link[id.index()];
                    if vars.is_empty() {
                        continue;
                    }
                    let mut terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                    terms.push((lambda, -1.0));
                    lp.add_le(&terms, 0.0);
                }
            }
        }

        // Flow conservation (Equation 5), per commodity, per node.
        // The destination row is the negative sum of the others, so it is
        // dropped to keep the basis smaller.
        for (k, c) in commodities.iter().enumerate() {
            if flow_vars[k].is_empty() {
                continue;
            }
            // node -> terms
            let mut incident: BTreeMap<NodeId, Vec<(VarId, f64)>> = BTreeMap::new();
            for &(link, var) in &flow_vars[k] {
                let l = topology.link(link);
                incident.entry(l.src).or_default().push((var, 1.0));
                incident.entry(l.dst).or_default().push((var, -1.0));
            }
            for node in topology.nodes() {
                if node == c.dest {
                    continue;
                }
                let rhs = if node == c.source { c.value.to_f64() } else { 0.0 };
                match incident.get(&node) {
                    Some(terms) => lp.add_eq(terms, rhs),
                    None => {
                        debug_assert_eq!(rhs, 0.0, "source must touch scope links");
                    }
                }
            }
        }

        Self { lp, flow_vars }
    }
}

/// Decomposes per-commodity link flows into weighted paths (routing-table
/// form). Standard flow decomposition: repeatedly walk from the source
/// along positive-residual links to the destination, peel off the
/// bottleneck. Residual cycles (possible in non-optimal or slack solutions)
/// are discarded — they carry no source-to-destination traffic.
fn decompose_flows(
    topology: &Topology,
    commodities: &[Commodity],
    mut flows: Vec<BTreeMap<LinkId, f64>>,
) -> RoutingTables {
    // Tables are indexed by core-graph edge id, not by position in the
    // (possibly subset) commodity list.
    let table_len = commodities.iter().map(|c| c.edge.index() + 1).max().unwrap_or(0);
    let mut routes: Vec<Vec<SplitRoute>> = vec![Vec::new(); table_len];
    for (k, c) in commodities.iter().enumerate() {
        if c.value.is_zero() || c.source == c.dest {
            continue;
        }
        let slot = c.edge.index();
        let residual = &mut flows[k];
        let mut guard = 0usize;
        while guard < 10_000 {
            guard += 1;
            let Some(path) = positive_path(topology, residual, c.source, c.dest) else {
                break;
            };
            let bottleneck = path.iter().map(|l| residual[l]).fold(f64::INFINITY, f64::min);
            debug_assert!(bottleneck > 0.0);
            for l in &path {
                let v = residual.get_mut(l).expect("path uses residual links");
                *v -= bottleneck;
                if *v <= FLOW_EPSILON {
                    residual.remove(l);
                }
            }
            routes[slot].push(SplitRoute { links: path, fraction: bottleneck / c.value.to_f64() });
        }
        // Normalize round-off so fractions sum to exactly 1 when they are
        // already within tolerance of it.
        let total: f64 = routes[slot].iter().map(|r| r.fraction).sum();
        if total > 0.0 && (total - 1.0).abs() < 1e-3 {
            for r in &mut routes[slot] {
                r.fraction /= total;
            }
        }
    }
    RoutingTables::from_split_routes(routes)
}

/// Finds any source→dest path through links with positive residual flow
/// (BFS, deterministic by link order). Returns the link list.
fn positive_path(
    topology: &Topology,
    residual: &BTreeMap<LinkId, f64>,
    source: NodeId,
    dest: NodeId,
) -> Option<Vec<LinkId>> {
    let mut prev: Vec<Option<LinkId>> = vec![None; topology.node_count()];
    let mut seen = vec![false; topology.node_count()];
    seen[source.index()] = true;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(n) = queue.pop_front() {
        if n == dest {
            let mut path = Vec::new();
            let mut cursor = dest;
            while cursor != source {
                let link = prev[cursor.index()].expect("reached via a link");
                path.push(link);
                cursor = topology.link(link).src;
            }
            path.reverse();
            return Some(path);
        }
        for (id, link) in topology.out_links(n) {
            if !seen[link.dst.index()] && residual.get(&id).copied().unwrap_or(0.0) > FLOW_EPSILON {
                seen[link.dst.index()] = true;
                prev[link.dst.index()] = Some(id);
                queue.push_back(link.dst);
            }
        }
    }
    None
}

/// Converts an LP infeasibility into a clearer error for FlowMin callers.
pub(crate) fn is_infeasible(err: &MapError) -> bool {
    matches!(err, MapError::Lp(SolveError::Infeasible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};

    /// One 300 MB/s flow between adjacent corners of a 2x2 mesh whose links
    /// carry only 100 MB/s each: split routing is required (and sufficient:
    /// two link-disjoint paths of 100+... wait, 2x2 offers exactly 2
    /// disjoint paths between adjacent nodes: direct (1 hop) and around
    /// (3 hops) — 200 MB/s total on link-disjoint routes, but link loads
    /// can also share... direct 100 + around 100 = 200 < 300: infeasible;
    /// with 150 MB/s links it becomes feasible (150 + 150).
    fn one_flow_problem(link_cap: f64, value: f64) -> (MappingProblem, Mapping) {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, value).unwrap();
        let t = Topology::mesh(2, 2, link_cap);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(4);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(1));
        (p, m)
    }

    #[test]
    fn single_commodity_min_flow_uses_shortest_path() {
        let (p, m) = one_flow_problem(1000.0, 300.0);
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        // All 300 on the single 1-hop path: total flow = 300.
        assert!((sol.objective - 300.0).abs() < 1e-6, "objective {}", sol.objective);
        assert_eq!(sol.tables.routes_of(noc_graph::EdgeId::new(0)).len(), 1);
        assert!((sol.link_loads.max() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_forces_split() {
        let (p, m) = one_flow_problem(150.0, 300.0);
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        // 150 direct (1 hop) + 150 around (3 hops) = 600 total flow.
        assert!((sol.objective - 600.0).abs() < 1e-4, "objective {}", sol.objective);
        assert_eq!(sol.tables.routes_of(noc_graph::EdgeId::new(0)).len(), 2);
        assert!(sol.link_loads.within_capacity(p.topology()));
    }

    #[test]
    fn flow_min_detects_infeasible_capacities() {
        let (p, m) = one_flow_problem(100.0, 300.0);
        let err = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap_err();
        assert!(is_infeasible(&err), "expected infeasible, got {err:?}");
    }

    #[test]
    fn slack_min_measures_violation() {
        let (p, m) = one_flow_problem(100.0, 300.0);
        let sol = solve_mcf(&p, &m, McfKind::SlackMin, PathScope::AllPaths).unwrap();
        // Best split: 100 + 100 over the two disjoint routes leaves 100
        // excess; the cheapest placement of the excess adds 100 slack on
        // one link (e.g. 200 on the direct link).
        assert!((sol.objective - 100.0).abs() < 1e-4, "slack {}", sol.objective);
    }

    #[test]
    fn slack_is_zero_when_feasible() {
        let (p, m) = one_flow_problem(150.0, 300.0);
        assert!(mcf1_slack(&p, &m, PathScope::AllPaths).unwrap() < 1e-6);
        let (p, m) = one_flow_problem(300.0, 300.0);
        assert!(mcf1_slack(&p, &m, PathScope::AllPaths).unwrap() < 1e-6);
    }

    #[test]
    fn quadrant_scope_prevents_detours() {
        // Adjacent nodes: the quadrant is exactly the direct link, so a
        // 300 MB/s flow over 150 MB/s links has slack 150 under Quadrant
        // scope (cannot use the 3-hop detour) but 0 under AllPaths.
        let (p, m) = one_flow_problem(150.0, 300.0);
        let q = mcf1_slack(&p, &m, PathScope::Quadrant).unwrap();
        assert!((q - 150.0).abs() < 1e-4, "quadrant slack {q}");
        let a = mcf1_slack(&p, &m, PathScope::AllPaths).unwrap();
        assert!(a < 1e-6);
    }

    #[test]
    fn min_max_load_balances_two_paths() {
        // 2x2 mesh, diagonal flow of 200: two minimal paths, perfect split
        // gives 100 per link.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 200.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 1e9)).unwrap();
        let mut m = Mapping::new(4);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(3));
        let sol = solve_mcf(&p, &m, McfKind::MinMaxLoad, PathScope::Quadrant).unwrap();
        assert!((sol.objective - 100.0).abs() < 1e-6, "lambda {}", sol.objective);
        assert!((sol.link_loads.max() - 100.0).abs() < 1e-4);
    }

    #[test]
    fn quadrant_routes_have_equal_hops() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 500.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(3, 3, 1e9)).unwrap();
        let mut m = Mapping::new(9);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(8)); // opposite corner, 4 hops
        let sol = solve_mcf(&p, &m, McfKind::MinMaxLoad, PathScope::Quadrant).unwrap();
        for r in sol.tables.routes_of(noc_graph::EdgeId::new(0)) {
            assert_eq!(r.links.len(), 4, "NMAPTM path not minimal");
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let (p, m) = one_flow_problem(150.0, 300.0);
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        let total: f64 =
            sol.tables.routes_of(noc_graph::EdgeId::new(0)).iter().map(|r| r.fraction).sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions sum to {total}");
    }

    #[test]
    fn loads_match_decomposed_tables() {
        let (p, m) = one_flow_problem(150.0, 300.0);
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        let recomputed = sol.tables.link_loads(p.topology(), &p.commodities(&m));
        for (id, _) in p.topology().links() {
            assert!(
                (sol.link_loads.get(id) - recomputed.get(id)).abs() < 1e-4,
                "link {id}: lp={} tables={}",
                sol.link_loads.get(id),
                recomputed.get(id)
            );
        }
    }

    #[test]
    fn zero_value_commodities_are_skipped() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_comm(a, b, 0.0).unwrap();
        g.add_comm(b, c, 100.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 1e9)).unwrap();
        let mut m = Mapping::new(4);
        m.place(a, NodeId::new(0));
        m.place(b, NodeId::new(1));
        m.place(c, NodeId::new(3));
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        assert!(sol.tables.routes_of(noc_graph::EdgeId::new(0)).is_empty());
        assert_eq!(sol.tables.routes_of(noc_graph::EdgeId::new(1)).len(), 1);
        assert!((sol.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn multi_commodity_sharing_respects_capacity() {
        // Two 100 MB/s flows share a 2x1 mesh with a single channel of
        // capacity 150: FlowMin is infeasible; SlackMin reports 50.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(c, d, 100.0).unwrap();
        let t = Topology::mesh(2, 2, 150.0);
        let p = MappingProblem::new(g, t).unwrap();
        let mut m = Mapping::new(4);
        // Both flows forced across the same column pair: a,c on column 0.
        m.place(a, NodeId::new(0));
        m.place(c, NodeId::new(2));
        m.place(b, NodeId::new(1));
        m.place(d, NodeId::new(3));
        // Feasible: each flow has its own row channel. Loads stay 100.
        let sol = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
        assert!(sol.link_loads.within_capacity(p.topology()));
        assert!((sol.objective - 200.0).abs() < 1e-4);
    }
}

#[cfg(test)]
mod warm_start_tests {
    use noc_graph::{EdgeId, RandomGraphConfig, Topology};
    use noc_units::Mbps;

    use super::*;

    /// Warm and cold solves must agree on the *entire* solution — the
    /// objective, the link loads and the decomposed per-commodity routing
    /// tables — across a shrinking-capacity sweep, on seeded random
    /// graphs. This is the identity contract that lets `--warm-lp` keep
    /// sweep outputs byte-identical.
    #[test]
    fn warm_and_cold_solves_are_identical_across_a_capacity_sweep() {
        for seed in [1u64, 7, 42] {
            let graph = RandomGraphConfig { cores: 10, ..Default::default() }.generate(seed);
            for kind in [McfKind::FlowMin, McfKind::SlackMin] {
                let mut warm: Option<McfWarmState> = None;
                for cap in [5000.0, 4000.0, 3000.0, 2500.0, 2000.0, 1500.0, 1200.0, 1000.0] {
                    let problem =
                        MappingProblem::new(graph.clone(), Topology::mesh(4, 3, cap)).unwrap();
                    let mapping = crate::initialize(&problem);
                    let commodities = problem.commodities(&mapping);
                    let scope = PathScope::AllPaths;
                    let cold = solve_mcf_for(problem.topology(), &commodities, kind, scope);
                    let warmed =
                        solve_mcf_warm(problem.topology(), &commodities, kind, scope, warm.take());
                    match (cold, warmed) {
                        (Ok(c), Ok((w, next, stats))) => {
                            assert_eq!(c, w, "seed {seed} {kind:?} cap {cap}");
                            if stats.warm_hit {
                                assert_eq!(stats.phase1_pivots, 0, "warm solves skip phase 1");
                            }
                            warm = Some(next);
                        }
                        (Err(ce), Err(we)) => {
                            assert_eq!(
                                is_infeasible(&ce),
                                is_infeasible(&we),
                                "seed {seed} {kind:?} cap {cap}"
                            );
                            warm = None;
                        }
                        (c, w) => {
                            panic!("seed {seed} {kind:?} cap {cap}: cold {c:?} vs warm {w:?}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn warm_state_is_not_reused_across_kinds_or_scopes() {
        let graph = RandomGraphConfig { cores: 8, ..Default::default() }.generate(3);
        let problem = MappingProblem::new(graph, Topology::mesh(3, 3, 5_000.0)).unwrap();
        let mapping = crate::initialize(&problem);
        let commodities = problem.commodities(&mapping);
        let (_, state, first) = solve_mcf_warm(
            problem.topology(),
            &commodities,
            McfKind::FlowMin,
            PathScope::AllPaths,
            None,
        )
        .unwrap();
        assert!(!first.warm_hit);
        let (_, _, cross_kind) = solve_mcf_warm(
            problem.topology(),
            &commodities,
            McfKind::SlackMin,
            PathScope::AllPaths,
            Some(state.clone()),
        )
        .unwrap();
        assert!(!cross_kind.warm_hit, "basis must not cross formulations");
        let (_, _, cross_scope) = solve_mcf_warm(
            problem.topology(),
            &commodities,
            McfKind::FlowMin,
            PathScope::Quadrant,
            Some(state),
        )
        .unwrap();
        assert!(!cross_scope.warm_hit, "basis must not cross path scopes");
    }

    /// In the capacity-binding regime a single flow over two unequal-length
    /// paths has a *unique* optimal split, so the uniqueness guard admits
    /// the warm answer and the dual simplex actually serves the sweep.
    #[test]
    fn warm_hits_in_binding_capacity_regimes() {
        use noc_graph::CoreGraph;
        let instance = |cap: f64| {
            let mut g = CoreGraph::new();
            let a = g.add_core("a");
            let b = g.add_core("b");
            g.add_comm(a, b, 300.0).unwrap();
            let p = MappingProblem::new(g, Topology::mesh(2, 2, cap)).unwrap();
            let mut m = Mapping::new(4);
            m.place(a, NodeId::new(0));
            m.place(b, NodeId::new(1));
            (p, m)
        };
        let mut warm: Option<McfWarmState> = None;
        let mut hits = 0usize;
        for cap in [1000.0, 290.0, 250.0, 200.0, 160.0] {
            let (p, m) = instance(cap);
            let commodities = p.commodities(&m);
            let cold =
                solve_mcf_for(p.topology(), &commodities, McfKind::FlowMin, PathScope::AllPaths)
                    .unwrap();
            let (w, next, stats) = solve_mcf_warm(
                p.topology(),
                &commodities,
                McfKind::FlowMin,
                PathScope::AllPaths,
                warm.take(),
            )
            .unwrap();
            assert_eq!(cold, w, "cap {cap}");
            if stats.warm_hit {
                hits += 1;
                assert_eq!(stats.phase1_pivots, 0);
            }
            warm = Some(next);
        }
        assert!(hits >= 2, "expected warm hits in the binding regime, got {hits}");
    }

    /// Pins [`FLOW_EPSILON`] as the decomposition boundary: residual flow
    /// exactly at the threshold is treated as zero, flow above it routes.
    #[test]
    fn flow_epsilon_is_the_decomposition_boundary() {
        let t = Topology::mesh(2, 2, 1e9);
        let (direct, _) = t
            .out_links(NodeId::new(0))
            .find(|(_, l)| l.dst == NodeId::new(1))
            .expect("adjacent link");
        let commodity = |v: f64| Commodity {
            edge: EdgeId::new(0),
            value: Mbps::new(v).unwrap(),
            source: NodeId::new(0),
            dest: NodeId::new(1),
        };
        let above = 2.0 * FLOW_EPSILON;
        let tables =
            decompose_flows(&t, &[commodity(above)], vec![BTreeMap::from([(direct, above)])]);
        assert_eq!(tables.routes_of(EdgeId::new(0)).len(), 1, "above the threshold must route");
        let tables = decompose_flows(
            &t,
            &[commodity(FLOW_EPSILON)],
            vec![BTreeMap::from([(direct, FLOW_EPSILON)])],
        );
        assert!(tables.routes_of(EdgeId::new(0)).is_empty(), "at the threshold is treated as zero");
    }
}

#[cfg(test)]
mod determinism_tests {
    use noc_graph::{RandomGraphConfig, Topology};

    use super::*;

    /// Repeated solves of the same MCF instance must produce identical
    /// solutions — objective, link loads *and* decomposed routing tables.
    /// This is what the `BTreeMap` flow/incidence containers buy: with
    /// hash maps the flow decomposition would visit links in unspecified
    /// order and could emit the same flow split as differently-ordered
    /// (or differently-tie-broken) route lists between runs.
    #[test]
    fn repeated_solves_are_identical() {
        let graph = RandomGraphConfig { cores: 12, ..Default::default() }.generate(5);
        let problem =
            MappingProblem::new(graph, Topology::mesh(4, 3, 5_000.0)).expect("12 cores fit 4x3");
        let mapping = crate::initialize(&problem);
        for kind in [McfKind::FlowMin, McfKind::SlackMin, McfKind::MinMaxLoad] {
            let first = solve_mcf(&problem, &mapping, kind, PathScope::AllPaths).unwrap();
            for run in 1..4 {
                let again = solve_mcf(&problem, &mapping, kind, PathScope::AllPaths).unwrap();
                assert_eq!(again, first, "{kind:?} diverged on run {run}");
            }
        }
    }
}

#[cfg(test)]
mod failure_injection_tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};
    use noc_lp::SolveError;

    /// LP failures other than infeasibility must propagate as
    /// `MapError::Lp`, not be silently converted to `maxvalue`.
    #[test]
    fn iteration_limit_propagates_from_split_mapper() {
        // A problem large enough that a 1-pivot budget cannot solve it.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(b, c, 100.0).unwrap();
        let problem = MappingProblem::new(g, Topology::mesh(2, 2, 1e9)).unwrap();
        let mapping = crate::initialize(&problem);

        // Build the same MCF2 model by hand with a crippled pivot budget.
        let commodities = problem.commodities(&mapping);
        let model = McfModel::build(
            problem.topology(),
            &commodities,
            McfKind::FlowMin,
            PathScope::AllPaths,
        );
        let mut lp = model.lp;
        lp.set_options(noc_lp::SimplexOptions { max_iterations: 1, ..Default::default() });
        assert_eq!(lp.solve().unwrap_err(), SolveError::IterationLimit);
        // And the conversion path used by the mappers:
        let err: MapError = SolveError::IterationLimit.into();
        assert!(!is_infeasible(&err));
        assert!(err.to_string().contains("iteration limit"));
    }
}
