//! Error type shared by the mapping algorithms.

use std::error::Error;
use std::fmt;

use noc_lp::SolveError;

/// Errors produced by problem construction and the mapping algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The application has more cores than the topology has nodes; the
    /// one-to-one mapping function of Equation 1 requires `|V| ≤ |U|`.
    TooManyCores {
        /// Number of cores in the application.
        cores: usize,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// The application graph has no cores.
    EmptyProblem,
    /// A commodity's endpoints are disconnected in the topology, so no
    /// route exists regardless of the placement.
    Unroutable {
        /// Index of the offending commodity (core-graph edge index).
        commodity: usize,
    },
    /// The topology is not a grid (mesh/torus of any rank), but a
    /// grid-only routine (e.g. dimension-ordered routing) was requested.
    /// Carries the offending topology kind's description (e.g. `custom`)
    /// so the message can tell a custom fabric from a future unsupported
    /// family. Replaces the old `MeshRequired` variant, which could not.
    GridRequired {
        /// [`noc_graph::TopologyKind::describe`] of the offending topology.
        found: String,
    },
    /// Mapper options failed their `check()` (e.g.
    /// [`crate::SinglePathOptions::check`]): the entry points validate
    /// instead of silently clamping.
    InvalidOptions(String),
    /// An MCF linear program failed to solve.
    Lp(SolveError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::TooManyCores { cores, nodes } => {
                write!(f, "application has {cores} cores but the topology only has {nodes} nodes")
            }
            MapError::EmptyProblem => write!(f, "application core graph is empty"),
            MapError::Unroutable { commodity } => {
                write!(f, "commodity d{commodity} has no route in the topology")
            }
            MapError::GridRequired { found } => {
                write!(f, "this routine requires a grid (mesh/torus) topology, got {found}")
            }
            MapError::InvalidOptions(message) => {
                write!(f, "invalid mapper options: {message}")
            }
            MapError::Lp(e) => write!(f, "multi-commodity flow LP failed: {e}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for MapError {
    fn from(e: SolveError) -> Self {
        MapError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MapError::TooManyCores { cores: 20, nodes: 16 };
        assert_eq!(e.to_string(), "application has 20 cores but the topology only has 16 nodes");
        assert!(MapError::Lp(SolveError::Infeasible).to_string().contains("infeasible"));
        let e = MapError::GridRequired { found: "custom".into() };
        assert_eq!(e.to_string(), "this routine requires a grid (mesh/torus) topology, got custom");
    }

    #[test]
    fn lp_errors_convert_and_chain() {
        let e: MapError = SolveError::Unbounded.into();
        assert_eq!(e, MapError::Lp(SolveError::Unbounded));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&MapError::EmptyProblem).is_none());
    }
}
