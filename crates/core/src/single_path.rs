//! `mappingwithsinglepath()` — Section 5 of the paper.
//!
//! Three phases:
//! 1. [`initialize`] builds a constructive placement.
//! 2. The candidate placement is evaluated by the `shortestpath()` routine:
//!    load-balanced minimal-path routing ([`routing::route_min_paths`])
//!    followed by the bandwidth check of Inequality 3; feasible mappings
//!    score their Equation-7 communication cost, infeasible ones score
//!    `maxvalue` (here `f64::INFINITY`).
//! 3. Pairwise-swap improvement: for every pair of mesh positions the swap
//!    is evaluated and the best mapping found so far is committed after
//!    each inner scan, exactly as in the paper's pseudocode.

use noc_graph::NodeId;
use noc_units::{HopMbps, Score};

use crate::routing::{self, CommodityPath, LinkLoads, RoutingTables};
use crate::{initialize, EvalContext, MapError, Mapping, MappingProblem, Result};

/// Tuning knobs for [`map_single_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePathOptions {
    /// Number of full pairwise-swap sweeps per restart. The paper performs
    /// one; additional passes squeeze out further gains at linear cost.
    /// Must be at least 1 ([`SinglePathOptions::check`]).
    pub passes: usize,
    /// Number of deterministic restarts. Restart `r > 0` relocates the
    /// seed placement to a different anchor node before the swap loop, so
    /// the search explores several basins (an extension over the paper's
    /// single descent; `restarts: 1` reproduces the paper exactly).
    /// Must be at least 1 ([`SinglePathOptions::check`]).
    pub restarts: usize,
}

impl Default for SinglePathOptions {
    fn default() -> Self {
        Self { passes: 2, restarts: 8 }
    }
}

impl SinglePathOptions {
    /// The paper's literal configuration: one descent, one sweep.
    pub fn paper_exact() -> Self {
        Self { passes: 1, restarts: 1 }
    }

    /// Checks the options, returning the first violation as a message —
    /// the single source of the option constraints (mirrors
    /// [`noc_sim` `SimConfig::check`][simcheck]; the `.dse` spec parser
    /// rejects invalid configurations up front with the same predicate,
    /// and the mapping entry points return [`MapError::InvalidOptions`]
    /// instead of silently clamping).
    ///
    /// [simcheck]: https://docs.rs/noc-sim
    ///
    /// # Errors
    ///
    /// A human-readable message when `passes` or `restarts` is zero.
    pub fn check(&self) -> std::result::Result<(), String> {
        if self.passes == 0 {
            return Err("passes must be at least 1 (the paper performs one sweep)".into());
        }
        if self.restarts == 0 {
            return Err("restarts must be at least 1 (the paper runs one descent)".into());
        }
        Ok(())
    }
}

/// Inner evaluation strategy of the pairwise-swap descent. Both kernels
/// produce **bit-identical** outcomes — same mappings, costs, tie-breaks
/// and evaluation counts (pinned by the `swap_delta_identity` integration
/// suite); they differ only in how much work a *rejected* candidate
/// costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapKernel {
    /// Score every candidate with the full O(E) Equation-7 scan of
    /// [`EvalContext::evaluate`] — the paper-literal reference path.
    FullRecompute,
    /// Prefilter each candidate with the O(deg) incremental
    /// [`EvalContext::swap_delta`]; the full evaluation runs only when
    /// the delta (minus a conservative floating-point margin) says the
    /// candidate could beat the incumbent. Since rejected candidates
    /// dominate a descent pass, this skips almost every O(E) scan.
    #[default]
    DeltaGated,
}

/// Relative width of the delta-gate safety margin: a candidate is skipped
/// only when its estimated cost clears the incumbent by more than this
/// fraction of the magnitudes involved. Summing a few hundred `bw × hops`
/// terms keeps relative rounding error near 1e-13, so 1e-9 is orders of
/// magnitude conservative — the gate can only *pass* extra candidates
/// (harmless: the full evaluation re-rejects them), never skip a winner.
const DELTA_GATE_MARGIN: f64 = 1e-9;

/// Result of [`map_single_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePathOutcome {
    /// The best placement found.
    pub mapping: Mapping,
    /// Equation-7 communication cost of `mapping` (hops × bandwidth).
    pub comm_cost: HopMbps,
    /// Whether the routed traffic satisfies every link capacity.
    pub feasible: bool,
    /// The single-path route of each commodity (commodity order).
    pub paths: Vec<CommodityPath>,
    /// Aggregate link loads of `paths`.
    pub link_loads: LinkLoads,
    /// Source-routing tables equivalent to `paths`.
    pub tables: RoutingTables,
    /// Number of candidate placements evaluated (diagnostics).
    pub evaluations: usize,
}

/// Runs NMAP with single minimum-path routing (the paper's
/// `mappingwithsinglepath()` routine).
///
/// # Errors
///
/// Propagates [`crate::MapError::Unroutable`] from the router on
/// disconnected custom topologies.
pub fn map_single_path(
    problem: &MappingProblem,
    options: &SinglePathOptions,
) -> Result<SinglePathOutcome> {
    map_single_path_with(&mut EvalContext::new(problem), options)
}

/// [`map_single_path`] driven through a caller-owned [`EvalContext`], so
/// repeated runs on the same problem (e.g. option sweeps) share the
/// quadrant-DAG cache and scratch buffers across calls in addition to the
/// sharing every single call's restarts already get. Results are
/// identical to [`map_single_path`].
///
/// # Errors
///
/// Same conditions as [`map_single_path`].
pub fn map_single_path_with(
    ctx: &mut EvalContext<'_>,
    options: &SinglePathOptions,
) -> Result<SinglePathOutcome> {
    map_single_path_kernel(ctx, options, SwapKernel::default())
}

/// [`map_single_path_with`] with an explicit descent [`SwapKernel`].
/// Outcomes are bit-identical across kernels; this entry point exists for
/// the equivalence tests and the `swap_delta` criterion benchmarks that
/// pin and measure exactly that.
///
/// # Errors
///
/// [`MapError::InvalidOptions`] when `options` fail
/// [`SinglePathOptions::check`]; otherwise the same conditions as
/// [`map_single_path`].
pub fn map_single_path_kernel(
    ctx: &mut EvalContext<'_>,
    options: &SinglePathOptions,
    kernel: SwapKernel,
) -> Result<SinglePathOutcome> {
    options.check().map_err(MapError::InvalidOptions)?;
    let problem = ctx.problem();
    let node_count = problem.topology().node_count();
    let restarts = options.restarts;
    let mut evaluations = 0usize;

    let seed = initialize(problem);
    let mut best_cost = Score::INFEASIBLE;
    let mut best: Option<Mapping> = None;

    for restart in 0..restarts {
        // Anchor the seed's content at a different node each restart so the
        // descent starts in a different basin; restart 0 is the paper's
        // untouched initialize() placement.
        let mut placed = seed.clone();
        if restart > 0 {
            let anchor = NodeId::new((restart * node_count) / restarts);
            let origin = seed.assignments().next().map(|(_, node)| node).unwrap_or(anchor);
            placed.swap_nodes(origin, anchor);
        }
        let (cost, mapping) = swap_descent(ctx, placed, options.passes, kernel, &mut evaluations)?;
        if cost < best_cost || best.is_none() {
            best_cost = cost;
            best = Some(mapping);
        }
    }
    let best = best.expect("at least one restart ran");

    // Final full evaluation of the winner.
    let (paths, link_loads) = routing::route_min_paths(problem, &best)?;
    let feasible = link_loads.within_capacity(problem.topology());
    let comm_cost = problem.comm_cost(&best);
    let tables = RoutingTables::from_single_paths(&paths);
    Ok(SinglePathOutcome {
        mapping: best,
        comm_cost,
        feasible,
        paths,
        link_loads,
        tables,
        evaluations,
    })
}

/// One multi-pass pairwise-swap descent (the paper's improvement loop).
///
/// The `shortestpath()` score of each candidate is computed through the
/// shared [`EvalContext`] — cached quadrant DAGs, reused scratch buffers,
/// and the same lazy-feasibility shortcut as always: candidates whose
/// placement-only Equation-7 cost cannot beat the incumbent skip the
/// expensive routing-based capacity check.
///
/// Under [`SwapKernel::DeltaGated`] a second, cheaper gate runs first:
/// the O(deg) [`EvalContext::swap_delta`] estimates the candidate cost as
/// `cost(placed) + delta`, and candidates that cannot beat the incumbent
/// even after a conservative rounding margin skip the candidate clone and
/// the O(E) scan entirely. Every candidate still counts one evaluation —
/// the gate changes what an evaluation *costs*, not which candidates are
/// considered — and a gated-out candidate is exactly one `evaluate` would
/// have scored `INFINITY` without routing, so outcomes are bit-identical.
fn swap_descent(
    ctx: &mut EvalContext<'_>,
    mut placed: Mapping,
    passes: usize,
    kernel: SwapKernel,
    evaluations: &mut usize,
) -> Result<(Score, Mapping)> {
    let node_count = ctx.problem().topology().node_count();
    *evaluations += 1;
    let mut best_cost = ctx.evaluate(&placed, Score::INFEASIBLE)?;
    let mut best = placed.clone();
    // Exact Equation-7 cost of `placed` — the base the delta gate adds to.
    // Kept bit-exact: on commit it is the accepted candidate's evaluate()
    // score, which *is* comm_cost for any feasible score. Raw f64 here so
    // the gate arithmetic is the exact op sequence of the pre-typed code.
    let mut placed_cost = ctx.comm_cost(&placed).to_f64();
    for _ in 0..passes {
        for i in 0..node_count {
            for j in (i + 1)..node_count {
                let a = NodeId::new(i);
                let b = NodeId::new(j);
                // Swapping two empty positions changes nothing.
                if placed.core_at(a).is_none() && placed.core_at(b).is_none() {
                    continue;
                }
                *evaluations += 1;
                if kernel == SwapKernel::DeltaGated {
                    let delta = ctx.swap_delta(&placed, a, b).to_f64();
                    let margin = DELTA_GATE_MARGIN * (1.0 + placed_cost.abs() + delta.abs());
                    if placed_cost + delta - margin >= best_cost.to_f64() {
                        // Even optimistically the candidate cannot beat the
                        // incumbent: evaluate() would return INFINITY from
                        // its threshold gate without routing. Skip the O(E)
                        // confirmation scan.
                        ctx.counters.gate_rejects.inc();
                        continue;
                    }
                    ctx.counters.gate_accepts.inc();
                }
                let mut candidate = placed.clone();
                candidate.swap_nodes(a, b);
                let cost = ctx.evaluate(&candidate, best_cost)?;
                if cost < best_cost {
                    best_cost = cost;
                    best = candidate;
                }
            }
            placed = best.clone();
            if let Some(cost) = best_cost.cost() {
                placed_cost = cost.to_f64();
            }
        }
    }
    Ok((best_cost, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, CoreId, Topology};

    fn pipeline(n: usize, bw: f64) -> CoreGraph {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("s{i}"))).collect();
        for w in ids.windows(2) {
            g.add_comm(w[0], w[1], bw).unwrap();
        }
        g
    }

    #[test]
    fn pipeline_reaches_optimal_cost() {
        // 4-stage pipeline on 2x2: optimal cost = every edge on one hop.
        let p = MappingProblem::new(pipeline(4, 100.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert_eq!(out.comm_cost.to_f64(), 300.0);
        assert!(out.feasible);
    }

    #[test]
    fn six_stage_pipeline_on_3x2() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        // Snake embedding gives every edge 1 hop: cost 250.
        assert_eq!(out.comm_cost.to_f64(), 250.0, "expected snake embedding");
    }

    #[test]
    fn swaps_improve_on_initialization() {
        // A graph crafted so the greedy init is suboptimal: two hubs.
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..8).map(|i| g.add_core(format!("c{i}"))).collect();
        g.add_comm(ids[0], ids[1], 100.0).unwrap();
        g.add_comm(ids[0], ids[2], 100.0).unwrap();
        g.add_comm(ids[0], ids[3], 100.0).unwrap();
        g.add_comm(ids[4], ids[5], 100.0).unwrap();
        g.add_comm(ids[4], ids[6], 100.0).unwrap();
        g.add_comm(ids[4], ids[7], 100.0).unwrap();
        g.add_comm(ids[0], ids[4], 10.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(3, 3, 1e9)).unwrap();
        let init = initialize(&p);
        let init_cost = p.comm_cost(&init);
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.comm_cost <= init_cost);
        assert!(out.feasible);
    }

    #[test]
    fn capacity_constraints_steer_the_search() {
        // Two 100 MB/s flows and 120 MB/s links: mappings that stack both
        // flows on one link are infeasible and must be rejected.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(c, d, 100.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 120.0)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.feasible, "a feasible mapping exists and must be found");
        assert!(out.link_loads.max() <= 120.0 + 1e-9);
    }

    #[test]
    fn extra_passes_never_hurt() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 1e9)).unwrap();
        let one = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 1 }).unwrap();
        let three = map_single_path(&p, &SinglePathOptions { passes: 3, restarts: 1 }).unwrap();
        assert!(three.comm_cost <= one.comm_cost);
    }

    #[test]
    fn restarts_never_hurt() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 1e9)).unwrap();
        let single = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 1 }).unwrap();
        let multi = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 6 }).unwrap();
        assert!(multi.comm_cost <= single.comm_cost);
    }

    #[test]
    fn evaluation_count_is_bounded() {
        let p = MappingProblem::new(pipeline(4, 10.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::paper_exact()).unwrap();
        // 1 initial + at most C(4,2) = 6 swap evaluations.
        assert!(out.evaluations <= 7, "evaluations {}", out.evaluations);
    }

    #[test]
    fn outcome_is_internally_consistent() {
        let p = MappingProblem::new(pipeline(5, 80.0), Topology::mesh(3, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert_eq!(out.comm_cost, p.comm_cost(&out.mapping));
        let commodities = p.commodities(&out.mapping);
        let recomputed = out.tables.link_loads(p.topology(), &commodities);
        for (id, _) in p.topology().links() {
            assert!((out.link_loads.get(id) - recomputed.get(id)).abs() < 1e-9);
        }
        // Routed cost equals Eq-7 cost because all paths are minimal.
        let routed_cost: HopMbps = out
            .paths
            .iter()
            .map(|path| commodities[path.edge.index()].value * noc_units::Hops::new(path.hops()))
            .sum();
        assert!((routed_cost - out.comm_cost).to_f64().abs() < 1e-9);
    }

    #[test]
    fn works_on_torus_topology() {
        let p = MappingProblem::new(pipeline(6, 100.0), Topology::torus(3, 3, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.feasible);
        assert_eq!(out.comm_cost.to_f64(), 500.0, "ring embedding should be perfect on a torus");
    }

    #[test]
    fn zero_passes_or_restarts_are_rejected_not_clamped() {
        use crate::MapError;
        let p = MappingProblem::new(pipeline(4, 10.0), Topology::mesh(2, 2, 1e9)).unwrap();
        for bad in [
            SinglePathOptions { passes: 0, restarts: 1 },
            SinglePathOptions { passes: 1, restarts: 0 },
        ] {
            assert!(bad.check().is_err());
            match map_single_path(&p, &bad) {
                Err(MapError::InvalidOptions(msg)) => {
                    assert!(msg.contains("at least 1"), "message: {msg}")
                }
                other => panic!("expected InvalidOptions, got {other:?}"),
            }
        }
        assert!(SinglePathOptions::default().check().is_ok());
        assert!(SinglePathOptions::paper_exact().check().is_ok());
    }

    #[test]
    fn delta_gated_kernel_matches_full_recompute_bit_for_bit() {
        // The whole point of the gate: identical outcomes — mapping, cost
        // bits, paths, loads AND evaluation counts — on feasible and
        // capacity-constrained problems alike.
        let problems = [
            MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 1e9)).unwrap(),
            MappingProblem::new(pipeline(6, 100.0), Topology::mesh(3, 2, 120.0)).unwrap(),
            MappingProblem::new(pipeline(6, 100.0), Topology::torus(3, 3, 1e9)).unwrap(),
        ];
        for p in &problems {
            for opts in [SinglePathOptions::paper_exact(), SinglePathOptions::default()] {
                let full = map_single_path_kernel(
                    &mut EvalContext::new(p),
                    &opts,
                    SwapKernel::FullRecompute,
                )
                .unwrap();
                let gated =
                    map_single_path_kernel(&mut EvalContext::new(p), &opts, SwapKernel::DeltaGated)
                        .unwrap();
                assert_eq!(full, gated);
            }
        }
    }

    #[test]
    fn default_kernel_is_delta_gated() {
        assert_eq!(SwapKernel::default(), SwapKernel::DeltaGated);
    }

    #[test]
    fn shared_context_reproduces_fresh_runs() {
        // One EvalContext reused across runs (the noc-dse usage pattern)
        // must give byte-identical outcomes to fresh map_single_path calls.
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 120.0)).unwrap();
        let mut ctx = EvalContext::new(&p);
        let opts = SinglePathOptions::default();
        let fresh = map_single_path(&p, &opts).unwrap();
        let first = map_single_path_with(&mut ctx, &opts).unwrap();
        let second = map_single_path_with(&mut ctx, &opts).unwrap();
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert!(ctx.built_quadrants() > 0);
    }

    #[test]
    fn infeasible_capacities_reported_not_hidden() {
        // One 500 MB/s flow, 100 MB/s links: no single-path mapping fits.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 500.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 100.0)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(!out.feasible);
        assert!(out.link_loads.max() > 100.0);
    }
}
