//! `mappingwithsinglepath()` — Section 5 of the paper.
//!
//! Three phases:
//! 1. [`initialize`] builds a constructive placement.
//! 2. The candidate placement is evaluated by the `shortestpath()` routine:
//!    load-balanced minimal-path routing ([`routing::route_min_paths`])
//!    followed by the bandwidth check of Inequality 3; feasible mappings
//!    score their Equation-7 communication cost, infeasible ones score
//!    `maxvalue` (here `f64::INFINITY`).
//! 3. Pairwise-swap improvement: for every pair of mesh positions the swap
//!    is evaluated and the best mapping found so far is committed after
//!    each inner scan, exactly as in the paper's pseudocode.

use noc_graph::NodeId;

use crate::routing::{self, CommodityPath, LinkLoads, RoutingTables};
use crate::{initialize, EvalContext, Mapping, MappingProblem, Result};

/// Tuning knobs for [`map_single_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePathOptions {
    /// Number of full pairwise-swap sweeps per restart. The paper performs
    /// one; additional passes squeeze out further gains at linear cost.
    pub passes: usize,
    /// Number of deterministic restarts. Restart `r > 0` relocates the
    /// seed placement to a different anchor node before the swap loop, so
    /// the search explores several basins (an extension over the paper's
    /// single descent; `restarts: 1` reproduces the paper exactly).
    pub restarts: usize,
}

impl Default for SinglePathOptions {
    fn default() -> Self {
        Self { passes: 2, restarts: 8 }
    }
}

impl SinglePathOptions {
    /// The paper's literal configuration: one descent, one sweep.
    pub fn paper_exact() -> Self {
        Self { passes: 1, restarts: 1 }
    }
}

/// Result of [`map_single_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePathOutcome {
    /// The best placement found.
    pub mapping: Mapping,
    /// Equation-7 communication cost of `mapping` (hops × bandwidth).
    pub comm_cost: f64,
    /// Whether the routed traffic satisfies every link capacity.
    pub feasible: bool,
    /// The single-path route of each commodity (commodity order).
    pub paths: Vec<CommodityPath>,
    /// Aggregate link loads of `paths`.
    pub link_loads: LinkLoads,
    /// Source-routing tables equivalent to `paths`.
    pub tables: RoutingTables,
    /// Number of candidate placements evaluated (diagnostics).
    pub evaluations: usize,
}

/// Runs NMAP with single minimum-path routing (the paper's
/// `mappingwithsinglepath()` routine).
///
/// # Errors
///
/// Propagates [`crate::MapError::Unroutable`] from the router on
/// disconnected custom topologies.
pub fn map_single_path(
    problem: &MappingProblem,
    options: &SinglePathOptions,
) -> Result<SinglePathOutcome> {
    map_single_path_with(&mut EvalContext::new(problem), options)
}

/// [`map_single_path`] driven through a caller-owned [`EvalContext`], so
/// repeated runs on the same problem (e.g. option sweeps) share the
/// quadrant-DAG cache and scratch buffers across calls in addition to the
/// sharing every single call's restarts already get. Results are
/// identical to [`map_single_path`].
///
/// # Errors
///
/// Same conditions as [`map_single_path`].
pub fn map_single_path_with(
    ctx: &mut EvalContext<'_>,
    options: &SinglePathOptions,
) -> Result<SinglePathOutcome> {
    let problem = ctx.problem();
    let node_count = problem.topology().node_count();
    let restarts = options.restarts.max(1);
    let mut evaluations = 0usize;

    let seed = initialize(problem);
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Mapping> = None;

    for restart in 0..restarts {
        // Anchor the seed's content at a different node each restart so the
        // descent starts in a different basin; restart 0 is the paper's
        // untouched initialize() placement.
        let mut placed = seed.clone();
        if restart > 0 {
            let anchor = NodeId::new((restart * node_count) / restarts);
            let origin = seed.assignments().next().map(|(_, node)| node).unwrap_or(anchor);
            placed.swap_nodes(origin, anchor);
        }
        let (cost, mapping) = swap_descent(ctx, placed, options.passes, &mut evaluations)?;
        if cost < best_cost || best.is_none() {
            best_cost = cost;
            best = Some(mapping);
        }
    }
    let best = best.expect("at least one restart ran");

    // Final full evaluation of the winner.
    let (paths, link_loads) = routing::route_min_paths(problem, &best)?;
    let feasible = link_loads.within_capacity(problem.topology());
    let comm_cost = problem.comm_cost(&best);
    let tables = RoutingTables::from_single_paths(&paths);
    Ok(SinglePathOutcome {
        mapping: best,
        comm_cost,
        feasible,
        paths,
        link_loads,
        tables,
        evaluations,
    })
}

/// One multi-pass pairwise-swap descent (the paper's improvement loop).
///
/// The `shortestpath()` score of each candidate is computed through the
/// shared [`EvalContext`] — cached quadrant DAGs, reused scratch buffers,
/// and the same lazy-feasibility shortcut as always: candidates whose
/// placement-only Equation-7 cost cannot beat the incumbent skip the
/// expensive routing-based capacity check.
fn swap_descent(
    ctx: &mut EvalContext<'_>,
    mut placed: Mapping,
    passes: usize,
    evaluations: &mut usize,
) -> Result<(f64, Mapping)> {
    let node_count = ctx.problem().topology().node_count();
    *evaluations += 1;
    let mut best_cost = ctx.evaluate(&placed, f64::INFINITY)?;
    let mut best = placed.clone();
    for _ in 0..passes.max(1) {
        for i in 0..node_count {
            for j in (i + 1)..node_count {
                let a = NodeId::new(i);
                let b = NodeId::new(j);
                // Swapping two empty positions changes nothing.
                if placed.core_at(a).is_none() && placed.core_at(b).is_none() {
                    continue;
                }
                let mut candidate = placed.clone();
                candidate.swap_nodes(a, b);
                *evaluations += 1;
                let cost = ctx.evaluate(&candidate, best_cost)?;
                if cost < best_cost {
                    best_cost = cost;
                    best = candidate;
                }
            }
            placed = best.clone();
        }
    }
    Ok((best_cost, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, CoreId, Topology};

    fn pipeline(n: usize, bw: f64) -> CoreGraph {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("s{i}"))).collect();
        for w in ids.windows(2) {
            g.add_comm(w[0], w[1], bw).unwrap();
        }
        g
    }

    #[test]
    fn pipeline_reaches_optimal_cost() {
        // 4-stage pipeline on 2x2: optimal cost = every edge on one hop.
        let p = MappingProblem::new(pipeline(4, 100.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert_eq!(out.comm_cost, 300.0);
        assert!(out.feasible);
    }

    #[test]
    fn six_stage_pipeline_on_3x2() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        // Snake embedding gives every edge 1 hop: cost 250.
        assert_eq!(out.comm_cost, 250.0, "expected snake embedding");
    }

    #[test]
    fn swaps_improve_on_initialization() {
        // A graph crafted so the greedy init is suboptimal: two hubs.
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..8).map(|i| g.add_core(format!("c{i}"))).collect();
        g.add_comm(ids[0], ids[1], 100.0).unwrap();
        g.add_comm(ids[0], ids[2], 100.0).unwrap();
        g.add_comm(ids[0], ids[3], 100.0).unwrap();
        g.add_comm(ids[4], ids[5], 100.0).unwrap();
        g.add_comm(ids[4], ids[6], 100.0).unwrap();
        g.add_comm(ids[4], ids[7], 100.0).unwrap();
        g.add_comm(ids[0], ids[4], 10.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(3, 3, 1e9)).unwrap();
        let init = initialize(&p);
        let init_cost = p.comm_cost(&init);
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.comm_cost <= init_cost);
        assert!(out.feasible);
    }

    #[test]
    fn capacity_constraints_steer_the_search() {
        // Two 100 MB/s flows and 120 MB/s links: mappings that stack both
        // flows on one link are infeasible and must be rejected.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        let d = g.add_core("d");
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(c, d, 100.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 120.0)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.feasible, "a feasible mapping exists and must be found");
        assert!(out.link_loads.max() <= 120.0 + 1e-9);
    }

    #[test]
    fn extra_passes_never_hurt() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 1e9)).unwrap();
        let one = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 1 }).unwrap();
        let three = map_single_path(&p, &SinglePathOptions { passes: 3, restarts: 1 }).unwrap();
        assert!(three.comm_cost <= one.comm_cost);
    }

    #[test]
    fn restarts_never_hurt() {
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 1e9)).unwrap();
        let single = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 1 }).unwrap();
        let multi = map_single_path(&p, &SinglePathOptions { passes: 1, restarts: 6 }).unwrap();
        assert!(multi.comm_cost <= single.comm_cost);
    }

    #[test]
    fn evaluation_count_is_bounded() {
        let p = MappingProblem::new(pipeline(4, 10.0), Topology::mesh(2, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::paper_exact()).unwrap();
        // 1 initial + at most C(4,2) = 6 swap evaluations.
        assert!(out.evaluations <= 7, "evaluations {}", out.evaluations);
    }

    #[test]
    fn outcome_is_internally_consistent() {
        let p = MappingProblem::new(pipeline(5, 80.0), Topology::mesh(3, 2, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert_eq!(out.comm_cost, p.comm_cost(&out.mapping));
        let commodities = p.commodities(&out.mapping);
        let recomputed = out.tables.link_loads(p.topology(), &commodities);
        for (id, _) in p.topology().links() {
            assert!((out.link_loads.get(id) - recomputed.get(id)).abs() < 1e-9);
        }
        // Routed cost equals Eq-7 cost because all paths are minimal.
        let routed_cost: f64 = out
            .paths
            .iter()
            .map(|path| commodities[path.edge.index()].value * path.hops() as f64)
            .sum();
        assert!((routed_cost - out.comm_cost).abs() < 1e-9);
    }

    #[test]
    fn works_on_torus_topology() {
        let p = MappingProblem::new(pipeline(6, 100.0), Topology::torus(3, 3, 1e9)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(out.feasible);
        assert_eq!(out.comm_cost, 500.0, "ring embedding should be perfect on a torus");
    }

    #[test]
    fn shared_context_reproduces_fresh_runs() {
        // One EvalContext reused across runs (the noc-dse usage pattern)
        // must give byte-identical outcomes to fresh map_single_path calls.
        let p = MappingProblem::new(pipeline(6, 50.0), Topology::mesh(3, 3, 120.0)).unwrap();
        let mut ctx = EvalContext::new(&p);
        let opts = SinglePathOptions::default();
        let fresh = map_single_path(&p, &opts).unwrap();
        let first = map_single_path_with(&mut ctx, &opts).unwrap();
        let second = map_single_path_with(&mut ctx, &opts).unwrap();
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert!(ctx.built_quadrants() > 0);
    }

    #[test]
    fn infeasible_capacities_reported_not_hidden() {
        // One 500 MB/s flow, 100 MB/s links: no single-path mapping fits.
        let mut g = CoreGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        g.add_comm(a, b, 500.0).unwrap();
        let p = MappingProblem::new(g, Topology::mesh(2, 2, 100.0)).unwrap();
        let out = map_single_path(&p, &SinglePathOptions::default()).unwrap();
        assert!(!out.feasible);
        assert!(out.link_loads.max() > 100.0);
    }
}
