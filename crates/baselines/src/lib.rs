//! Baseline NoC mapping algorithms the NMAP paper compares against.
//!
//! * [`gmap`] — the greedy mapper used for upper-bound-cost (UBC)
//!   computation in Hu & Marculescu, *Energy-Aware Mapping for Tile-based
//!   NoC Architectures* (ASP-DAC 2003): cores sorted by total demand are
//!   placed one-by-one on the cheapest free tile.
//! * [`pmap`] — the physical-mapping phase of Koziris et al., *An
//!   Efficient Algorithm for the Physical Mapping of Clustered Task Graphs
//!   onto Multiprocessor Architectures* (Euro-PDP 2000): like a greedy
//!   constructive mapper but candidates are restricted to the free
//!   neighbourhood of the already-mapped region.
//! * [`pbb`] — the partial branch-and-bound mapper of Hu & Marculescu:
//!   best-first search over placement prefixes with an admissible lower
//!   bound and a bounded queue ("partial" search).
//!
//! All three consume the same [`nmap::MappingProblem`] and produce an
//! [`nmap::Mapping`], so every mapper can be evaluated under every routing
//! regime (XY, load-balanced min-path, split-traffic MCF). Each also has
//! a [`nmap::search::Mapper`] wrapper ([`PmapMapper`], [`GmapMapper`],
//! [`PbbMapper`]), and [`standard_registry`] assembles the workspace-wide
//! name-keyed mapper registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gmap;
mod pbb;
mod pmap;
mod search;

pub use gmap::gmap;
pub use pbb::{pbb, PbbOptions, PbbOutcome};
pub use pmap::pmap;
pub use search::{standard_registry, GmapMapper, PbbMapper, PmapMapper};
