//! GMAP: the greedy upper-bound-cost mapper of Hu & Marculescu.
//!
//! Cores are sorted by total communication demand (descending, ties by
//! id). Each core in turn is placed on the free node minimizing the
//! communication cost to the cores already placed. Unlike NMAP's
//! `initialize()`, the *order* is fixed up-front from static demands — it
//! does not adapt to what has been placed — which is the characteristic
//! weakness NMAP improves on.

use nmap::{Mapping, MappingProblem};
use noc_graph::CoreId;

/// Runs the GMAP greedy mapper, returning a complete placement.
pub fn gmap(problem: &MappingProblem) -> Mapping {
    let cores = problem.cores();
    let topology = problem.topology();
    let mut mapping = Mapping::new(topology.node_count());

    // Static order: decreasing total communication demand.
    let mut order: Vec<CoreId> = cores.cores().collect();
    order.sort_by(|&a, &b| cores.total_comm(b).cmp(&cores.total_comm(a)).then(a.cmp(&b)));

    let mut placed: Vec<CoreId> = Vec::with_capacity(order.len());
    for core in order {
        let mut best_node = None;
        let mut best_cost = f64::INFINITY;
        for node in topology.nodes() {
            if mapping.core_at(node).is_some() {
                continue;
            }
            let mut cost = 0.0;
            for &w in &placed {
                let comm = cores.comm_between(core, w);
                if comm > noc_units::Mbps::ZERO {
                    let host = mapping.node_of(w).expect("placed");
                    cost += comm.to_f64() * topology.hop_distance(node, host) as f64;
                }
            }
            // First core: bias toward the centre like the other mappers, so
            // differences in results come from the algorithms, not seeds.
            if placed.is_empty() {
                cost = topology.hop_distance(node, topology.max_degree_node()) as f64;
            }
            if cost < best_cost {
                best_cost = cost;
                best_node = Some(node);
            }
        }
        mapping.place(core, best_node.expect("free node exists"));
        placed.push(core);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};

    fn problem(edges: &[(usize, usize, f64)], n: usize, w: usize, h: usize) -> MappingProblem {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("c{i}"))).collect();
        for &(a, b, bw) in edges {
            g.add_comm(ids[a], ids[b], bw).unwrap();
        }
        MappingProblem::new(g, Topology::mesh(w, h, 1e9)).unwrap()
    }

    #[test]
    fn produces_complete_injective_mapping() {
        let p = problem(&[(0, 1, 100.0), (1, 2, 50.0), (2, 3, 25.0)], 4, 2, 2);
        let m = gmap(&p);
        assert!(m.is_complete(p.cores()));
        let mut nodes: Vec<_> = m.assignments().map(|(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn heaviest_core_is_placed_first_at_center() {
        let p = problem(&[(2, 0, 500.0), (2, 1, 500.0), (2, 3, 500.0), (0, 1, 1.0)], 4, 3, 3);
        let m = gmap(&p);
        let hub = m.node_of(CoreId::new(2)).unwrap();
        assert_eq!(hub, p.topology().max_degree_node());
    }

    #[test]
    fn adjacent_pairs_get_adjacent_nodes_when_possible() {
        let p = problem(&[(0, 1, 900.0)], 2, 2, 2);
        let m = gmap(&p);
        let a = m.node_of(CoreId::new(0)).unwrap();
        let b = m.node_of(CoreId::new(1)).unwrap();
        assert_eq!(p.topology().hop_distance(a, b), 1);
    }

    #[test]
    fn deterministic() {
        let p = problem(&[(0, 1, 70.0), (1, 2, 362.0), (2, 3, 49.0)], 4, 2, 2);
        assert_eq!(gmap(&p), gmap(&p));
    }

    #[test]
    fn cost_is_at_least_lower_bound() {
        // Cost can never be below total bandwidth (every edge >= 1 hop).
        let p = problem(&[(0, 1, 100.0), (1, 2, 100.0), (0, 2, 100.0)], 3, 2, 2);
        let m = gmap(&p);
        assert!(p.comm_cost(&m).to_f64() >= p.cores().total_bandwidth().to_f64());
    }
}
