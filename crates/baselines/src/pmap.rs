//! PMAP: the physical-mapping phase of Koziris et al. (Euro-PDP 2000).
//!
//! PMAP maps clustered task graphs onto processor grids by growing a
//! contiguous region: the next cluster (the one communicating most with
//! the mapped set, like NMAP's `initialize()`) may only be placed on a
//! free node **adjacent to the already-mapped region**, choosing the
//! neighbour with the lowest accumulated communication distance. The
//! adjacency restriction keeps the region compact but can wedge heavy
//! late-arriving clusters into poor corners — the behaviour NMAP's global
//! candidate scan plus swap refinement avoids.
//!
//! When the mapped region has no free neighbour (fully enclosed), the scan
//! falls back to all free nodes, keeping the mapper total.

use nmap::{Mapping, MappingProblem};
use noc_graph::{CoreId, NodeId};

/// Runs the PMAP region-growing mapper, returning a complete placement.
pub fn pmap(problem: &MappingProblem) -> Mapping {
    let cores = problem.cores();
    let topology = problem.topology();
    let mut mapping = Mapping::new(topology.node_count());

    let mut unmapped: Vec<CoreId> = cores.cores().collect();
    let mut mapped: Vec<CoreId> = Vec::with_capacity(unmapped.len());

    // Seed as in the paper: heaviest cluster onto the best-connected node.
    let seed = cores.max_comm_core().expect("non-empty problem");
    mapping.place(seed, topology.max_degree_node());
    unmapped.retain(|&c| c != seed);
    mapped.push(seed);

    while !unmapped.is_empty() {
        // Next cluster: max communication with the mapped set (ties: id).
        let next = *unmapped
            .iter()
            .max_by(|&&a, &&b| {
                let ca: noc_units::Mbps = mapped.iter().map(|&w| cores.comm_between(a, w)).sum();
                let cb: noc_units::Mbps = mapped.iter().map(|&w| cores.comm_between(b, w)).sum();
                ca.cmp(&cb).then(b.cmp(&a))
            })
            .expect("non-empty");

        // Candidate set: free nodes adjacent to the mapped region.
        let mut candidates: Vec<NodeId> = Vec::new();
        for &w in &mapped {
            let host = mapping.node_of(w).expect("placed");
            for (_, link) in topology.out_links(host) {
                if mapping.core_at(link.dst).is_none() && !candidates.contains(&link.dst) {
                    candidates.push(link.dst);
                }
            }
        }
        if candidates.is_empty() {
            candidates = topology.nodes().filter(|&n| mapping.core_at(n).is_none()).collect();
        }
        candidates.sort();

        let node = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let cost = |n: NodeId| -> f64 {
                    mapped
                        .iter()
                        .map(|&w| {
                            let comm = cores.comm_between(next, w);
                            if comm > noc_units::Mbps::ZERO {
                                let host = mapping.node_of(w).expect("placed");
                                comm.to_f64() * topology.hop_distance(n, host) as f64
                            } else {
                                0.0
                            }
                        })
                        .sum()
                };
                cost(a).partial_cmp(&cost(b)).expect("finite").then(a.cmp(&b))
            })
            .expect("candidate exists");

        mapping.place(next, node);
        unmapped.retain(|&c| c != next);
        mapped.push(next);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};

    fn problem(edges: &[(usize, usize, f64)], n: usize, w: usize, h: usize) -> MappingProblem {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("c{i}"))).collect();
        for &(a, b, bw) in edges {
            g.add_comm(ids[a], ids[b], bw).unwrap();
        }
        MappingProblem::new(g, Topology::mesh(w, h, 1e9)).unwrap()
    }

    #[test]
    fn produces_complete_injective_mapping() {
        let p = problem(
            &[(0, 1, 100.0), (1, 2, 50.0), (2, 3, 25.0), (3, 4, 10.0), (4, 5, 5.0)],
            6,
            3,
            2,
        );
        let m = pmap(&p);
        assert!(m.is_complete(p.cores()));
        let mut nodes: Vec<_> = m.assignments().map(|(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 6);
    }

    #[test]
    fn region_grows_contiguously() {
        // With the adjacency restriction, each placed core (after the
        // seed) must touch at least one other placed core.
        let p = problem(&[(0, 1, 100.0), (1, 2, 90.0), (2, 3, 80.0), (3, 4, 70.0)], 5, 3, 3);
        let m = pmap(&p);
        for (core, node) in m.assignments() {
            let has_neighbour =
                p.topology().out_links(node).any(|(_, l)| m.core_at(l.dst).is_some());
            assert!(
                has_neighbour || p.cores().core_count() == 1,
                "core {core} is isolated at {node}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let p = problem(&[(0, 1, 70.0), (1, 2, 362.0), (2, 3, 49.0)], 4, 3, 3);
        assert_eq!(pmap(&p), pmap(&p));
    }

    #[test]
    fn isolated_cores_fall_back_gracefully() {
        // Disconnected second component still gets placed.
        let p = problem(&[(0, 1, 100.0), (2, 3, 90.0)], 4, 2, 2);
        let m = pmap(&p);
        assert!(m.is_complete(p.cores()));
    }

    #[test]
    fn full_mesh_placement_works() {
        // |V| == |U|: every node ends up occupied.
        let p = problem(&[(0, 1, 10.0), (1, 2, 20.0), (2, 3, 30.0), (3, 0, 40.0)], 4, 2, 2);
        let m = pmap(&p);
        assert_eq!(m.placed_count(), 4);
    }
}
