//! The baseline mappers behind the [`nmap::search`] layer: [`Mapper`]
//! wrappers for PMAP, GMAP and PBB, plus [`standard_registry`] — the
//! full name-keyed registry of every mapper in the workspace (this
//! crate's three baselines on top of [`nmap::search::core_registry`]).

use nmap::search::{constructive_outcome_of, core_registry, MapOutcome, Mapper, Registry};
use nmap::{EvalContext, Result};

use crate::{gmap, pbb, pmap, PbbOptions};

/// The PMAP two-phase baseline (registry name `pmap`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmapMapper;

impl Mapper for PmapMapper {
    fn name(&self) -> String {
        "pmap".to_string()
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        let mapping = pmap(ctx.problem());
        constructive_outcome_of(ctx, mapping, 0)
    }

    fn place(&self, ctx: &mut EvalContext<'_>) -> Result<(nmap::Mapping, usize)> {
        Ok((pmap(ctx.problem()), 0))
    }
}

/// The GMAP greedy baseline (registry name `gmap`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GmapMapper;

impl Mapper for GmapMapper {
    fn name(&self) -> String {
        "gmap".to_string()
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        let mapping = gmap(ctx.problem());
        constructive_outcome_of(ctx, mapping, 0)
    }

    fn place(&self, ctx: &mut EvalContext<'_>) -> Result<(nmap::Mapping, usize)> {
        Ok((gmap(ctx.problem()), 0))
    }
}

/// Truncated branch-and-bound (registry name `pbb`); `evaluations`
/// counts search-tree expansions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbbMapper {
    options: PbbOptions,
}

impl PbbMapper {
    /// Wraps [`pbb`] with the given options.
    pub fn new(options: PbbOptions) -> Self {
        Self { options }
    }
}

impl Default for PbbMapper {
    fn default() -> Self {
        Self::new(PbbOptions::default())
    }
}

impl Mapper for PbbMapper {
    fn name(&self) -> String {
        if self.options == PbbOptions::default() {
            "pbb".to_string()
        } else {
            format!("pbb[q{}e{}]", self.options.max_queue, self.options.max_expansions)
        }
    }

    fn map(&self, ctx: &mut EvalContext<'_>) -> Result<MapOutcome> {
        self.options.check().map_err(nmap::MapError::InvalidOptions)?;
        let out = pbb(ctx.problem(), &self.options);
        ctx.probe().counter("search.pbb_expansions").add(out.expansions as u64);
        Ok(MapOutcome {
            mapping: out.mapping,
            comm_cost: out.comm_cost,
            feasible: out.feasible,
            evaluations: out.expansions,
        })
    }
}

/// Every mapper in the workspace under its canonical `.dse` name: the
/// NMAP family and the `sa`/`tabu` searches from
/// [`nmap::search::core_registry`], plus `pmap`, `gmap` and `pbb` from
/// this crate.
pub fn standard_registry() -> Registry {
    let mut registry = core_registry();
    registry.register("pmap", |_| Box::new(PmapMapper));
    registry.register("gmap", |_| Box::new(GmapMapper));
    registry.register("pbb", |_| Box::new(PbbMapper::default()));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmap::MappingProblem;
    use noc_graph::{RandomGraphConfig, Topology};

    fn problem(seed: u64) -> MappingProblem {
        let g = RandomGraphConfig { cores: 8, ..Default::default() }.generate(seed);
        MappingProblem::new(g, Topology::mesh(3, 3, 2_000.0)).unwrap()
    }

    #[test]
    fn standard_registry_builds_all_ten_mappers() {
        let registry = standard_registry();
        let names: Vec<_> = registry.names().collect();
        assert_eq!(
            names,
            [
                "nmap-init",
                "nmap",
                "nmap-paper",
                "nmap-split-quadrant",
                "nmap-split-all",
                "sa",
                "tabu",
                "pmap",
                "gmap",
                "pbb"
            ]
        );
        let p = problem(1);
        for name in names {
            let mapper = registry.build(name, 3).expect("registered");
            assert_eq!(mapper.name(), name);
            let out = mapper.map(&mut EvalContext::new(&p)).expect("small mesh maps");
            assert!(out.mapping.is_complete(p.cores()), "{name}");
        }
    }

    #[test]
    fn trait_wrappers_match_the_bare_functions() {
        let p = problem(6);
        let out = PmapMapper.map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.mapping, pmap(&p));
        assert_eq!(out.comm_cost, p.comm_cost(&out.mapping));
        assert_eq!(out.evaluations, 0);

        let out = GmapMapper.map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.mapping, gmap(&p));

        let opts = PbbOptions { max_queue: 500, max_expansions: 5_000 };
        let legacy = pbb(&p, &opts);
        let out = PbbMapper::new(opts).map(&mut EvalContext::new(&p)).unwrap();
        assert_eq!(out.mapping, legacy.mapping);
        assert_eq!(out.comm_cost, legacy.comm_cost);
        assert_eq!(out.feasible, legacy.feasible);
        assert_eq!(out.evaluations, legacy.expansions);
    }

    #[test]
    fn pbb_name_covers_parameterized_form() {
        assert_eq!(PbbMapper::default().name(), "pbb");
        assert_eq!(
            PbbMapper::new(PbbOptions { max_queue: 10, max_expansions: 20 }).name(),
            "pbb[q10e20]"
        );
    }
}
