//! PBB: the partial branch-and-bound mapper of Hu & Marculescu
//! (ASP-DAC 2003).
//!
//! Best-first search over placement prefixes. Cores are ordered by total
//! communication demand (descending); tree level ℓ assigns core ℓ to one
//! of the free nodes. Each search node carries
//!
//! * the exact cost of the already-placed pairs, and
//! * an admissible lower bound for the rest: every edge not yet fully
//!   placed must span at least one hop, so
//!   `LB = partial_cost + Σ (weights of unfinished edges)`.
//!
//! The "partial" qualifier: the priority queue is bounded
//! ([`PbbOptions::max_queue`]); when it overflows, the worst entries are
//! discarded — exactly the paper's "we monitored the queue length so that
//! the PBB algorithm ran for few minutes". An expansion budget
//! ([`PbbOptions::max_expansions`]) gives a second, harder stop.
//!
//! Symmetry breaking: the first core only tries one octant of the mesh
//! (or one representative of each degree class on other topologies),
//! cutting the 8-fold dihedral symmetry of square meshes.
//!
//! Completed placements are accepted only if the load-balanced
//! minimum-path routing satisfies the link capacities — the bandwidth
//! constraint side of the original formulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nmap::{routing, Mapping, MappingProblem};
use noc_graph::{CoreId, NodeId, TopologyKind};

/// Tuning knobs for [`pbb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbbOptions {
    /// Maximum number of live entries in the best-first queue; beyond it
    /// the worst entries are dropped (partial search).
    pub max_queue: usize,
    /// Maximum number of node expansions before the search stops and the
    /// incumbent is returned.
    pub max_expansions: usize,
}

impl Default for PbbOptions {
    fn default() -> Self {
        Self { max_queue: 10_000, max_expansions: 200_000 }
    }
}

impl PbbOptions {
    /// Checks the options, returning the first violation as a message —
    /// the single source of the budget constraints, shared by the
    /// [`crate::PbbMapper`] trait wrapper and the `.dse` spec parser.
    /// (The bare [`pbb`] stays total: a zero budget there degenerates to
    /// the `initialize()` fallback.)
    ///
    /// # Errors
    ///
    /// A human-readable message when a budget is zero.
    pub fn check(&self) -> std::result::Result<(), String> {
        if self.max_queue == 0 {
            return Err("pbb queue bound must be at least 1".into());
        }
        if self.max_expansions == 0 {
            return Err("pbb expansion budget must be at least 1".into());
        }
        Ok(())
    }
}

/// Result of a [`pbb`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PbbOutcome {
    /// Best complete placement found (falls back to NMAP's `initialize()`
    /// seeding if the budget expired before any completion — never absent).
    pub mapping: Mapping,
    /// Equation-7 communication cost of `mapping`.
    pub comm_cost: noc_units::HopMbps,
    /// Whether min-path routing of `mapping` meets all link capacities.
    pub feasible: bool,
    /// Number of search-tree nodes expanded (diagnostics).
    pub expansions: usize,
    /// True if the search ran out of budget while work remained.
    pub truncated: bool,
}

#[derive(Debug, Clone)]
struct SearchNode {
    /// `placement[i]` hosts core `order[i]`.
    placement: Vec<NodeId>,
    /// Occupied nodes as a bitmask (topologies here are ≤ 128 nodes).
    occupied: u128,
    /// Exact cost of placed-pair communication.
    partial_cost: f64,
    /// `partial_cost` + admissible remainder bound.
    lower_bound: f64,
}

/// Min-heap adapter: BinaryHeap is a max-heap, so reverse the ordering.
#[derive(Debug)]
struct HeapNode(SearchNode);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.lower_bound == other.0.lower_bound
    }
}
impl Eq for HeapNode {}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .lower_bound
            .partial_cmp(&self.0.lower_bound)
            .expect("bounds are finite")
            .then_with(|| other.0.placement.len().cmp(&self.0.placement.len()))
            .then_with(|| other.0.placement.cmp(&self.0.placement))
    }
}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the partial branch-and-bound mapper.
///
/// # Panics
///
/// Panics if the topology has more than 128 nodes (the occupancy bitmask
/// width; all paper-scale experiments are ≤ 81 nodes).
pub fn pbb(problem: &MappingProblem, options: &PbbOptions) -> PbbOutcome {
    let cores = problem.cores();
    let topology = problem.topology();
    assert!(topology.node_count() <= 128, "PBB occupancy mask supports up to 128 nodes");

    // Core order: decreasing total communication demand.
    let mut order: Vec<CoreId> = cores.cores().collect();
    order.sort_by(|&a, &b| cores.total_comm(b).cmp(&cores.total_comm(a)).then(a.cmp(&b)));
    let position: Vec<usize> = {
        let mut pos = vec![0usize; order.len()];
        for (i, &c) in order.iter().enumerate() {
            pos[c.index()] = i;
        }
        pos
    };

    // remaining_weight[l] = total weight of edges NOT fully placed once the
    // first `l` cores of `order` are down: edge (a, b) completes at level
    // max(pos[a], pos[b]) + 1.
    let levels = order.len();
    let mut remaining_weight = vec![0.0f64; levels + 1];
    for (_, e) in cores.edges() {
        let done_at = position[e.src.index()].max(position[e.dst.index()]) + 1;
        for level_weight in remaining_weight.iter_mut().take(done_at) {
            *level_weight += e.bandwidth.to_f64();
        }
    }

    // Adjacency of each core to earlier-ordered cores, with weights.
    // earlier[l] = list of (level index < l, undirected comm weight).
    let mut earlier: Vec<Vec<(usize, f64)>> = vec![Vec::new(); levels];
    for (li, &c) in order.iter().enumerate() {
        for (lj, &w) in order.iter().enumerate().take(li) {
            let comm = cores.comm_between(c, w);
            if comm > noc_units::Mbps::ZERO {
                earlier[li].push((lj, comm.to_f64()));
            }
        }
    }

    let mut heap: BinaryHeap<HeapNode> = BinaryHeap::new();
    // Root expansions with symmetry breaking.
    for node in first_core_candidates(problem) {
        heap.push(HeapNode(SearchNode {
            placement: vec![node],
            occupied: 1u128 << node.index(),
            partial_cost: 0.0,
            lower_bound: remaining_weight[1],
        }));
    }

    let mut best: Option<(f64, Mapping)> = None;
    let mut expansions = 0usize;
    let mut truncated = false;

    while let Some(HeapNode(node)) = heap.pop() {
        if expansions >= options.max_expansions {
            truncated = true;
            break;
        }
        if let Some((best_cost, _)) = &best {
            if node.lower_bound >= *best_cost {
                continue; // prune: cannot beat the incumbent
            }
        }
        expansions += 1;
        let level = node.placement.len();

        if level == levels {
            // Complete placement: accept if bandwidth-feasible.
            let mapping = to_mapping(&order, &node.placement, topology.node_count());
            let feasible = routing::route_min_paths(problem, &mapping)
                .map(|(_, loads)| loads.within_capacity(topology))
                .unwrap_or(false);
            if feasible {
                let cost = node.partial_cost;
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, mapping));
                }
            }
            continue;
        }

        // Expand: place core `order[level]` on every free node.
        for target in topology.nodes() {
            if node.occupied & (1u128 << target.index()) != 0 {
                continue;
            }
            let mut delta = 0.0;
            for &(lj, comm) in &earlier[level] {
                delta += comm * topology.hop_distance(target, node.placement[lj]) as f64;
            }
            let partial_cost = node.partial_cost + delta;
            let lower_bound = partial_cost + remaining_weight[level + 1];
            if let Some((best_cost, _)) = &best {
                if lower_bound >= *best_cost {
                    continue;
                }
            }
            let mut placement = node.placement.clone();
            placement.push(target);
            heap.push(HeapNode(SearchNode {
                placement,
                occupied: node.occupied | (1u128 << target.index()),
                partial_cost,
                lower_bound,
            }));
        }

        // Partial search: drop the worst entries when the queue overflows.
        if heap.len() > options.max_queue {
            truncated = true;
            let mut entries: Vec<HeapNode> = heap.drain().collect();
            entries.sort_by(|a, b| b.cmp(a)); // best first (Ord is reversed)
            entries.truncate(options.max_queue / 2);
            heap.extend(entries);
        }
    }

    let (mapping, feasible) = match best {
        Some((_, mapping)) => {
            let feasible = routing::route_min_paths(problem, &mapping)
                .map(|(_, loads)| loads.within_capacity(topology))
                .unwrap_or(false);
            (mapping, feasible)
        }
        None => {
            // Budget expired with no completion: fall back to the greedy
            // constructive placement so callers always get a mapping.
            let mapping = nmap::initialize(problem);
            let feasible = routing::route_min_paths(problem, &mapping)
                .map(|(_, loads)| loads.within_capacity(topology))
                .unwrap_or(false);
            truncated = true;
            (mapping, feasible)
        }
    };

    PbbOutcome { comm_cost: problem.comm_cost(&mapping), mapping, feasible, expansions, truncated }
}

/// Candidate nodes for the first core: one orthant of the mesh — per axis
/// `coord ≤ ⌈extent/2⌉`, and for adjacent equal-extent axis pairs
/// additionally `coord[i+1] ≤ coord[i]` (on 2-D meshes: x ≤ ⌈w/2⌉,
/// y ≤ ⌈h/2⌉ and, on square meshes, y ≤ x) — which breaks the grid's
/// reflection/rotation symmetry group. On wrapping grids and custom
/// topologies, all nodes.
fn first_core_candidates(problem: &MappingProblem) -> Vec<NodeId> {
    let topology = problem.topology();
    match topology.kind() {
        TopologyKind::Grid(grid) if grid.is_mesh() => topology
            .nodes()
            .filter(|&n| {
                let c = topology.grid_coords(n);
                let axes = grid.axes();
                let low_orthant =
                    axes.iter().zip(c).all(|(axis, &coord)| coord <= (axis.extent - 1) / 2);
                let symmetry_broken = (1..axes.len())
                    .all(|i| axes[i - 1].extent != axes[i].extent || c[i] <= c[i - 1]);
                low_orthant && symmetry_broken
            })
            .collect(),
        _ => topology.nodes().collect(),
    }
}

fn to_mapping(order: &[CoreId], placement: &[NodeId], node_count: usize) -> Mapping {
    let mut mapping = Mapping::new(node_count);
    for (&core, &node) in order.iter().zip(placement) {
        mapping.place(core, node);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{CoreGraph, Topology};

    fn problem(edges: &[(usize, usize, f64)], n: usize, w: usize, h: usize) -> MappingProblem {
        let mut g = CoreGraph::new();
        let ids: Vec<CoreId> = (0..n).map(|i| g.add_core(format!("c{i}"))).collect();
        for &(a, b, bw) in edges {
            g.add_comm(ids[a], ids[b], bw).unwrap();
        }
        MappingProblem::new(g, Topology::mesh(w, h, 1e9)).unwrap()
    }

    #[test]
    fn finds_optimal_pipeline_embedding() {
        // 4-stage pipeline on 2x2: optimum = 300 (every edge adjacent).
        let p = problem(&[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0)], 4, 2, 2);
        let out = pbb(&p, &PbbOptions::default());
        assert_eq!(out.comm_cost.to_f64(), 300.0);
        assert!(out.feasible);
        assert!(!out.truncated);
    }

    #[test]
    fn optimal_on_star_graph() {
        // Star with 4 satellites on 3x3: all satellites adjacent to hub.
        let p = problem(&[(0, 1, 100.0), (0, 2, 100.0), (0, 3, 100.0), (0, 4, 100.0)], 5, 3, 3);
        let out = pbb(&p, &PbbOptions::default());
        assert_eq!(out.comm_cost.to_f64(), 400.0);
    }

    #[test]
    fn matches_exhaustive_on_tiny_instance() {
        // 3 cores on 2x2: brute-force all placements and compare.
        let p = problem(&[(0, 1, 70.0), (1, 2, 30.0), (0, 2, 20.0)], 3, 2, 2);
        let out = pbb(&p, &PbbOptions::default());

        // Brute force.
        let nodes: Vec<NodeId> = p.topology().nodes().collect();
        let mut best = f64::INFINITY;
        for &a in &nodes {
            for &b in &nodes {
                for &c in &nodes {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let mut m = Mapping::new(4);
                    m.place(CoreId::new(0), a);
                    m.place(CoreId::new(1), b);
                    m.place(CoreId::new(2), c);
                    best = best.min(p.comm_cost(&m).to_f64());
                }
            }
        }
        assert_eq!(out.comm_cost.to_f64(), best, "PBB missed the optimum");
    }

    #[test]
    fn respects_bandwidth_constraints() {
        // Two 100 MB/s flows, 120 MB/s links: stacking them is infeasible;
        // PBB must return a feasible layout.
        let p = {
            let mut g = CoreGraph::new();
            let ids: Vec<CoreId> = (0..4).map(|i| g.add_core(format!("c{i}"))).collect();
            g.add_comm(ids[0], ids[1], 100.0).unwrap();
            g.add_comm(ids[2], ids[3], 100.0).unwrap();
            MappingProblem::new(g, Topology::mesh(2, 2, 120.0)).unwrap()
        };
        let out = pbb(&p, &PbbOptions::default());
        assert!(out.feasible);
    }

    #[test]
    fn tiny_budget_still_returns_a_mapping() {
        let p = problem(
            &[(0, 1, 100.0), (1, 2, 90.0), (2, 3, 80.0), (3, 4, 70.0), (4, 5, 60.0)],
            6,
            3,
            2,
        );
        let out = pbb(&p, &PbbOptions { max_queue: 4, max_expansions: 10 });
        assert!(out.truncated);
        assert!(out.mapping.is_complete(p.cores()));
        // The cost is finite by type (`HopMbps` excludes NaN/infinity);
        // nothing left to assert beyond completeness above.
        let _ = out.comm_cost;
    }

    #[test]
    fn deterministic() {
        let p = problem(&[(0, 1, 70.0), (1, 2, 362.0), (2, 3, 49.0)], 4, 2, 2);
        let a = pbb(&p, &PbbOptions::default());
        let b = pbb(&p, &PbbOptions::default());
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.comm_cost, b.comm_cost);
    }

    #[test]
    fn larger_budget_is_no_worse() {
        let p = problem(
            &[
                (0, 1, 100.0),
                (1, 2, 90.0),
                (2, 3, 80.0),
                (3, 4, 70.0),
                (4, 5, 60.0),
                (5, 0, 50.0),
                (0, 3, 40.0),
            ],
            6,
            3,
            2,
        );
        let small = pbb(&p, &PbbOptions { max_queue: 16, max_expansions: 100 });
        let large = pbb(&p, &PbbOptions::default());
        assert!(large.comm_cost <= small.comm_cost);
    }
}
