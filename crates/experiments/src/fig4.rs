//! Figure 4: the minimum link bandwidth each algorithm/routing combination
//! needs to satisfy the application's demands — i.e. the maximum per-link
//! load, the smallest uniform capacity making the design feasible.
//!
//! Seven bars per application:
//! DPMAP, DGMAP (dimension-ordered XY routing), PMAP, GMAP, NMAP
//! (load-balanced single minimum-path routing), NMAPTM (split across
//! minimal paths) and NMAPTA (split across all paths).

use nmap::{map_single_path, mcf::solve_mcf, routing, McfKind, PathScope, SinglePathOptions};
use noc_apps::App;
use noc_baselines::{gmap, pmap};

use crate::{app_problem, UNLIMITED_CAPACITY};

/// One bar group of Figure 4 (all values in MB/s).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Application name.
    pub app: App,
    /// PMAP mapping, dimension-ordered routing.
    pub dpmap: f64,
    /// GMAP mapping, dimension-ordered routing.
    pub dgmap: f64,
    /// PMAP mapping, load-balanced min-path routing.
    pub pmap: f64,
    /// GMAP mapping, load-balanced min-path routing.
    pub gmap: f64,
    /// NMAP mapping, load-balanced min-path routing.
    pub nmap: f64,
    /// NMAP mapping, optimal split over minimal paths (Equation 10).
    pub nmaptm: f64,
    /// NMAP mapping, optimal split over all paths.
    pub nmapta: f64,
}

/// Computes one application's seven bandwidth requirements.
pub fn run_app(app: App) -> Fig4Row {
    let problem = app_problem(app, UNLIMITED_CAPACITY);

    let pmap_mapping = pmap(&problem);
    let gmap_mapping = gmap(&problem);
    let nmap_out =
        map_single_path(&problem, &SinglePathOptions::default()).expect("mesh routing succeeds");

    let (_, dpmap_loads) = routing::route_xy(&problem, &pmap_mapping).expect("mesh");
    let (_, dgmap_loads) = routing::route_xy(&problem, &gmap_mapping).expect("mesh");
    let (_, pmap_loads) = routing::route_min_paths(&problem, &pmap_mapping).expect("mesh");
    let (_, gmap_loads) = routing::route_min_paths(&problem, &gmap_mapping).expect("mesh");

    let nmaptm = solve_mcf(&problem, &nmap_out.mapping, McfKind::MinMaxLoad, PathScope::Quadrant)
        .expect("min-max LP is always feasible")
        .objective;
    let nmapta = solve_mcf(&problem, &nmap_out.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)
        .expect("min-max LP is always feasible")
        .objective;

    Fig4Row {
        app,
        dpmap: dpmap_loads.max(),
        dgmap: dgmap_loads.max(),
        pmap: pmap_loads.max(),
        gmap: gmap_loads.max(),
        nmap: nmap_out.link_loads.max(),
        nmaptm,
        nmapta,
    }
}

/// Computes the full figure (all six applications).
pub fn run_all() -> Vec<Fig4Row> {
    App::all().into_iter().map(run_app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_reduces_bandwidth_needs() {
        // The qualitative claim of Figure 4: traffic splitting needs no
        // more bandwidth than single-path, and all-path splitting no more
        // than minimal-path splitting.
        let row = run_app(App::Pip);
        assert!(row.nmaptm <= row.nmap + 1e-6, "TM {} vs NMAP {}", row.nmaptm, row.nmap);
        assert!(row.nmapta <= row.nmaptm + 1e-6, "TA {} vs TM {}", row.nmapta, row.nmaptm);
    }

    #[test]
    fn min_path_routing_not_worse_than_xy() {
        let row = run_app(App::Pip);
        assert!(row.pmap <= row.dpmap + 1e-6);
        assert!(row.gmap <= row.dgmap + 1e-6);
    }

    #[test]
    fn bandwidth_is_at_least_the_hottest_bottleneck() {
        // No routing can get below the largest single commodity... unless
        // it splits. Single-path variants are bounded below by the hottest
        // edge weight.
        let row = run_app(App::Pip);
        let g = App::Pip.core_graph();
        let hottest = g.edges().map(|(_, e)| e.bandwidth.to_f64()).fold(0.0f64, f64::max);
        for v in [row.dpmap, row.dgmap, row.pmap, row.gmap, row.nmap] {
            assert!(v >= hottest - 1e-6, "single-path BW {v} below hottest edge {hottest}");
        }
    }
}
