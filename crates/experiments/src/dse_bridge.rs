//! Paper experiments re-expressed as `noc-dse` scenario sweeps.
//!
//! The point-by-point harnesses in this crate (one module per figure or
//! table) remain the reference implementations; this module shows the
//! same studies flowing through the parallel engine. [`table2_via_engine`]
//! reproduces [`crate::table2::run`] *exactly* — same graph seeds, same
//! mapper budgets, same floating-point accumulation order — so the two
//! paths are mutually checking (asserted by the `dse_table2` integration
//! test). [`fig5c_via_engine`] does the same for the Figure 5(c)
//! simulation sweep: the per-point wormhole runs fan out over the
//! engine's deterministic [`noc_dse::pool_map`] and are asserted equal to the
//! sequential [`crate::fig5c::run`] (the `dse_fig5c` integration test).
//! [`torus_vs_mesh`] is a new engine-only study: how much of each
//! application's communication cost the wrap-around links of a torus
//! recover over a mesh of the same radix.

use noc_dse::{
    pool_map_probed, run_scenarios, MapperSpec, RoutingSpec, RunRecord, ScenarioSet, TopologySpec,
};
use noc_graph::{RandomGraphConfig, Topology};
use noc_probe::Probe;
use noc_sim::Simulator;

use crate::fig5c::{design_dsp, flows_from_tables, Fig5cConfig, Fig5cPoint};
use crate::table2::{Table2Config, Table2Row};
use crate::{GENEROUS_CAPACITY, UNLIMITED_CAPACITY};

use nmap::SinglePathOptions;

/// Expands a Table 2 configuration into the equivalent scenario set:
/// for every `(size, instance)` random graph (identical seeds to
/// [`noc_graph::RandomGraphFamily`]), one PBB and one NMAP scenario on
/// the fitted mesh with unlimited capacity.
pub fn table2_scenario_set(config: &Table2Config) -> ScenarioSet {
    ScenarioSet::builder()
        .capacity(UNLIMITED_CAPACITY)
        .random_family(&RandomGraphConfig::default(), &config.sizes, config.instances)
        .mapper(MapperSpec::Pbb(config.pbb))
        .mapper(MapperSpec::Nmap(SinglePathOptions::default()))
        .routing(RoutingSpec::MinPath)
        .build()
}

/// Folds the engine records of [`table2_scenario_set`] back into Table 2
/// rows, accumulating costs in the same instance order (and therefore the
/// same floating-point sums) as [`crate::table2::run`].
///
/// # Panics
///
/// Panics if `records` does not match the shape of
/// `table2_scenario_set(config)` or contains failed scenarios.
pub fn table2_rows_from_records(config: &Table2Config, records: &[RunRecord]) -> Vec<Table2Row> {
    let instances = config.instances as usize;
    assert_eq!(
        records.len(),
        config.sizes.len() * instances * 2,
        "record count does not match the Table 2 scenario shape"
    );
    config
        .sizes
        .iter()
        .enumerate()
        .map(|(size_idx, &cores)| {
            let mut pbb_sum = 0.0;
            let mut nmap_sum = 0.0;
            for instance in 0..instances {
                // Scenario order: app entries (size-major, then instance),
                // each expanded to [pbb, nmap].
                let base = (size_idx * instances + instance) * 2;
                let (pbb, nmap) = (&records[base], &records[base + 1]);
                assert!(pbb.is_ok() && nmap.is_ok(), "Table 2 scenarios cannot fail");
                assert!(pbb.mapper.starts_with("pbb"), "unexpected order: {}", pbb.mapper);
                assert_eq!(pbb.cores, cores);
                pbb_sum += pbb.comm_cost.to_f64();
                nmap_sum += nmap.comm_cost.to_f64();
            }
            let pbb_avg = pbb_sum / config.instances as f64;
            let nmap_avg = nmap_sum / config.instances as f64;
            Table2Row { cores, pbb: pbb_avg, nmap: nmap_avg, ratio: pbb_avg / nmap_avg }
        })
        .collect()
}

/// Runs the Table 2 scaling study through the engine on `threads` workers
/// (`0` = available parallelism). Values are identical to
/// [`crate::table2::run`] with the same configuration.
pub fn table2_via_engine(config: &Table2Config, threads: usize) -> Vec<Table2Row> {
    let set = table2_scenario_set(config);
    let records = run_scenarios(set.scenarios(), threads);
    table2_rows_from_records(config, &records)
}

/// Runs the Figure 5(c) simulation sweep through the engine's
/// deterministic worker pool on `threads` workers (`0` = available
/// parallelism). The DSP design (placement + both routing-table sets) is
/// built once, exactly as [`crate::fig5c::run`] does; each
/// `(bandwidth, table-set)` wormhole simulation is an independent pool
/// task whose seed comes from `config.sim` alone — so the points are
/// identical to the sequential harness at every thread count (asserted by
/// the `dse_fig5c` integration test).
pub fn fig5c_via_engine(config: &Fig5cConfig, threads: usize) -> Vec<Fig5cPoint> {
    fig5c_via_engine_probed(config, threads, &Probe::default())
}

/// [`fig5c_via_engine`] with instrumentation attached: the probe is
/// threaded into each point's simulator (cycle and wake-up counters) and
/// into the worker pool (per-worker utilization). The probe observes
/// only — the points are byte-identical to an unprobed run.
pub fn fig5c_via_engine_probed(
    config: &Fig5cConfig,
    threads: usize,
    probe: &Probe,
) -> Vec<Fig5cPoint> {
    let design = design_dsp();
    // Task order: [minpath(bw0), split(bw0), minpath(bw1), split(bw1), …].
    let tasks = config.bandwidths_mbps.len() * 2;
    let runs = pool_map_probed(tasks, threads, probe, |i| {
        let bw = config.bandwidths_mbps[i / 2];
        let tables = if i % 2 == 0 { &design.minpath_tables } else { &design.split_tables };
        let topology = Topology::mesh(3, 2, bw);
        let flows = flows_from_tables(&design.problem, &design.mapping, tables);
        let mut sim = Simulator::new(&topology, flows, config.sim.clone());
        sim.set_loop_kind(config.loop_kind);
        sim.set_probe(probe);
        let report = sim.run();
        (
            report.avg_latency_cycles().to_f64(),
            report.avg_network_latency_cycles().to_f64(),
            report.saturated(),
        )
    });
    runs.chunks_exact(2)
        .zip(&config.bandwidths_mbps)
        .map(|(pair, &bandwidth_mbps)| {
            let (minpath_latency, minpath_network_latency, minpath_saturated) = pair[0];
            let (split_latency, split_network_latency, split_saturated) = pair[1];
            Fig5cPoint {
                bandwidth_mbps,
                minpath_latency,
                split_latency,
                minpath_network_latency,
                split_network_latency,
                minpath_saturated,
                split_saturated,
            }
        })
        .collect()
}

/// The reduced Figure 5(c) configuration behind `nmap_dse --fig5c
/// --smoke`: two bandwidth points and short windows, sized for CI.
pub fn fig5c_smoke_config() -> Fig5cConfig {
    Fig5cConfig {
        bandwidths_mbps: vec![1_200.0, 1_600.0],
        sim: noc_sim::SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            drain_cycles: 8_000,
            ..Default::default()
        },
        ..Fig5cConfig::default()
    }
}

/// One row of the torus-vs-mesh study.
#[derive(Debug, Clone, PartialEq)]
pub struct TorusVsMeshRow {
    /// Application name.
    pub app: String,
    /// NMAP communication cost on the fitted mesh.
    pub mesh_cost: f64,
    /// NMAP communication cost on the torus of the same radix.
    pub torus_cost: f64,
    /// `mesh_cost / torus_cost` (≥ 1 when the wrap links help).
    pub gain: f64,
}

/// The scenario set behind [`torus_vs_mesh`]: all six video applications
/// on their fitted mesh and the torus of the same radix, mapped by NMAP
/// under min-path routing with the experiments' generous capacity.
pub fn torus_vs_mesh_set() -> ScenarioSet {
    ScenarioSet::builder()
        .capacity(GENEROUS_CAPACITY)
        .all_apps()
        .topology(TopologySpec::FitMesh)
        .topology(TopologySpec::FitTorus)
        .mapper(MapperSpec::Nmap(SinglePathOptions::default()))
        .routing(RoutingSpec::MinPath)
        .build()
}

/// Runs the torus-vs-mesh sweep through the engine.
///
/// # Panics
///
/// Panics if any scenario fails (the bundled applications always fit
/// their fabrics).
pub fn torus_vs_mesh(threads: usize) -> Vec<TorusVsMeshRow> {
    let set = torus_vs_mesh_set();
    let records = run_scenarios(set.scenarios(), threads);
    torus_vs_mesh_rows_from_records(&records)
}

/// Folds the engine records of [`torus_vs_mesh_set`] into study rows
/// (mesh/torus record pairs in scenario order).
///
/// # Panics
///
/// Panics if `records` does not match the shape of [`torus_vs_mesh_set`]
/// or contains failed scenarios.
pub fn torus_vs_mesh_rows_from_records(records: &[RunRecord]) -> Vec<TorusVsMeshRow> {
    assert_eq!(records.len() % 2, 0, "records must be mesh/torus pairs");
    records
        .chunks_exact(2)
        .map(|pair| {
            let (mesh, torus) = (&pair[0], &pair[1]);
            assert!(mesh.is_ok() && torus.is_ok(), "bundled apps always fit");
            assert!(mesh.topology.starts_with("mesh"), "unexpected order: {}", mesh.topology);
            assert!(torus.topology.starts_with("torus"), "unexpected order: {}", torus.topology);
            TorusVsMeshRow {
                app: mesh.scenario.clone(),
                mesh_cost: mesh.comm_cost.to_f64(),
                torus_cost: torus.comm_cost.to_f64(),
                gain: mesh.comm_cost.to_f64() / torus.comm_cost.to_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_set_shape_matches_config() {
        let config = Table2Config {
            sizes: vec![9, 12],
            instances: 2,
            pbb: noc_baselines::PbbOptions { max_queue: 100, max_expansions: 500 },
        };
        let set = table2_scenario_set(&config);
        assert_eq!(set.len(), 2 * 2 * 2);
        assert_eq!(set.scenarios()[0].mapper.name(), "pbb[q100e500]");
        assert_eq!(set.scenarios()[1].mapper.name(), "nmap");
    }

    #[test]
    fn torus_never_loses_to_mesh() {
        // The mesh embedding is always available on the torus, so with
        // NMAP's multi-restart search the torus cost should not exceed
        // the mesh cost by more than search noise; the gain stays >= ~1.
        let rows = torus_vs_mesh(0);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.torus_cost > 0.0);
            assert!(
                row.gain >= 0.95,
                "{}: torus ({}) much worse than mesh ({})",
                row.app,
                row.torus_cost,
                row.mesh_cost
            );
        }
    }
}
