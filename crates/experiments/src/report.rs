//! Minimal text-table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A right-aligned text table with a header row.
///
/// # Example
///
/// ```
/// use noc_experiments::report::TextTable;
/// let mut t = TextTable::new(["app", "cost"]);
/// t.row(["VOPD".to_string(), "4119".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("VOPD"));
/// assert!(rendered.contains("cost"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<const N: usize>(header: [&str; N]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<const N: usize>(&mut self, cells: [String; N]) {
        assert_eq!(N, self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a data row from a vector (width-checked).
    pub fn row_vec(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = width[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a".into(), "1".into()]);
        t.row(["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row_vec(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
