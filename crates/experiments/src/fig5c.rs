//! Figure 5(c): average packet latency vs link bandwidth for the DSP
//! filter NoC, single-minimum-path routing vs split-traffic routing.
//!
//! Pipeline (mirroring Section 7.2): NMAP maps the 6-core DSP graph onto a
//! 3×2 mesh; a split-aware polish pass settles cost ties so the hot
//! FFT⇄Filter pair lands on the two degree-3 centre nodes (the placement
//! Table 3's 200 MB/s split bandwidth requires); routing tables — single
//! path from the greedy router, split from per-commodity MCF sizing — are
//! loaded into the wormhole simulator as source routes; bursty traffic
//! generators replay the core graph's average rates; the link bandwidth is
//! swept from 1.1 to 1.8 GB/s.
//!
//! **Split sizing semantics** (DESIGN.md §6): Table 3's "split BW" is the
//! per-flow link provisioning — each commodity is split over just enough
//! equal-share minimal-interference paths that its largest per-link share
//! is ≤ the design target, where the target is the best achievable
//! `max_k (value_k / maxflow_k)`. For the DSP design that is
//! 600 MB/s ÷ 3 paths = 200 MB/s. An *aggregate* 200 MB/s max link load is
//! provably impossible on a 6-node mesh (only two nodes have degree 3),
//! so the aggregate min-max LP is reported separately by Figure 4-style
//! analyses, not here.

use nmap::{
    map_single_path,
    mcf::{solve_mcf_for, McfKind, PathScope},
    Commodity, Mapping, MappingProblem, RoutingTables, SinglePathOptions,
};
use noc_apps::dsp_filter;
use noc_graph::{NodeId, Topology};
use noc_sim::{FlowSpec, LoopKind, SimConfig, Simulator};

use crate::GENEROUS_CAPACITY;

/// One sweep point of Figure 5(c). The primary latencies count from
/// packet generation to tail ejection (the delay a core observes,
/// including NI queueing — where wormhole backpressure accumulates);
/// `*_network` count from network entry only.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5cPoint {
    /// Uniform link bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Average packet latency (cycles), single-min-path routing.
    pub minpath_latency: f64,
    /// Average packet latency (cycles), split-traffic routing.
    pub split_latency: f64,
    /// Network-only latency, single-path.
    pub minpath_network_latency: f64,
    /// Network-only latency, split.
    pub split_network_latency: f64,
    /// Saturation flags (latency numbers are optimistic when saturated).
    pub minpath_saturated: bool,
    /// Saturation flag for the split run.
    pub split_saturated: bool,
}

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5cConfig {
    /// Link bandwidths to sweep, MB/s (paper: 1100–1800).
    pub bandwidths_mbps: Vec<f64>,
    /// Simulator settings.
    pub sim: SimConfig,
    /// Which simulator main loop runs the sweep. All kinds are
    /// bit-identical (pinned by the sim crate's identity suites); the
    /// choice only affects wall time, which is what the EXPERIMENTS.md
    /// timing rows compare.
    pub loop_kind: LoopKind,
}

impl Default for Fig5cConfig {
    fn default() -> Self {
        Self {
            bandwidths_mbps: (11..=18).map(|b| b as f64 * 100.0).collect(),
            sim: SimConfig::default(),
            loop_kind: LoopKind::default(),
        }
    }
}

/// The mapped DSP design: placement plus both routing-table sets.
#[derive(Debug, Clone)]
pub struct DspDesign {
    /// The mapping problem (graph + reference mesh).
    pub problem: MappingProblem,
    /// NMAP's placement after the split-aware polish.
    pub mapping: Mapping,
    /// Single-minimum-path routing tables.
    pub minpath_tables: RoutingTables,
    /// Split-traffic routing tables (per-commodity equal-share splits).
    pub split_tables: RoutingTables,
    /// Maximum aggregate link load under the single-path tables (MB/s) —
    /// Table 3's "minp BW".
    pub minpath_bw: f64,
    /// Per-flow link provisioning under splitting (MB/s) — Table 3's
    /// "split BW".
    pub split_bw: f64,
}

/// Per-flow link sizing of one commodity: the smallest per-link capacity
/// that can carry the commodity alone with optimal splitting
/// (`value / maxflow`, from a single-commodity min-max-load LP).
fn solo_sizing(topology: &Topology, commodity: &Commodity) -> f64 {
    solve_mcf_for(topology, &[*commodity], McfKind::MinMaxLoad, PathScope::AllPaths)
        .expect("single-commodity min-max LP is always feasible")
        .objective
}

/// The design's split target: `max_k solo_sizing(k)` for `mapping`.
fn split_target(problem: &MappingProblem, mapping: &Mapping) -> f64 {
    problem
        .commodities(mapping)
        .iter()
        .filter(|c| !c.value.is_zero())
        .map(|c| solo_sizing(problem.topology(), c))
        .fold(0.0, f64::max)
}

/// Maps the DSP filter and derives both routing-table sets.
pub fn design_dsp() -> DspDesign {
    let problem = MappingProblem::new(dsp_filter(), Topology::mesh(3, 2, GENEROUS_CAPACITY))
        .expect("6 cores fit a 3x2 mesh");
    let out =
        map_single_path(&problem, &SinglePathOptions::default()).expect("mesh routing succeeds");

    // Split-aware polish: explore pairwise swaps, accepting those that
    // lower (split target, comm cost) lexicographically. This settles the
    // cost ties of the swap loop in favour of placements where hot flows
    // can split widest (the paper's split design).
    let mut mapping = out.mapping;
    let mut best_target = split_target(&problem, &mapping);
    let mut best_cost = problem.comm_cost(&mapping);
    let n = problem.topology().node_count();
    for _pass in 0..2 {
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                if mapping.core_at(a).is_none() && mapping.core_at(b).is_none() {
                    continue;
                }
                let mut candidate = mapping.clone();
                candidate.swap_nodes(a, b);
                let cost = problem.comm_cost(&candidate);
                if cost > best_cost {
                    continue; // never trade cost away
                }
                let target = split_target(&problem, &candidate);
                if target < best_target - 1e-9 || (target < best_target + 1e-9 && cost < best_cost)
                {
                    best_target = target;
                    best_cost = cost;
                    mapping = candidate;
                }
            }
        }
    }

    // Single-path tables and their aggregate worst link load.
    let (paths, loads) =
        nmap::routing::route_min_paths(&problem, &mapping).expect("mesh routing succeeds");
    let minpath_tables = RoutingTables::from_single_paths(&paths);

    // Split tables: each commodity is split over just enough paths to meet
    // the target; commodities already within the target keep their single
    // minimal path (no needless reordering exposure).
    let sizing_topology = Topology::mesh(3, 2, best_target * (1.0 + 1e-9));
    let commodities = problem.commodities(&mapping);
    let mut split_routes = vec![Vec::new(); commodities.len()];
    for c in &commodities {
        if c.value.is_zero() {
            continue;
        }
        if c.value.to_f64() <= best_target + 1e-6 {
            let single = &minpath_tables.routes_of(c.edge)[0];
            split_routes[c.edge.index()] = vec![single.clone()];
        } else {
            let solo =
                solve_mcf_for(&sizing_topology, &[*c], McfKind::FlowMin, PathScope::AllPaths)
                    .expect("solo flow fits its own sizing");
            split_routes[c.edge.index()] = solo.tables.routes_of(c.edge).to_vec();
        }
    }

    DspDesign {
        minpath_bw: loads.max(),
        split_bw: best_target,
        minpath_tables,
        split_tables: RoutingTables::from_split_routes(split_routes),
        mapping,
        problem,
    }
}

/// Converts commodities + routing tables into simulator flows (the shared
/// mapping-layer → simulator bridge, re-exported here for the harnesses
/// and benches that grew around this module).
pub fn flows_from_tables(
    problem: &MappingProblem,
    mapping: &Mapping,
    tables: &RoutingTables,
) -> Vec<FlowSpec> {
    noc_dse::flows_from_tables(problem, mapping, tables)
}

/// Runs the full sweep.
pub fn run(config: &Fig5cConfig) -> Vec<Fig5cPoint> {
    run_probed(config, &noc_probe::Probe::default())
}

/// [`run`] with instrumentation attached: every point's simulator gets
/// the probe (cycle and wake-up counters). The probe observes only — the
/// points are byte-identical to an unprobed run.
pub fn run_probed(config: &Fig5cConfig, probe: &noc_probe::Probe) -> Vec<Fig5cPoint> {
    let design = design_dsp();
    config
        .bandwidths_mbps
        .iter()
        .map(|&bw| {
            let topology = Topology::mesh(3, 2, bw);
            let run_one = |tables: &RoutingTables| {
                let flows = flows_from_tables(&design.problem, &design.mapping, tables);
                let mut sim = Simulator::new(&topology, flows, config.sim.clone());
                sim.set_loop_kind(config.loop_kind);
                sim.set_probe(probe);
                let report = sim.run();
                (
                    report.avg_latency_cycles().to_f64(),
                    report.avg_network_latency_cycles().to_f64(),
                    report.saturated(),
                )
            };
            let (minpath_latency, minpath_network_latency, minpath_saturated) =
                run_one(&design.minpath_tables);
            let (split_latency, split_network_latency, split_saturated) =
                run_one(&design.split_tables);
            Fig5cPoint {
                bandwidth_mbps: bw,
                minpath_latency,
                split_latency,
                minpath_network_latency,
                split_network_latency,
                minpath_saturated,
                split_saturated,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_design_matches_table3_bandwidths() {
        // Table 3: "minp BW 600 MB/s, split BW 200 MB/s".
        let design = design_dsp();
        assert_eq!(design.minpath_bw, 600.0, "min-path BW");
        assert!((design.split_bw - 200.0).abs() < 1.0, "split BW {} (paper: 200)", design.split_bw);
    }

    #[test]
    fn hot_pair_lands_on_centre_nodes() {
        let design = design_dsp();
        let g = design.problem.cores();
        let fft = g.cores().find(|&c| g.name(c) == "fft").unwrap();
        let filter = g.cores().find(|&c| g.name(c) == "filter").unwrap();
        for core in [fft, filter] {
            let node = design.mapping.node_of(core).unwrap();
            assert_eq!(
                design.problem.topology().degree(node),
                3,
                "{} must sit on a degree-3 centre node",
                g.name(core)
            );
        }
    }

    #[test]
    fn hot_flows_split_three_ways() {
        let design = design_dsp();
        let commodities = design.problem.commodities(&design.mapping);
        for c in &commodities {
            let routes = design.split_tables.routes_of(c.edge);
            if c.value.to_f64() == 600.0 {
                assert_eq!(routes.len(), 3, "600 MB/s flow must split 3 ways");
                for r in routes {
                    assert!(c.value.to_f64() * r.fraction <= 200.0 + 1e-6);
                }
            } else {
                assert_eq!(routes.len(), 1, "200 MB/s flows stay single-path");
            }
        }
    }

    #[test]
    fn flows_cover_all_commodities() {
        let design = design_dsp();
        let flows = flows_from_tables(&design.problem, &design.mapping, &design.minpath_tables);
        assert_eq!(flows.len(), 8); // the DSP graph's 8 edges
        let total: f64 = flows.iter().map(|f| f.rate_mbps.to_f64()).sum();
        assert_eq!(total, 2_400.0); // 6x200 + 2x600
    }

    #[test]
    fn one_point_split_is_not_slower() {
        // Single fast spot check: at a tight bandwidth the split routing
        // should not be slower than min-path (the Figure 5(c) ordering).
        let config = Fig5cConfig {
            bandwidths_mbps: vec![1_200.0],
            sim: SimConfig {
                warmup_cycles: 2_000,
                measure_cycles: 30_000,
                drain_cycles: 10_000,
                ..SimConfig::default()
            },
            ..Fig5cConfig::default()
        };
        let points = run(&config);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.minpath_latency > 0.0 && p.split_latency > 0.0);
        assert!(
            p.split_latency <= p.minpath_latency * 1.05,
            "split {} vs minpath {}",
            p.split_latency,
            p.minpath_latency
        );
    }
}
