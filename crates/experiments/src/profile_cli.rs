//! Shared `--profile <path>` handling for the study binaries.
//!
//! The single-study harnesses (`fig5c_latency`, `search_ablation`, …)
//! take no arguments beyond an optional instrumentation-profile path;
//! this module gives them one parser and one writer so the flag behaves
//! identically everywhere: a live [`Probe`] only when a path was given,
//! JSON-lines output via [`noc_probe::Profile::to_jsonl`], and a
//! warning (plus an empty file) when the binary was built without the
//! `probe` cargo feature.

use noc_probe::Probe;

/// The parsed `--profile` flag plus the probe to thread through the run.
#[derive(Debug)]
pub struct ProfileFlag {
    /// Destination path (`None`: flag absent, probe disabled).
    pub path: Option<String>,
    /// Live when a path was given, disabled otherwise.
    pub probe: Probe,
}

impl ProfileFlag {
    /// Parses the process arguments, accepting only `--profile <path>`.
    ///
    /// # Errors
    ///
    /// A usage message on any other argument or a missing path operand.
    pub fn from_env(usage: &str) -> Result<Self, String> {
        let mut path = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--profile" => {
                    path = Some(args.next().ok_or(format!("--profile needs a path\n{usage}"))?);
                }
                other => return Err(format!("unexpected argument `{other}`\n{usage}")),
            }
        }
        let probe = if path.is_some() { Probe::new() } else { Probe::disabled() };
        Ok(Self { path, probe })
    }

    /// Writes the accumulated profile when a path was given. Without the
    /// `probe` cargo feature the hooks compile to no-ops: the file is
    /// still written (empty) and a warning explains why.
    ///
    /// # Errors
    ///
    /// A message when the file cannot be written.
    pub fn write(&self) -> Result<(), String> {
        let Some(path) = &self.path else { return Ok(()) };
        if !Probe::compiled() {
            eprintln!(
                "warning: built without the `probe` feature — the profile is empty \
(rebuild with --features probe)"
            );
        }
        std::fs::write(path, self.probe.snapshot().to_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    }
}
