//! Ablation of NMAP's search knobs (the design choices DESIGN.md §6
//! items 9 calls out): how much do extra sweeps and deterministic
//! restarts improve on the paper's literal single-descent configuration,
//! and what do they cost?

use std::time::{Duration, Instant};

use nmap::{map_single_path, SinglePathOptions};
use noc_apps::App;

use crate::{app_problem, GENEROUS_CAPACITY};

/// One (configuration × application) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Configuration label.
    pub config: &'static str,
    /// Application.
    pub app: App,
    /// Equation-7 cost reached.
    pub comm_cost: f64,
    /// Candidate placements evaluated.
    pub evaluations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The configurations compared: the paper's literal setting, passes-only
/// scaling, restarts-only scaling, and the crate default.
pub fn configurations() -> Vec<(&'static str, SinglePathOptions)> {
    vec![
        ("paper (1 pass, 1 start)", SinglePathOptions::paper_exact()),
        ("3 passes, 1 start", SinglePathOptions { passes: 3, restarts: 1 }),
        ("1 pass, 8 starts", SinglePathOptions { passes: 1, restarts: 8 }),
        ("default (2 passes, 8 starts)", SinglePathOptions::default()),
    ]
}

/// Runs every configuration on every video application.
pub fn run_all() -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for app in App::all() {
        let problem = app_problem(app, GENEROUS_CAPACITY);
        for (config, options) in configurations() {
            let start = Instant::now();
            let result = map_single_path(&problem, &options).expect("mesh routing succeeds");
            out.push(AblationPoint {
                config,
                app,
                comm_cost: result.comm_cost,
                evaluations: result.evaluations,
                elapsed: start.elapsed(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn richer_configurations_never_lose_on_pip() {
        let problem = app_problem(App::Pip, GENEROUS_CAPACITY);
        let mut last = f64::INFINITY;
        // Configurations are ordered weakest-to-strongest in terms of the
        // search they subsume pairwise with the paper baseline.
        let paper = map_single_path(&problem, &SinglePathOptions::paper_exact()).unwrap().comm_cost;
        let default = map_single_path(&problem, &SinglePathOptions::default()).unwrap().comm_cost;
        assert!(default <= paper + 1e-9);
        let _ = &mut last;
    }

    #[test]
    fn evaluations_scale_with_knobs() {
        let problem = app_problem(App::Pip, GENEROUS_CAPACITY);
        let one = map_single_path(&problem, &SinglePathOptions::paper_exact()).unwrap().evaluations;
        let eight = map_single_path(&problem, &SinglePathOptions { passes: 1, restarts: 8 })
            .unwrap()
            .evaluations;
        assert!(eight > one * 4, "restarts barely increased work: {one} -> {eight}");
    }
}
