//! Ablation of NMAP's search knobs (the design choices DESIGN.md §6
//! items 9 calls out): how much do extra sweeps and deterministic
//! restarts improve on the paper's literal single-descent configuration,
//! and what do they cost?
//!
//! A second axis ([`run_strategies`]) compares whole *search strategies*
//! through the [`nmap::search`] registry — the greedy descent family
//! against simulated annealing and tabu search, the direction Marcon et
//! al. (*Exploring NoC Mapping Strategies*) explore — all driving the
//! same O(deg) swap-delta kernel and the same Equation-7 cost.

use std::time::{Duration, Instant};

use nmap::{map_single_path_with, EvalContext, SinglePathOptions};
use noc_apps::App;
use noc_baselines::standard_registry;
use noc_probe::Probe;

use crate::{app_problem, GENEROUS_CAPACITY};

/// One (configuration × application) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Configuration label.
    pub config: &'static str,
    /// Application.
    pub app: App,
    /// Equation-7 cost reached.
    pub comm_cost: f64,
    /// Candidate placements evaluated.
    pub evaluations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The configurations compared: the paper's literal setting, passes-only
/// scaling, restarts-only scaling, and the crate default.
pub fn configurations() -> Vec<(&'static str, SinglePathOptions)> {
    vec![
        ("paper (1 pass, 1 start)", SinglePathOptions::paper_exact()),
        ("3 passes, 1 start", SinglePathOptions { passes: 3, restarts: 1 }),
        ("1 pass, 8 starts", SinglePathOptions { passes: 1, restarts: 8 }),
        ("default (2 passes, 8 starts)", SinglePathOptions::default()),
    ]
}

/// Runs every configuration on every video application.
pub fn run_all() -> Vec<AblationPoint> {
    run_all_probed(&Probe::default())
}

/// [`run_all`] with instrumentation attached: each configuration runs
/// through a probed [`EvalContext`] (evaluation and delta-gate
/// counters). Outcomes are identical to an unprobed run — a fresh
/// context per configuration, exactly like [`nmap::map_single_path`].
pub fn run_all_probed(probe: &Probe) -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for app in App::all() {
        let problem = app_problem(app, GENEROUS_CAPACITY);
        for (config, options) in configurations() {
            let mut ctx = EvalContext::new(&problem);
            ctx.set_probe(probe);
            let start = Instant::now();
            let result = map_single_path_with(&mut ctx, &options).expect("mesh routing succeeds");
            out.push(AblationPoint {
                config,
                app,
                comm_cost: result.comm_cost.to_f64(),
                evaluations: result.evaluations,
                elapsed: start.elapsed(),
            });
        }
    }
    out
}

/// One (search strategy × application) measurement through the
/// [`nmap::search::Mapper`] trait.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyPoint {
    /// Registry name of the strategy (`nmap-paper`, `sa`, ...).
    pub mapper: &'static str,
    /// Application.
    pub app: App,
    /// Equation-7 cost reached.
    pub comm_cost: f64,
    /// Whether the strategy's own regime found the placement feasible.
    pub feasible: bool,
    /// Candidate placements examined.
    pub evaluations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Seed for the stochastic strategies — fixed so the table reproduces.
const STRATEGY_SEED: u64 = 42;

/// The registry names compared by [`run_strategies`]: the descent family
/// plus the two kernel-powered searches (the constructive baselines are
/// covered by Figure 3; the split mappers by Table 3).
pub const STRATEGIES: [&str; 4] = ["nmap-paper", "nmap", "sa", "tabu"];

/// Runs every search strategy on every video application. Each strategy
/// gets a fresh [`EvalContext`] so every timed region pays its own
/// quadrant-DAG cache builds — the time column compares strategies, not
/// cache-warming order (outcomes are context-independent either way).
pub fn run_strategies() -> Vec<StrategyPoint> {
    run_strategies_probed(&Probe::default())
}

/// [`run_strategies`] with instrumentation attached: each strategy runs
/// through a probed [`EvalContext`], so the search counters and the
/// `sa.sample`/`tabu.sample` trajectory events land in the profile.
/// Outcomes are identical to an unprobed run.
pub fn run_strategies_probed(probe: &Probe) -> Vec<StrategyPoint> {
    let registry = standard_registry();
    let mut out = Vec::new();
    for app in App::all() {
        let problem = app_problem(app, GENEROUS_CAPACITY);
        for name in STRATEGIES {
            let mapper = registry.build(name, STRATEGY_SEED).expect("registered strategy");
            let mut ctx = EvalContext::new(&problem);
            ctx.set_probe(probe);
            let start = Instant::now();
            let outcome = mapper.map(&mut ctx).expect("mesh mapping succeeds");
            out.push(StrategyPoint {
                mapper: name,
                app,
                comm_cost: outcome.comm_cost.to_f64(),
                feasible: outcome.feasible,
                evaluations: outcome.evaluations,
                elapsed: start.elapsed(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmap::map_single_path;

    #[test]
    fn richer_configurations_never_lose_on_pip() {
        let problem = app_problem(App::Pip, GENEROUS_CAPACITY);
        let mut last = f64::INFINITY;
        // Configurations are ordered weakest-to-strongest in terms of the
        // search they subsume pairwise with the paper baseline.
        let paper = map_single_path(&problem, &SinglePathOptions::paper_exact()).unwrap().comm_cost;
        let default = map_single_path(&problem, &SinglePathOptions::default()).unwrap().comm_cost;
        assert!(default.to_f64() <= paper.to_f64() + 1e-9);
        let _ = &mut last;
    }

    #[test]
    fn strategy_sweep_covers_every_pair_and_stays_feasible() {
        let points = run_strategies();
        assert_eq!(points.len(), App::all().len() * STRATEGIES.len());
        for p in &points {
            assert!(p.feasible, "{:?}/{} infeasible at generous capacity", p.app, p.mapper);
            assert!(p.comm_cost > 0.0);
        }
        // Deterministic: the stochastic strategies are pinned by seed.
        let again = run_strategies();
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.comm_cost, b.comm_cost, "{}/{:?}", a.mapper, a.app);
        }
    }

    #[test]
    fn evaluations_scale_with_knobs() {
        let problem = app_problem(App::Pip, GENEROUS_CAPACITY);
        let one = map_single_path(&problem, &SinglePathOptions::paper_exact()).unwrap().evaluations;
        let eight = map_single_path(&problem, &SinglePathOptions { passes: 1, restarts: 8 })
            .unwrap()
            .evaluations;
        assert!(eight > one * 4, "restarts barely increased work: {one} -> {eight}");
    }
}
