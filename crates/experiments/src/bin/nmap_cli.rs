//! `nmap_cli` — map an application file onto a NoC from the command line.
//!
//! ```text
//! nmap_cli <app-file> [--mesh WxH | --torus WxH | --noc <file>]
//!          [--capacity MB/s] [--algorithm nmap|nmap-split|pmap|gmap|pbb]
//!          [--scope quadrant|all] [--dot]
//! ```
//!
//! The application file uses the `noc-graph` text format:
//!
//! ```text
//! core vld
//! comm vld run_le_dec 70
//! ```
//!
//! Without `--mesh`/`--torus`/`--noc`, the smallest square-ish mesh that
//! fits the application is used. Exit code 1 on bad input, 2 when the
//! chosen algorithm cannot satisfy the bandwidth constraints.

use std::process::ExitCode;

use nmap::{
    map_single_path, map_with_splitting, render_mapping_grid, routing, summarize, Mapping,
    MappingProblem, PathScope, SinglePathOptions, SplitOptions,
};
use noc_baselines::{gmap, pbb, pmap, PbbOptions};
use noc_graph::{mapping_dot, parse_core_graph, parse_topology, Topology};

#[derive(Debug)]
struct Args {
    app_path: String,
    topology: TopologyChoice,
    capacity: f64,
    algorithm: Algorithm,
    scope: PathScope,
    dot: bool,
}

#[derive(Debug)]
enum TopologyChoice {
    Fit,
    Mesh(usize, usize),
    Torus(usize, usize),
    File(String),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Algorithm {
    Nmap,
    NmapSplit,
    Pmap,
    Gmap,
    Pbb,
}

const USAGE: &str = "usage: nmap_cli <app-file> [--mesh WxH | --torus WxH | --noc <file>] \
[--capacity MB/s] [--algorithm nmap|nmap-split|pmap|gmap|pbb] [--scope quadrant|all] [--dot]";

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1);
    let mut app_path = None;
    let mut topology = TopologyChoice::Fit;
    let mut capacity = 1_000.0;
    let mut algorithm = Algorithm::Nmap;
    let mut scope = PathScope::AllPaths;
    let mut dot = false;

    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--mesh" | "--torus" => {
                let dims = raw.next().ok_or(format!("{arg} needs WxH"))?;
                let (w, h) = parse_dims(&dims)?;
                topology = if arg == "--mesh" {
                    TopologyChoice::Mesh(w, h)
                } else {
                    TopologyChoice::Torus(w, h)
                };
            }
            "--noc" => {
                topology = TopologyChoice::File(raw.next().ok_or("--noc needs a file path")?);
            }
            "--capacity" => {
                let text = raw.next().ok_or("--capacity needs a value")?;
                capacity = text.parse().map_err(|_| format!("bad capacity `{text}`"))?;
            }
            "--algorithm" => {
                let name = raw.next().ok_or("--algorithm needs a name")?;
                algorithm = match name.as_str() {
                    "nmap" => Algorithm::Nmap,
                    "nmap-split" => Algorithm::NmapSplit,
                    "pmap" => Algorithm::Pmap,
                    "gmap" => Algorithm::Gmap,
                    "pbb" => Algorithm::Pbb,
                    other => return Err(format!("unknown algorithm `{other}`")),
                };
            }
            "--scope" => {
                let name = raw.next().ok_or("--scope needs quadrant|all")?;
                scope = match name.as_str() {
                    "quadrant" => PathScope::Quadrant,
                    "all" => PathScope::AllPaths,
                    other => return Err(format!("unknown scope `{other}`")),
                };
            }
            "--dot" => dot = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if app_path.is_none() && !other.starts_with('-') => {
                app_path = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        app_path: app_path.ok_or(USAGE.to_string())?,
        topology,
        capacity,
        algorithm,
        scope,
        dot,
    })
}

fn parse_dims(text: &str) -> Result<(usize, usize), String> {
    let (w, h) = text.split_once('x').ok_or(format!("bad dimensions `{text}`, want WxH"))?;
    let w = w.parse().map_err(|_| format!("bad width `{w}`"))?;
    let h = h.parse().map_err(|_| format!("bad height `{h}`"))?;
    Ok((w, h))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(feasible) => {
            if feasible {
                ExitCode::SUCCESS
            } else {
                eprintln!("bandwidth constraints NOT satisfied");
                ExitCode::from(2)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let app_text = std::fs::read_to_string(&args.app_path)
        .map_err(|e| format!("cannot read {}: {e}", args.app_path))?;
    let graph = parse_core_graph(&app_text).map_err(|e| format!("{}: {e}", args.app_path))?;

    let topology = match &args.topology {
        TopologyChoice::Fit => {
            let (w, h) = Topology::fit_mesh_dims(graph.core_count());
            Topology::mesh(w, h, args.capacity)
        }
        TopologyChoice::Mesh(w, h) => Topology::mesh(*w, *h, args.capacity),
        TopologyChoice::Torus(w, h) => Topology::torus(*w, *h, args.capacity),
        TopologyChoice::File(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_topology(&text).map_err(|e| format!("{path}: {e}"))?
        }
    };

    let problem = MappingProblem::new(graph, topology).map_err(|e| e.to_string())?;

    let (mapping, loads): (Mapping, nmap::LinkLoads) = match args.algorithm {
        Algorithm::Nmap => {
            let out = map_single_path(&problem, &SinglePathOptions::default())
                .map_err(|e| e.to_string())?;
            (out.mapping, out.link_loads)
        }
        Algorithm::NmapSplit => {
            let out = map_with_splitting(&problem, &SplitOptions { scope: args.scope, passes: 1 })
                .map_err(|e| e.to_string())?;
            println!(
                "split routing: total flow {:.0}, slack {:.0}, up to {} paths per flow",
                out.total_flow,
                out.slack,
                out.tables.max_paths_per_commodity()
            );
            (out.mapping, out.link_loads)
        }
        Algorithm::Pmap | Algorithm::Gmap | Algorithm::Pbb => {
            let mapping = match args.algorithm {
                Algorithm::Pmap => pmap(&problem),
                Algorithm::Gmap => gmap(&problem),
                _ => pbb(&problem, &PbbOptions::default()).mapping,
            };
            let (_, loads) =
                routing::route_min_paths(&problem, &mapping).map_err(|e| e.to_string())?;
            (mapping, loads)
        }
    };

    println!("{}", render_mapping_grid(&problem, &mapping));
    print!("{}", summarize(&problem, &mapping, &loads));
    if args.dot {
        println!("\n{}", mapping_dot(problem.cores(), problem.topology(), &mapping.to_pairs()));
    }
    Ok(loads.within_capacity(problem.topology()))
}
