//! Regenerates Figure 3: communication cost of PMAP, GMAP, PBB and NMAP
//! on the six video applications.

use noc_experiments::report::{fmt, TextTable};
use noc_experiments::{fig3, GENEROUS_CAPACITY};

fn main() {
    println!("Figure 3 — communication cost (hops x MB/s) per mapping algorithm");
    println!("(uniform link capacity {GENEROUS_CAPACITY} MB/s for all algorithms)\n");
    let mut table = TextTable::new(["app", "PMAP", "GMAP", "PBB", "NMAP"]);
    for row in fig3::run_all() {
        table.row([
            row.app.name().to_string(),
            fmt(row.pmap, 0),
            fmt(row.gmap, 0),
            fmt(row.pbb, 0),
            fmt(row.nmap, 0),
        ]);
    }
    print!("{}", table.render());
}
