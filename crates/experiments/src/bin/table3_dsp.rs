//! Regenerates Table 3: DSP NoC design parameters (bandwidth rows
//! measured; area/delay rows echoed from the paper's ×pipes synthesis).

use noc_experiments::report::TextTable;
use noc_experiments::table3;

fn main() {
    println!("Table 3 — DSP NoC design results");
    println!("(area rows are paper constants; bandwidth rows recomputed)\n");
    let t = table3::run();
    let mut table = TextTable::new(["parameter", "value", "source"]);
    table.row(["NI area".into(), format!("{} mm2", t.ni_area_mm2), "paper".into()]);
    table.row(["SW area".into(), format!("{} mm2", t.switch_area_mm2), "paper".into()]);
    table.row(["SW delay".into(), format!("{} cy", t.switch_delay_cycles), "paper".into()]);
    table.row(["Pack. size".into(), format!("{} B", t.packet_bytes), "config".into()]);
    table.row(["minp BW".into(), format!("{:.0} MB/s", t.minpath_bw_mbps), "measured".into()]);
    table.row(["split BW".into(), format!("{:.0} MB/s", t.split_bw_mbps), "measured".into()]);
    print!("{}", table.render());
}
