//! Regenerates Table 1: cost and bandwidth ratios of the baselines vs
//! NMAP with split-traffic routing.

use noc_experiments::report::{fmt, TextTable};
use noc_experiments::table1;

fn main() {
    println!("Table 1 — cost ratio (cstr) and bandwidth ratio (bwr) vs NMAP");
    println!("(paper averages: cstr 1.47, bwr 2.13)\n");
    let (rows, avg) = table1::run_all();
    let mut table = TextTable::new(["app", "cstr", "bwr"]);
    for row in &rows {
        table.row([row.app.name().to_lowercase(), fmt(row.cstr, 2), fmt(row.bwr, 2)]);
    }
    table.row(["Avg".to_string(), fmt(avg.cstr, 2), fmt(avg.bwr, 2)]);
    print!("{}", table.render());
}
