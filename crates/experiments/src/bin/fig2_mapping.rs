//! Regenerates Figure 2: the VOPD core graph (2a), the 16-node NoC graph
//! (2b) and NMAP's mapping of one onto the other (2c), as Graphviz DOT
//! plus a text grid.

use nmap::{map_single_path, render_mapping_grid, MappingProblem, SinglePathOptions};
use noc_apps::vopd;
use noc_graph::{core_graph_dot, mapping_dot, topology_dot, Topology};

fn main() {
    let graph = vopd();
    let mesh = Topology::mesh(4, 4, 2_000.0);
    let problem = MappingProblem::new(graph, mesh).expect("VOPD fits a 4x4 mesh");
    let outcome =
        map_single_path(&problem, &SinglePathOptions::default()).expect("mesh routing succeeds");

    println!("=== Figure 2(a): VOPD core graph (DOT) ===");
    println!("{}", core_graph_dot(problem.cores()));
    println!("=== Figure 2(b): 16-node mesh NoC graph (DOT) ===");
    println!("{}", topology_dot(problem.topology()));
    println!("=== Figure 2(c): NMAP mapping (DOT) ===");
    println!("{}", mapping_dot(problem.cores(), problem.topology(), &outcome.mapping.to_pairs()));
    println!("=== Figure 2(c) as a text grid ===");
    println!("{}", render_mapping_grid(&problem, &outcome.mapping));
    println!("communication cost: {:.0} hops x MB/s", outcome.comm_cost);
}
