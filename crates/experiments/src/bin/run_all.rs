//! Runs every experiment in sequence (the full evaluation of Section 7).
//! Expect a few minutes of runtime in release mode; individual binaries
//! exist for each artifact.

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig2_mapping",
    "fig3_comm_cost",
    "fig4_bandwidth",
    "table1_ratios",
    "table2_scaling",
    "fig5c_latency",
    "table3_dsp",
    "routing_vs_ilp",
    "search_ablation",
    "topology_selection",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in BINARIES {
        println!("==================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
