//! Regenerates Figure 5(c): average packet latency vs link bandwidth for
//! the DSP filter NoC, single-path vs split-traffic routing.
//!
//! `--profile <path>` dumps the instrumentation profile (simulator cycle
//! and wake-up counters) as JSON lines; needs the `probe` cargo feature
//! for non-empty output.

use std::process::ExitCode;

use noc_experiments::fig5c::{run_probed, Fig5cConfig};
use noc_experiments::profile_cli::ProfileFlag;
use noc_experiments::report::{fmt, TextTable};

fn main() -> ExitCode {
    let flag = match ProfileFlag::from_env("usage: fig5c_latency [--profile <path>]") {
        Ok(flag) => flag,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    println!("Figure 5(c) — avg packet latency (cycles) vs link bandwidth, DSP NoC");
    println!("(wormhole simulator, 64 B packets, 7-cycle switch delay, bursty sources)\n");
    let points = run_probed(&Fig5cConfig::default(), &flag.probe);
    let mut table = TextTable::new([
        "BW (GB/s)",
        "Minp (cy)",
        "Split (cy)",
        "Minp net (cy)",
        "Split net (cy)",
        "notes",
    ]);
    for p in points {
        let mut notes = String::new();
        if p.minpath_saturated {
            notes.push_str("minp saturated ");
        }
        if p.split_saturated {
            notes.push_str("split saturated");
        }
        table.row([
            fmt(p.bandwidth_mbps / 1000.0, 1),
            fmt(p.minpath_latency, 1),
            fmt(p.split_latency, 1),
            fmt(p.minpath_network_latency, 1),
            fmt(p.split_network_latency, 1),
            notes.trim().to_string(),
        ]);
    }
    print!("{}", table.render());
    if let Err(msg) = flag.write() {
        eprintln!("error: {msg}");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
