//! Ablation for the Section 5 claim: the greedy `shortestpath()` routing
//! heuristic is close to the exact routing (LP bound) at a fraction of the
//! runtime.

use noc_experiments::report::{fmt, TextTable};
use noc_experiments::routing_ablation;

fn main() {
    println!("Routing ablation — greedy quadrant router vs LP lower bound");
    println!("(paper: heuristic within ~10% of ILP, seconds vs minutes)\n");
    let mut table = TextTable::new(["app", "greedy max load", "LP bound", "ratio", "greedy", "LP"]);
    for row in routing_ablation::run_all() {
        table.row([
            row.app.name().to_string(),
            fmt(row.heuristic_max_load, 0),
            fmt(row.lp_bound, 0),
            fmt(row.ratio, 3),
            format!("{:?}", row.heuristic_time),
            format!("{:?}", row.lp_time),
        ]);
    }
    print!("{}", table.render());
}
