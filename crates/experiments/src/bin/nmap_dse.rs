//! `nmap_dse` — drive the `noc-dse` design-space exploration engine.
//!
//! ```text
//! nmap_dse --smoke                  fast built-in sweep (CI health check)
//! nmap_dse --table2                 Table 2 scaling study through the engine
//! nmap_dse --torus-vs-mesh         torus wrap-link gain over meshes
//! nmap_dse --fig5c [--smoke]        Figure 5(c) latency sweep through the
//!                                   engine pool (--smoke: reduced cycles)
//! nmap_dse --mesh3d [--smoke]       2-D vs 3-D mapping cost/latency on the
//!                                   bundled apps (--smoke: reduced cycles)
//! nmap_dse --spec <file>            run a .dse sweep specification
//! nmap_dse --bench-json <path>      time cold vs warm stage-cache sweeps
//!                                   (fig5c + mesh3d rows) and write the
//!                                   snapshot as JSON
//! nmap_dse --bench-mcf <path>       time the MCF route stage of a capacity
//!                                   sweep under the dense seed solver, the
//!                                   sparse cold solver and the warm-started
//!                                   chain; write the snapshot as JSON
//! options:  --loop <kind>           simulator loop for --fig5c/--mesh3d:
//!                                   event-queue (default) | hybrid |
//!                                   active-set | full-scan
//!           --threads N             worker threads (default: all cores)
//!           --jsonl <path>          write records as JSON lines
//!           --csv <path>            write records as CSV
//!           --timing                include per-stage wall times in output
//!           --profile <path>        write the instrumentation profile as JSON
//!                                   lines (counters, histograms, run-log
//!                                   events; needs the `probe` cargo feature
//!                                   for non-empty output)
//!           --warm-lp               chain MCF route-stage LP bases across
//!                                   the bandwidth axis (dual-simplex warm
//!                                   starts; records stay byte-identical)
//!           --allow-failures        (--spec only) exit 0 even when scenarios fail
//! sharded sweeps (--spec only; any of these switches to the sharded engine):
//!           --resume <dir>          checkpoint shards under <dir> and skip
//!                                   shards already completed there; `--jsonl`
//!                                   streams shard by shard
//!           --cache-dir <dir>       persist the map-stage cache under <dir>
//!                                   for cross-run reuse
//!           --cache-mem-cap N       in-memory stage-cache byte budget
//!                                   (LRU eviction; default unbounded)
//!           --shard-size N          scenarios per shard (default 64)
//!           --shard-budget N        stop after executing N shards (exit 3;
//!                                   rerun with --resume to continue)
//! ```
//!
//! `--table2` prints the same values as `table2_scaling` and `--fig5c`
//! the same points as `fig5c_latency` (the sequential reference
//! harnesses); the sweeps themselves fan out across the worker pool.
//! Exit code 1 on bad input or a sweep containing failed scenarios —
//! pass `--allow-failures` for exploratory sweeps where does-not-fit
//! records are data rather than errors.

use std::process::ExitCode;

use noc_dse::{
    parse_spec, run_scenarios_cached, run_sweep_probed, run_sweep_sharded_with, EngineOptions,
    LoopKind, StageCache, SweepConfig, SweepReport,
};
use noc_experiments::dse_bridge::{
    fig5c_smoke_config, fig5c_via_engine_probed, table2_rows_from_records, table2_scenario_set,
    torus_vs_mesh_rows_from_records, torus_vs_mesh_set,
};
use noc_experiments::fig5c::Fig5cConfig;
use noc_experiments::mesh3d::{mesh3d_rows_from_records, mesh3d_spec};
use noc_experiments::report::{fmt, TextTable};
use noc_experiments::table2::Table2Config;
use noc_probe::Probe;

const USAGE: &str = "usage: nmap_dse (--smoke | --table2 | --torus-vs-mesh | --fig5c [--smoke] \
| --mesh3d [--smoke] | --spec <file> | --bench-json <path> | --bench-mcf <path>) [--loop <kind>] \
[--threads N] [--jsonl <path>] [--csv <path>] [--timing] [--profile <path>] [--warm-lp] \
[--allow-failures] [--resume <dir>] [--cache-dir <dir>] [--cache-mem-cap N] [--shard-size N] \
[--shard-budget N]";

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Smoke,
    Table2,
    TorusVsMesh,
    Fig5c,
    Mesh3d,
    Spec,
    Bench,
    BenchMcf,
}

#[derive(Debug)]
struct Args {
    mode: Mode,
    /// `--fig5c --smoke` / `--mesh3d --smoke`: reduced cycle counts.
    reduced: bool,
    /// `--loop`: simulator main loop for the simulation-backed studies
    /// (`None` keeps each study's default, the event-queue loop).
    loop_kind: Option<LoopKind>,
    spec_path: Option<String>,
    threads: usize,
    jsonl: Option<String>,
    csv: Option<String>,
    timing: bool,
    /// `--profile`: dump the instrumentation profile as JSON lines.
    profile: Option<String>,
    allow_failures: bool,
    /// `--resume`: checkpoint directory for sharded sweeps.
    resume: Option<String>,
    /// `--cache-dir`: on-disk stage-cache directory.
    cache_dir: Option<String>,
    /// `--shard-size`: scenarios per shard (`0` = engine default).
    shard_size: usize,
    /// `--shard-budget`: stop after executing this many shards.
    shard_budget: Option<usize>,
    /// `--bench-json`: output path of the cache benchmark snapshot.
    bench_json: Option<String>,
    /// `--bench-mcf`: output path of the MCF warm-start benchmark snapshot.
    bench_mcf: Option<String>,
    /// `--warm-lp`: dual-simplex warm starts across the bandwidth axis.
    warm_lp: bool,
    /// `--cache-mem-cap`: in-memory stage-cache byte budget.
    cache_mem_cap: Option<usize>,
}

impl Args {
    /// Any sharded-engine option present? (Routes `--spec` through
    /// [`run_sweep_sharded_with`] instead of the plain pool.)
    fn sharded(&self) -> bool {
        self.resume.is_some()
            || self.cache_dir.is_some()
            || self.cache_mem_cap.is_some()
            || self.shard_size != 0
            || self.shard_budget.is_some()
    }
}

/// Returns `Ok(None)` for `--help`/`-h` (print usage, exit 0).
fn parse_args() -> Result<Option<Args>, String> {
    let mut raw = std::env::args().skip(1);
    let mut modes = Vec::new();
    let mut loop_kind = None;
    let mut spec_path = None;
    let mut threads = 0usize;
    let mut jsonl = None;
    let mut csv = None;
    let mut timing = false;
    let mut profile = None;
    let mut allow_failures = false;
    let mut resume = None;
    let mut cache_dir = None;
    let mut shard_size = 0usize;
    let mut shard_budget = None;
    let mut bench_json = None;
    let mut bench_mcf = None;
    let mut warm_lp = false;
    let mut cache_mem_cap = None;

    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--smoke" => modes.push(Mode::Smoke),
            "--table2" => modes.push(Mode::Table2),
            "--torus-vs-mesh" => modes.push(Mode::TorusVsMesh),
            "--fig5c" => modes.push(Mode::Fig5c),
            "--mesh3d" => modes.push(Mode::Mesh3d),
            "--spec" => {
                modes.push(Mode::Spec);
                spec_path = Some(raw.next().ok_or("--spec needs a file path")?);
            }
            "--loop" => {
                let text = raw.next().ok_or("--loop needs a kind")?;
                loop_kind = Some(match text.as_str() {
                    "event-queue" => LoopKind::EventQueue,
                    "hybrid" => LoopKind::Hybrid,
                    "active-set" => LoopKind::ActiveSet,
                    "full-scan" => LoopKind::FullScan,
                    other => {
                        return Err(format!(
                            "unknown loop kind `{other}` \
                             (expected event-queue/hybrid/active-set/full-scan)"
                        ))
                    }
                });
            }
            "--threads" => {
                let text = raw.next().ok_or("--threads needs a count")?;
                threads = text.parse().map_err(|_| format!("bad thread count `{text}`"))?;
            }
            "--jsonl" => jsonl = Some(raw.next().ok_or("--jsonl needs a path")?),
            "--csv" => csv = Some(raw.next().ok_or("--csv needs a path")?),
            "--timing" => timing = true,
            "--profile" => profile = Some(raw.next().ok_or("--profile needs a path")?),
            "--allow-failures" => allow_failures = true,
            "--resume" => resume = Some(raw.next().ok_or("--resume needs a directory")?),
            "--cache-dir" => cache_dir = Some(raw.next().ok_or("--cache-dir needs a directory")?),
            "--shard-size" => {
                let text = raw.next().ok_or("--shard-size needs a count")?;
                shard_size = text.parse().map_err(|_| format!("bad shard size `{text}`"))?;
                if shard_size == 0 {
                    return Err("--shard-size must be at least 1".into());
                }
            }
            "--shard-budget" => {
                let text = raw.next().ok_or("--shard-budget needs a count")?;
                let n: usize = text.parse().map_err(|_| format!("bad shard budget `{text}`"))?;
                shard_budget = Some(n);
            }
            "--bench-json" => {
                modes.push(Mode::Bench);
                bench_json = Some(raw.next().ok_or("--bench-json needs a path")?);
            }
            "--bench-mcf" => {
                modes.push(Mode::BenchMcf);
                bench_mcf = Some(raw.next().ok_or("--bench-mcf needs a path")?);
            }
            "--warm-lp" => warm_lp = true,
            "--cache-mem-cap" => {
                let text = raw.next().ok_or("--cache-mem-cap needs a byte count")?;
                let n: usize =
                    text.parse().map_err(|_| format!("bad cache byte budget `{text}`"))?;
                cache_mem_cap = Some(n);
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    // `--smoke` doubles as the reduced-cycle-count modifier of `--fig5c`
    // and `--mesh3d`; every other combination of mode flags is ambiguous.
    let (mode, reduced) = match modes.as_slice() {
        [] => return Err(USAGE.to_string()),
        [m] => (*m, false),
        [Mode::Fig5c, Mode::Smoke] | [Mode::Smoke, Mode::Fig5c] => (Mode::Fig5c, true),
        [Mode::Mesh3d, Mode::Smoke] | [Mode::Smoke, Mode::Mesh3d] => (Mode::Mesh3d, true),
        _ => {
            return Err("choose exactly one of --smoke/--table2/--torus-vs-mesh/--fig5c\
                             /--mesh3d/--spec/--bench-json/--bench-mcf"
                .into())
        }
    };
    if loop_kind.is_some() && !matches!(mode, Mode::Fig5c | Mode::Mesh3d) {
        // Only the simulation-backed studies run a wormhole loop to pick.
        return Err("--loop is only valid with --fig5c/--mesh3d".into());
    }
    if allow_failures && mode != Mode::Spec {
        // The built-in sweeps treat failed scenarios as bugs; only
        // user-authored specs can legitimately contain infeasible points.
        return Err("--allow-failures is only valid with --spec".into());
    }
    if warm_lp && mode != Mode::Spec {
        // Warm starting only pays on user-authored MCF-routed bandwidth
        // sweeps; the built-in studies pin their own engine options.
        return Err("--warm-lp is only valid with --spec".into());
    }
    if mode == Mode::Fig5c && (jsonl.is_some() || csv.is_some() || timing) {
        // The fig5c sweep reports latency points, not scenario records.
        // (`--profile` stays valid: the instrumentation profile is
        // mode-independent.)
        return Err("--jsonl/--csv/--timing are not supported with --fig5c".into());
    }
    let args = Args {
        mode,
        reduced,
        loop_kind,
        spec_path,
        threads,
        jsonl,
        csv,
        timing,
        profile,
        allow_failures,
        resume,
        cache_dir,
        shard_size,
        shard_budget,
        bench_json,
        bench_mcf,
        warm_lp,
        cache_mem_cap,
    };
    if args.sharded() && mode != Mode::Spec {
        // Sharding/checkpointing keys on the scenario set of one spec;
        // the built-in studies post-process full record sets in order.
        return Err("--resume/--cache-dir/--cache-mem-cap/--shard-size/--shard-budget \
                    are only valid with --spec"
            .into());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    // A live probe only when a profile was requested — otherwise the
    // disabled handle, whose hooks are no-ops.
    let probe = if args.profile.is_some() { Probe::new() } else { Probe::disabled() };
    match run(&args, &probe) {
        Ok(code) => match write_profile(&args, &probe) {
            Ok(()) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(1)
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Writes the accumulated instrumentation profile when `--profile` was
/// given. Without the `probe` cargo feature the hooks compile to no-ops:
/// the file is still written (empty) and a warning explains why.
fn write_profile(args: &Args, probe: &Probe) -> Result<(), String> {
    let Some(path) = &args.profile else { return Ok(()) };
    if !Probe::compiled() {
        eprintln!(
            "warning: built without the `probe` feature — the profile is empty \
(rebuild with --features probe)"
        );
    }
    std::fs::write(path, probe.snapshot().to_jsonl())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn run(args: &Args, probe: &Probe) -> Result<ExitCode, String> {
    match args.mode {
        Mode::Table2 => {
            println!("Table 2 via noc-dse — PBB vs NMAP on random graphs (engine sweep)");
            println!("(values identical to the sequential table2_scaling harness)\n");
            let config = Table2Config::default();
            let report = sweep(&table2_scenario_set(&config), args, probe)?;
            let rows = table2_rows_from_records(&config, &report.records);
            let mut table = TextTable::new(["cores", "PBB", "NMAP", "ratio"]);
            for row in rows {
                table.row([
                    row.cores.to_string(),
                    fmt(row.pbb, 0),
                    fmt(row.nmap, 0),
                    fmt(row.ratio, 2),
                ]);
            }
            print!("{}", table.render());
            Ok(ExitCode::SUCCESS)
        }
        Mode::TorusVsMesh => {
            println!("Torus vs mesh — NMAP cost with and without wrap links\n");
            let report = sweep(&torus_vs_mesh_set(), args, probe)?;
            let rows = torus_vs_mesh_rows_from_records(&report.records);
            let mut table = TextTable::new(["app", "mesh", "torus", "mesh/torus"]);
            for row in rows {
                table.row([
                    row.app,
                    fmt(row.mesh_cost, 0),
                    fmt(row.torus_cost, 0),
                    fmt(row.gain, 2),
                ]);
            }
            print!("{}", table.render());
            Ok(ExitCode::SUCCESS)
        }
        Mode::Mesh3d => {
            println!("2-D vs 3-D — NMAP cost and simulated latency, fitted mesh vs mesh 4x4x2");
            if args.reduced {
                println!("(reduced simulation windows)");
            }
            println!();
            let mut spec = mesh3d_spec(args.reduced);
            if let Some(kind) = args.loop_kind {
                spec.simulate.as_mut().expect("mesh3d spec simulates").loop_kind = kind;
            }
            let report = sweep(&spec.scenarios(), args, probe)?;
            let rows = mesh3d_rows_from_records(&report.records);
            let mut table = TextTable::new([
                "app", "cores", "cost 2D", "cost 3D", "2D/3D", "lat 2D", "lat 3D", "notes",
            ]);
            for row in rows {
                table.row([
                    row.app,
                    row.cores.to_string(),
                    fmt(row.cost_2d, 0),
                    fmt(row.cost_3d, 0),
                    fmt(row.cost_gain, 2),
                    fmt(row.latency_2d, 1),
                    fmt(row.latency_3d, 1),
                    if row.saturated { "saturated".to_string() } else { String::new() },
                ]);
            }
            print!("{}", table.render());
            Ok(ExitCode::SUCCESS)
        }
        Mode::Fig5c => {
            let mut config =
                if args.reduced { fig5c_smoke_config() } else { Fig5cConfig::default() };
            if let Some(kind) = args.loop_kind {
                config.loop_kind = kind;
            }
            println!("Figure 5(c) via noc-dse — avg packet latency vs link bandwidth, DSP NoC");
            println!("(values identical to the sequential fig5c_latency harness)\n");
            let points = fig5c_via_engine_probed(&config, args.threads, probe);
            let mut table = TextTable::new(["BW (GB/s)", "Minp (cy)", "Split (cy)", "notes"]);
            for p in &points {
                let mut notes = String::new();
                if p.minpath_saturated {
                    notes.push_str("minp saturated ");
                }
                if p.split_saturated {
                    notes.push_str("split saturated");
                }
                table.row([
                    fmt(p.bandwidth_mbps / 1000.0, 1),
                    fmt(p.minpath_latency, 1),
                    fmt(p.split_latency, 1),
                    notes.trim().to_string(),
                ]);
            }
            print!("{}", table.render());
            Ok(ExitCode::SUCCESS)
        }
        Mode::Smoke => {
            for (label, text) in [("smoke", SMOKE_SPEC), ("smoke-split", SMOKE_SPLIT_SPEC)] {
                let spec = parse_spec(text).map_err(|e| format!("{label} spec: {e}"))?;
                let report = sweep(&spec.scenarios(), args, probe)?;
                let failed: Vec<_> = report.records.iter().filter(|r| !r.is_ok()).collect();
                if !failed.is_empty() {
                    return Err(format!(
                        "{} {label} scenarios failed, first: {}",
                        failed.len(),
                        failed[0].error
                    ));
                }
            }
            println!("smoke sweep OK (all registered mappers)");
            Ok(ExitCode::SUCCESS)
        }
        Mode::Spec => {
            let path = args.spec_path.as_deref().expect("set with --spec");
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
            // A successfully parsed spec always expands to at least one
            // scenario: parse_spec requires an app directive and the
            // builder default-fills every other axis.
            if args.sharded() {
                return sweep_sharded(&spec.scenarios(), args, probe);
            }
            let report = sweep(&spec.scenarios(), args, probe)?;
            check_failures(&report, args)?;
            Ok(ExitCode::SUCCESS)
        }
        Mode::Bench => bench(args),
        Mode::BenchMcf => bench_mcf(args),
    }
}

/// The `--spec` failure gate, shared by the plain and sharded paths.
fn check_failures(report: &SweepReport, args: &Args) -> Result<(), String> {
    let failed = report.records.iter().filter(|r| !r.is_ok()).count();
    if failed > 0 && !args.allow_failures {
        return Err(format!(
            "{failed} of {} scenarios failed (use --allow-failures if \
that is expected)",
            report.records.len()
        ));
    }
    Ok(())
}

/// Runs the sweep, writes requested outputs, prints the summary.
fn sweep(set: &noc_dse::ScenarioSet, args: &Args, probe: &Probe) -> Result<SweepReport, String> {
    println!("running {} scenarios...", set.len());
    let options = EngineOptions { threads: args.threads, warm_lp: args.warm_lp };
    let report = run_sweep_probed(set, &options, probe);
    if let Some(path) = &args.jsonl {
        std::fs::write(path, report.write_jsonl(args.timing))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, report.write_csv(args.timing))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    println!("{}", report.summary());
    Ok(report)
}

/// The sharded `--spec` path: stage-cached, optionally checkpointed and
/// budget-bounded (see DESIGN.md §18). `--jsonl` streams shard by shard
/// — an interrupted run leaves a valid prefix on disk. Exit code 3 when
/// a `--shard-budget` stopped the sweep before the last shard.
fn sweep_sharded(
    set: &noc_dse::ScenarioSet,
    args: &Args,
    probe: &Probe,
) -> Result<ExitCode, String> {
    use std::io::Write;

    let config = SweepConfig {
        threads: args.threads,
        shard_size: args.shard_size,
        checkpoint_dir: args.resume.as_ref().map(std::path::PathBuf::from),
        cache_dir: args.cache_dir.as_ref().map(std::path::PathBuf::from),
        shard_budget: args.shard_budget,
        warm_lp: args.warm_lp,
        cache_mem_cap: args.cache_mem_cap,
    };
    println!("running {} scenarios (sharded)...", set.len());
    let mut jsonl = match &args.jsonl {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Some((std::io::BufWriter::new(file), path.as_str()))
        }
        None => None,
    };
    let outcome = run_sweep_sharded_with(set, &config, probe, &mut |_, records| {
        if let Some((writer, _)) = &mut jsonl {
            for record in records {
                // Stream errors surface at flush below; the sweep itself
                // must not die mid-shard over a full disk.
                let _ = writeln!(writer, "{}", record.to_json(args.timing));
            }
            let _ = writer.flush();
        }
    })?;
    if let Some((mut writer, path)) = jsonl {
        writer
            .flush()
            .and_then(|()| writer.into_inner().map(drop).map_err(|e| e.into_error()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, outcome.report.write_csv(args.timing))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    let stats = &outcome.cache;
    println!(
        "shards: {} run, {} restored, {} total; map stages: {} computed, {} shared, {} from disk; \
{} cache evictions",
        outcome.shards_run,
        outcome.shards_restored,
        outcome.shards_total,
        stats.map_misses,
        stats.map_hits,
        stats.map_disk_hits,
        stats.evictions,
    );
    println!("{}", outcome.report.summary());
    check_failures(&outcome.report, args)?;
    if !outcome.completed {
        println!(
            "stopped by --shard-budget after {} shards; rerun with --resume to continue",
            outcome.shards_run
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

/// One row of the `--bench-json` snapshot.
struct BenchRow {
    name: &'static str,
    scenarios: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_map_misses: u64,
    cold_map_hits: u64,
    warm_hit_rate: f64,
}

/// `--bench-json`: times each study's sweep twice against one shared
/// [`StageCache`] — cold (empty cache) and warm (fully primed) — and
/// writes the wall times, speedup and hit rates as a JSON snapshot. The
/// warm records are asserted byte-identical to the cold ones, so the
/// speedup is never bought with a behavior change.
fn bench(args: &Args) -> Result<ExitCode, String> {
    use std::time::Instant;

    let path = args.bench_json.as_deref().expect("set with --bench-json");
    let fig5c_set = fig5c_bench_set();
    let mesh3d_set = noc_experiments::mesh3d::mesh3d_set(true);
    let search_set = search_bench_set();
    let mut rows = Vec::new();
    for (name, set) in
        [("fig5c", &fig5c_set), ("mesh3d", &mesh3d_set), ("search-mappers", &search_set)]
    {
        let cache = StageCache::in_memory();
        let probe = Probe::disabled();
        let start = Instant::now();
        let cold = run_scenarios_cached(set.scenarios(), args.threads, &probe, &cache);
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;
        let cold_stats = cache.stats();

        let start = Instant::now();
        let warm = run_scenarios_cached(set.scenarios(), args.threads, &probe, &cache);
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;
        let warm_stats = cache.stats();

        let cold_report = SweepReport::new(cold);
        let warm_report = SweepReport::new(warm);
        if cold_report.write_jsonl(false) != warm_report.write_jsonl(false) {
            return Err(format!("{name}: warm-cache records diverged from cold"));
        }
        let warm_lookups = (warm_stats.map_hits - cold_stats.map_hits)
            + (warm_stats.route_hits - cold_stats.route_hits);
        let total = 2 * set.len() as u64; // map + route lookups per scenario
        rows.push(BenchRow {
            name,
            scenarios: set.len(),
            cold_ms,
            warm_ms,
            cold_map_misses: cold_stats.map_misses,
            cold_map_hits: cold_stats.map_hits,
            warm_hit_rate: warm_lookups as f64 / total as f64,
        });
        println!(
            "{name}: {} scenarios, cold {cold_ms:.1} ms, warm {warm_ms:.1} ms ({:.1}x)",
            set.len(),
            cold_ms / warm_ms.max(1e-9),
        );
    }
    let mut out = String::from("{\n  \"bench\": \"dse_cache\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scenarios\": {}, \"cold_ms\": {:.2}, \
\"warm_ms\": {:.2}, \"speedup\": {:.2}, \"cold_map_misses\": {}, \
\"cold_map_hits\": {}, \"warm_hit_rate\": {:.3}}}{}\n",
            r.name,
            r.scenarios,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            r.cold_map_misses,
            r.cold_map_hits,
            r.warm_hit_rate,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(ExitCode::SUCCESS)
}

/// One row of the `--bench-mcf` snapshot: a routing scope timed under the
/// three solver configurations across the whole capacity sweep.
struct McfBenchRow {
    name: &'static str,
    instances: usize,
    points: usize,
    dense_ms: f64,
    sparse_ms: f64,
    warm_ms: f64,
    warm_hits: usize,
    pivots_saved: usize,
}

/// `--bench-mcf`: times the MCF route stage of a descending-capacity
/// bandwidth sweep (≥8 points per scope, two instances) under three solver
/// configurations on bit-identical LP instances — the seed's dense tableau
/// (`PivotMode::Dense`), the sparse cold solver, and the dual-simplex
/// warm-started chain — then writes the `mcf_warmstart` snapshot. Every
/// solution is asserted identical across all three configurations before a
/// single time is reported, so the speedups are never bought with a
/// behavior change.
///
/// The capacity axis is anchored per (instance, scope) at the min-max-load
/// optimum λ (the tightest uniform capacity the mapping can route under),
/// so every point is feasible and the sweep tightens toward the binding
/// regime where warm bases earn their keep.
fn bench_mcf(args: &Args) -> Result<ExitCode, String> {
    use std::time::Instant;

    use nmap::mcf::{solve_mcf_for, solve_mcf_for_with_options, solve_mcf_warm};
    use nmap::{McfKind, McfWarmState, PathScope};
    use noc_graph::{RandomGraphConfig, Topology};
    use noc_lp::{PivotMode, SimplexOptions};

    /// Capacity points as multiples of the min-max-load optimum λ.
    const CAP_FACTORS: [f64; 8] = [4.0, 3.0, 2.5, 2.0, 1.75, 1.5, 1.3, 1.15];
    /// Timed repetitions per configuration (the snapshot reports totals).
    const REPS: usize = 3;

    let path = args.bench_mcf.as_deref().expect("set with --bench-mcf");
    // Two chain instances (1-D meshes) of different sizes. Chains have
    // unique routing optima at every capacity point, so the uniqueness
    // guard admits the warm answer and the dual warm start lands hits
    // across the whole sweep; the 32-core chain's larger tableaux also
    // exercise the sparse pivot. 2-D meshes are deliberately absent: their
    // equal-hop alternative paths make optima non-unique, so the guard
    // refuses the chain and every point solves cold (see DESIGN.md §19).
    let instances: Vec<(&str, noc_graph::CoreGraph, [usize; 2])> = vec![
        ("chain-24", RandomGraphConfig { cores: 24, ..Default::default() }.generate(7), [24, 1]),
        ("chain-32", RandomGraphConfig { cores: 32, ..Default::default() }.generate(7), [32, 1]),
    ];
    let dense_options =
        SimplexOptions { pivot_mode: PivotMode::Dense, ..SimplexOptions::default() };
    let mut rows = Vec::new();
    for (name, scope) in [("mcf-quadrant", PathScope::Quadrant), ("mcf-all", PathScope::AllPaths)] {
        let mut row = McfBenchRow {
            name,
            instances: instances.len(),
            points: CAP_FACTORS.len(),
            dense_ms: 0.0,
            sparse_ms: 0.0,
            warm_ms: 0.0,
            warm_hits: 0,
            pivots_saved: 0,
        };
        for (label, graph, [cols, rows_dim]) in &instances {
            // The commodity set is capacity-invariant: derive it once from
            // the loosest topology and reuse it at every sweep point.
            let loose = Topology::mesh(*cols, *rows_dim, 1e9);
            let problem = nmap::MappingProblem::new(graph.clone(), loose)
                .map_err(|e| format!("{label}: {e}"))?;
            let mapping = nmap::initialize(&problem);
            let commodities = problem.commodities(&mapping);
            let lambda =
                solve_mcf_for(problem.topology(), &commodities, McfKind::MinMaxLoad, scope)
                    .map_err(|e| format!("{label}: min-max load: {e}"))?
                    .objective;
            let caps: Vec<f64> = CAP_FACTORS.iter().map(|f| f * lambda).collect();
            let sweep = |cap: f64| Topology::mesh(*cols, *rows_dim, cap);

            for _ in 0..REPS {
                let start = Instant::now();
                let dense: Vec<_> = caps
                    .iter()
                    .map(|&cap| {
                        solve_mcf_for_with_options(
                            &sweep(cap),
                            &commodities,
                            McfKind::FlowMin,
                            scope,
                            dense_options,
                        )
                    })
                    .collect();
                row.dense_ms += start.elapsed().as_secs_f64() * 1e3;

                let start = Instant::now();
                let sparse: Vec<_> = caps
                    .iter()
                    .map(|&cap| solve_mcf_for(&sweep(cap), &commodities, McfKind::FlowMin, scope))
                    .collect();
                row.sparse_ms += start.elapsed().as_secs_f64() * 1e3;

                let mut chain: Option<McfWarmState> = None;
                let mut warm = Vec::with_capacity(caps.len());
                let start = Instant::now();
                for &cap in &caps {
                    let (solution, next, stats) = solve_mcf_warm(
                        &sweep(cap),
                        &commodities,
                        McfKind::FlowMin,
                        scope,
                        chain.take(),
                    )
                    .map_err(|e| format!("{label} {name} at {cap:.1}: {e}"))?;
                    chain = Some(next);
                    row.warm_hits += usize::from(stats.warm_hit);
                    row.pivots_saved += stats.pivots_saved;
                    warm.push(solution);
                }
                row.warm_ms += start.elapsed().as_secs_f64() * 1e3;

                for (i, ((d, s), w)) in dense.iter().zip(&sparse).zip(&warm).enumerate() {
                    let d = d.as_ref().map_err(|e| format!("{label} {name}: dense: {e}"))?;
                    let s = s.as_ref().map_err(|e| format!("{label} {name}: sparse: {e}"))?;
                    if d != s || s != w {
                        return Err(format!(
                            "{label} {name}: solver configurations diverged at point {i}"
                        ));
                    }
                }
            }
        }
        println!(
            "{name}: dense {:.1} ms, sparse {:.1} ms ({:.1}x), warm {:.1} ms ({:.1}x, {} hits)",
            row.dense_ms,
            row.sparse_ms,
            row.dense_ms / row.sparse_ms.max(1e-9),
            row.warm_ms,
            row.dense_ms / row.warm_ms.max(1e-9),
            row.warm_hits,
        );
        rows.push(row);
    }
    let mut out = String::from("{\n  \"bench\": \"mcf_warmstart\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instances\": {}, \"points\": {}, \
\"dense_ms\": {:.2}, \"sparse_ms\": {:.2}, \"warm_ms\": {:.2}, \
\"sparse_speedup\": {:.2}, \"warm_speedup\": {:.2}, \
\"warm_hits\": {}, \"pivots_saved\": {}}}{}\n",
            r.name,
            r.instances,
            r.points,
            r.dense_ms,
            r.sparse_ms,
            r.warm_ms,
            r.dense_ms / r.sparse_ms.max(1e-9),
            r.dense_ms / r.warm_ms.max(1e-9),
            r.warm_hits,
            r.pivots_saved,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(ExitCode::SUCCESS)
}

/// The fig5c-class bench sweep: the DSP design mapped once per
/// (mapper, topology) cell and simulated across the Figure 5(c)
/// bandwidth axis under both cheap routings — the capacity-invariant
/// mappers let the stage cache share each mapping across the whole
/// routing × bandwidth product even on the cold pass.
fn fig5c_bench_set() -> noc_dse::ScenarioSet {
    noc_dse::ScenarioSet::builder()
        .root_seed(5)
        .dsp()
        .mapper(noc_dse::MapperSpec::NmapInit)
        .mapper(noc_dse::MapperSpec::Gmap)
        .routing(noc_dse::RoutingSpec::MinPath)
        .routing(noc_dse::RoutingSpec::Xy)
        .simulate(noc_dse::SimulateSpec {
            bandwidths_mbps: vec![
                noc_units::mbps(1_000.0),
                noc_units::mbps(1_200.0),
                noc_units::mbps(1_400.0),
                noc_units::mbps(1_600.0),
            ],
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            drain_cycles: 8_000,
            ..Default::default()
        })
        .build()
}

/// The map-stage-dominated bench sweep: the sa/tabu search mappers on
/// the bundled apps with no simulation stage. Here the map stage *is*
/// the sweep, so the warm/cold ratio isolates what the cache saves when
/// mapping work dominates (the fig5c/mesh3d rows are simulation-bound
/// and re-run their sim stage warm or cold).
fn search_bench_set() -> noc_dse::ScenarioSet {
    noc_dse::ScenarioSet::builder()
        .root_seed(5)
        .capacity(900.0)
        .all_apps()
        .mapper(noc_dse::MapperSpec::Sa(Default::default()))
        .mapper(noc_dse::MapperSpec::Tabu(Default::default()))
        .routing(noc_dse::RoutingSpec::MinPath)
        .routing(noc_dse::RoutingSpec::Xy)
        .build()
}

/// The built-in CI health-check sweep: small apps, both grid families,
/// **every registered mapper** (the full registry — NMAP family, the
/// sa/tabu searches, and the three baselines; asserted by a test below
/// so a new registry entry cannot be forgotten here), both cheap routing
/// regimes and a short wormhole-simulation stage. The split mappers are
/// the expensive rows, so they run on the DSP app only; every other
/// mapper crosses the whole app × topology × routing product.
const SMOKE_SPEC: &str = "\
# nmap_dse --smoke
capacity 800
seed 1
app pip
app dsp
random 9 1
topology fit
topology fit-torus
mapper nmap nmap-paper nmap-init pmap gmap pbb sa tabu
routing min-path xy
simulate {
  warmup 1000
  measure 5000
  drain 2000
}
";

/// The split-mapper leg of the smoke sweep: `nmap-split-*` solve O(n²)
/// LPs per run, so they smoke-test on the six-core DSP app alone.
const SMOKE_SPLIT_SPEC: &str = "\
# nmap_dse --smoke (split mappers)
capacity 800
seed 1
app dsp
topology fit
mapper nmap-split-quadrant nmap-split-all
routing min-path
simulate {
  warmup 1000
  measure 5000
  drain 2000
}
";

#[cfg(test)]
mod tests {
    use super::{SMOKE_SPEC, SMOKE_SPLIT_SPEC};

    /// The CI smoke sweep must exercise every mapper in the workspace
    /// registry: a registry entry missing from both smoke specs (or a
    /// smoke mapper that fell out of the registry) fails here.
    #[test]
    fn smoke_specs_cover_the_whole_mapper_registry() {
        let mut smoke_names: Vec<String> = Vec::new();
        for text in [SMOKE_SPEC, SMOKE_SPLIT_SPEC] {
            let spec = noc_dse::parse_spec(text).expect("smoke specs parse");
            smoke_names.extend(spec.mappers.iter().map(|m| m.name()));
        }
        smoke_names.sort();
        smoke_names.dedup();
        let mut registry_names: Vec<String> =
            noc_baselines::standard_registry().names().map(str::to_string).collect();
        registry_names.sort();
        assert_eq!(smoke_names, registry_names);
    }
}
