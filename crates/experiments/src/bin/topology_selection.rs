//! Design-space exploration across fabrics (the paper's future-work
//! extension): run NMAP over mesh/torus candidates for every video app
//! and report the selected topology.

use noc_apps::App;
use noc_experiments::report::{fmt, TextTable};
use noc_experiments::topology_selection::{best_by_cost, explore};

fn main() {
    for app in App::all() {
        println!("== {app} ==");
        let results = explore(app);
        let mut table =
            TextTable::new(["fabric", "nodes", "links", "cost", "BW minp", "BW split", "time"]);
        for r in &results {
            table.row([
                r.fabric.clone(),
                r.nodes.to_string(),
                r.links.to_string(),
                fmt(r.comm_cost, 0),
                fmt(r.bw_single, 0),
                fmt(r.bw_split, 0),
                format!("{:.0?}", r.elapsed),
            ]);
        }
        print!("{}", table.render());
        if let Some(best) = best_by_cost(&results) {
            println!("selected: {} (cost {:.0})\n", best.fabric, best.comm_cost);
        }
    }
}
