//! Ablation: NMAP search effort (passes/restarts) vs mapping quality,
//! across the six video applications, plus the search-strategy
//! comparison (descent vs simulated annealing vs tabu) through the
//! `nmap::search` registry.
//!
//! `--profile <path>` dumps the instrumentation profile (search
//! counters, `sa.sample`/`tabu.sample` trajectory events) as JSON lines;
//! needs the `probe` cargo feature for non-empty output.

use std::process::ExitCode;

use noc_experiments::profile_cli::ProfileFlag;
use noc_experiments::report::{fmt, TextTable};
use noc_experiments::search_ablation::{run_all_probed, run_strategies_probed};

fn main() -> ExitCode {
    let flag = match ProfileFlag::from_env("usage: search_ablation [--profile <path>]") {
        Ok(flag) => flag,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    println!("NMAP search ablation — cost / evaluations / time per configuration\n");
    let mut table = TextTable::new(["app", "configuration", "cost", "evals", "time"]);
    for point in run_all_probed(&flag.probe) {
        table.row([
            point.app.name().to_string(),
            point.config.to_string(),
            fmt(point.comm_cost, 0),
            point.evaluations.to_string(),
            format!("{:.1?}", point.elapsed),
        ]);
    }
    print!("{}", table.render());
    println!("\nthe paper's single-descent configuration is the first row of each group;");
    println!("restarts recover most of the gap to PBB at negligible cost.");

    println!("\nSearch strategies via the mapper registry — same swap-delta kernel\n");
    let mut table = TextTable::new(["app", "mapper", "cost", "evals", "time"]);
    for point in run_strategies_probed(&flag.probe) {
        table.row([
            point.app.name().to_string(),
            point.mapper.to_string(),
            fmt(point.comm_cost, 0),
            point.evaluations.to_string(),
            format!("{:.1?}", point.elapsed),
        ]);
    }
    print!("{}", table.render());
    println!("\nsa/tabu are seeded and deterministic; all strategies score Equation-7 cost");
    println!("with min-path feasibility, so rows are directly comparable.");
    if let Err(msg) = flag.write() {
        eprintln!("error: {msg}");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
