//! Regenerates Table 2: PBB vs NMAP communication cost on random graphs
//! of 25–65 cores.

use noc_experiments::report::{fmt, TextTable};
use noc_experiments::table2::{run, Table2Config};

fn main() {
    println!("Table 2 — communication cost on random graphs, PBB vs NMAP");
    println!("(paper ratios: 1.54, 1.61, 1.85, 1.69, 1.76)\n");
    let rows = run(&Table2Config::default());
    let mut table = TextTable::new(["cores", "PBB", "NMAP", "ratio"]);
    for row in rows {
        table.row([row.cores.to_string(), fmt(row.pbb, 0), fmt(row.nmap, 0), fmt(row.ratio, 2)]);
    }
    print!("{}", table.render());
}
