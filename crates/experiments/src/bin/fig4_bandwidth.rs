//! Regenerates Figure 4: minimum link bandwidth needed by each
//! algorithm/routing combination on the six video applications.

use noc_experiments::fig4;
use noc_experiments::report::{fmt, TextTable};

fn main() {
    println!("Figure 4 — minimum link bandwidth needed (MB/s)");
    println!("(D* = dimension-ordered routing; NMAPTM/NMAPTA = split over min/all paths)\n");
    let mut table =
        TextTable::new(["app", "DPMAP", "DGMAP", "PMAP", "GMAP", "NMAP", "NMAPTM", "NMAPTA"]);
    for row in fig4::run_all() {
        table.row([
            row.app.name().to_string(),
            fmt(row.dpmap, 0),
            fmt(row.dgmap, 0),
            fmt(row.pmap, 0),
            fmt(row.gmap, 0),
            fmt(row.nmap, 0),
            fmt(row.nmaptm, 0),
            fmt(row.nmapta, 0),
        ]);
    }
    print!("{}", table.render());
}
