//! Table 2: communication-cost scaling on random graphs — PBB vs NMAP as
//! the core count grows from 25 to 65.
//!
//! The paper generated the graphs with LEDA; we use the seeded generator
//! of [`noc_graph::random`] (DESIGN.md substitution table). For each size
//! several instances are generated and the costs averaged, which smooths
//! instance-to-instance noise without changing the trend the table shows:
//! PBB's bounded search degrades as the tree widens, NMAP keeps winning
//! by larger factors.

use nmap::{map_single_path, MappingProblem, SinglePathOptions};
use noc_baselines::{pbb, PbbOptions};
use noc_graph::{RandomGraphConfig, RandomGraphFamily, Topology};

use crate::UNLIMITED_CAPACITY;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Number of cores.
    pub cores: usize,
    /// Mean PBB communication cost over the instances.
    pub pbb: f64,
    /// Mean NMAP (single-path) communication cost.
    pub nmap: f64,
    /// `pbb / nmap`.
    pub ratio: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Config {
    /// Core counts to sweep (paper: 25, 35, 45, 55, 65).
    pub sizes: Vec<usize>,
    /// Random instances per size (averaged).
    pub instances: u64,
    /// PBB search budget.
    pub pbb: PbbOptions,
}

impl Default for Table2Config {
    /// The PBB budget is scaled to the paper's setting: PBB "ran for few
    /// minutes" on 2004-era hardware, which corresponds to a few seconds
    /// of today's compute — about 50 000 expansions with a 5 000-entry
    /// queue. (With today's full default budget PBB narrows the gap; see
    /// EXPERIMENTS.md for both readings.)
    fn default() -> Self {
        Self {
            sizes: vec![25, 35, 45, 55, 65],
            instances: 3,
            pbb: PbbOptions { max_queue: 5_000, max_expansions: 50_000 },
        }
    }
}

/// Runs the sweep.
pub fn run(config: &Table2Config) -> Vec<Table2Row> {
    let family = RandomGraphFamily::new(RandomGraphConfig::default());
    config
        .sizes
        .iter()
        .map(|&cores| {
            let mut pbb_sum = 0.0;
            let mut nmap_sum = 0.0;
            for instance in 0..config.instances {
                let graph = family.graph(cores, instance);
                let (w, h) = Topology::fit_mesh_dims(cores);
                let problem = MappingProblem::new(graph, Topology::mesh(w, h, UNLIMITED_CAPACITY))
                    .expect("generated graph fits");
                pbb_sum += pbb(&problem, &config.pbb).comm_cost.to_f64();
                nmap_sum += map_single_path(&problem, &SinglePathOptions::default())
                    .expect("mesh routing succeeds")
                    .comm_cost
                    .to_f64();
            }
            let pbb_avg = pbb_sum / config.instances as f64;
            let nmap_avg = nmap_sum / config.instances as f64;
            Table2Row { cores, pbb: pbb_avg, nmap: nmap_avg, ratio: pbb_avg / nmap_avg }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmap_beats_truncated_pbb_on_a_25_core_instance() {
        // A single small-size spot check with a reduced PBB budget so the
        // test stays fast; the full sweep runs in the binary/bench.
        let config = Table2Config {
            sizes: vec![25],
            instances: 1,
            pbb: PbbOptions { max_queue: 2_000, max_expansions: 20_000 },
        };
        let rows = run(&config);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ratio >= 1.0, "ratio {} — NMAP should win at scale", rows[0].ratio);
        assert!(rows[0].nmap > 0.0);
    }
}
