//! Table 1: per-application ratios of the baselines' cost and bandwidth
//! requirements to NMAP's (split-traffic) requirements.
//!
//! `cstr` — average communication cost of {PMAP, GMAP, PBB} divided by
//! NMAP's cost (the paper reports an average of 1.47, i.e. ≈32% cost
//! reduction).
//!
//! `bwr` — average minimum bandwidth of the baselines under their own
//! routing (PMAP/GMAP with min-path routing, plus PBB's min-path
//! bandwidth) divided by NMAP's split-traffic bandwidth (NMAPTA); the
//! paper reports an average of 2.13, i.e. ≈53% bandwidth savings.

use nmap::{map_single_path, mcf::solve_mcf, routing, McfKind, PathScope, SinglePathOptions};
use noc_apps::App;
use noc_baselines::{gmap, pbb, pmap, PbbOptions};

use crate::{app_problem, fig3, GENEROUS_CAPACITY, UNLIMITED_CAPACITY};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Application name.
    pub app: App,
    /// Cost ratio (baseline average / NMAP).
    pub cstr: f64,
    /// Bandwidth ratio (baseline average / NMAP split-traffic).
    pub bwr: f64,
}

/// Computes one application's ratios.
pub fn run_app(app: App) -> Table1Row {
    // Cost side: reuse the Figure 3 pipeline (generous shared capacity).
    let costs = fig3::run_app(app);
    let cstr = (costs.pmap + costs.gmap + costs.pbb) / 3.0 / costs.nmap;

    // Bandwidth side: minimum bandwidth under each algorithm's mapping
    // with single-path routing, vs NMAP with all-path splitting.
    let problem = app_problem(app, UNLIMITED_CAPACITY);
    let (_, pmap_loads) = routing::route_min_paths(&problem, &pmap(&problem)).expect("mesh");
    let (_, gmap_loads) = routing::route_min_paths(&problem, &gmap(&problem)).expect("mesh");
    let feasibility_problem = app_problem(app, GENEROUS_CAPACITY);
    let pbb_mapping = pbb(&feasibility_problem, &PbbOptions::default()).mapping;
    let (_, pbb_loads) = routing::route_min_paths(&problem, &pbb_mapping).expect("mesh");
    let nmap_out =
        map_single_path(&problem, &SinglePathOptions::default()).expect("mesh routing succeeds");
    let nmapta = solve_mcf(&problem, &nmap_out.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)
        .expect("min-max LP is always feasible")
        .objective;

    let baseline_avg = (pmap_loads.max() + gmap_loads.max() + pbb_loads.max()) / 3.0;
    Table1Row { app, cstr, bwr: baseline_avg / nmapta }
}

/// Computes the whole table plus the average row.
pub fn run_all() -> (Vec<Table1Row>, Table1Row) {
    let rows: Vec<Table1Row> = App::all().into_iter().map(run_app).collect();
    let n = rows.len() as f64;
    let avg = Table1Row {
        app: App::Mpeg4, // placeholder tag for the average row
        cstr: rows.iter().map(|r| r.cstr).sum::<f64>() / n,
        bwr: rows.iter().map(|r| r.bwr).sum::<f64>() / n,
    };
    (rows, avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_favor_nmap_on_pip() {
        // PBB near-exhausts the search space on 8 cores and may edge out
        // NMAP slightly ("for small number of cores, PBB gives good
        // performance, comparable to NMAP"), so the cost ratio is allowed
        // a little below 1; the bandwidth ratio must favor splitting.
        let row = run_app(App::Pip);
        assert!(row.cstr >= 0.9, "cstr {} — baselines far better than NMAP", row.cstr);
        assert!(row.bwr >= 1.0 - 1e-9, "bwr {} < 1: baselines need less BW", row.bwr);
    }
}
