//! Figure 3: communication cost (hops × bandwidth) of the four mapping
//! algorithms on the six video applications, under identical (generous)
//! bandwidth constraints.

use nmap::{map_single_path, SinglePathOptions};
use noc_apps::App;
use noc_baselines::{gmap, pbb, pmap, PbbOptions};

use crate::{app_problem, GENEROUS_CAPACITY};

/// One bar group of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Application name.
    pub app: App,
    /// PMAP communication cost (Equation 7).
    pub pmap: f64,
    /// GMAP communication cost.
    pub gmap: f64,
    /// PBB communication cost.
    pub pbb: f64,
    /// NMAP (single-minimum-path) communication cost.
    pub nmap: f64,
}

/// Computes one application's costs.
pub fn run_app(app: App) -> Fig3Row {
    let problem = app_problem(app, GENEROUS_CAPACITY);
    let pmap_cost = problem.comm_cost(&pmap(&problem));
    let gmap_cost = problem.comm_cost(&gmap(&problem));
    let pbb_out = pbb(&problem, &PbbOptions::default());
    let nmap_out =
        map_single_path(&problem, &SinglePathOptions::default()).expect("mesh routing succeeds");
    Fig3Row {
        app,
        pmap: pmap_cost.to_f64(),
        gmap: gmap_cost.to_f64(),
        pbb: pbb_out.comm_cost.to_f64(),
        nmap: nmap_out.comm_cost.to_f64(),
    }
}

/// Computes the full figure (all six applications).
pub fn run_all() -> Vec<Fig3Row> {
    App::all().into_iter().map(run_app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pip_costs_are_ordered_like_the_paper() {
        // On the smallest app, NMAP and PBB should both be at least as
        // good as the two greedy baselines — the qualitative claim of
        // Figure 3.
        let row = run_app(App::Pip);
        assert!(row.nmap <= row.pmap + 1e-9, "NMAP {} vs PMAP {}", row.nmap, row.pmap);
        assert!(row.nmap <= row.gmap + 1e-9, "NMAP {} vs GMAP {}", row.nmap, row.gmap);
        assert!(row.pbb <= row.pmap + 1e-9, "PBB {} vs PMAP {}", row.pbb, row.pmap);
    }

    #[test]
    fn costs_are_bounded_below_by_total_bandwidth() {
        let row = run_app(App::Pip);
        let lb = App::Pip.core_graph().total_bandwidth().to_f64();
        for cost in [row.pmap, row.gmap, row.pbb, row.nmap] {
            assert!(cost >= lb - 1e-9, "cost {cost} below 1-hop bound {lb}");
        }
    }
}
