//! Ablation for the Section 5 claim that the greedy `shortestpath()`
//! heuristic is close to the exact (ILP) routing while being much faster.
//!
//! The exact integral routing ILP is NP-hard; its LP relaxation — the
//! min-max-load MCF restricted to each commodity's quadrant — is a *lower
//! bound* on any single-path routing's maximum link load. We therefore
//! report `heuristic_max_load / lp_bound ≥ 1`: a ratio of 1.10 means the
//! greedy router is provably within 10% of the unknown ILP optimum
//! (mirroring the paper's "within 10% of the solution from ILP"), along
//! with the wall-clock times of both.

use std::time::{Duration, Instant};

use nmap::{initialize, mcf::solve_mcf, routing, McfKind, PathScope};
use noc_apps::App;

use crate::{app_problem, UNLIMITED_CAPACITY};

/// One application's heuristic-vs-LP comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Application.
    pub app: App,
    /// Max link load of the greedy quadrant router (MB/s).
    pub heuristic_max_load: f64,
    /// LP lower bound on any minimal-path routing's max load (MB/s).
    pub lp_bound: f64,
    /// `heuristic / bound` (≥ 1; 1.10 ⇒ provably within 10% of the ILP).
    pub ratio: f64,
    /// Greedy routing time.
    pub heuristic_time: Duration,
    /// LP solve time.
    pub lp_time: Duration,
}

/// Runs the comparison for one application, routing on the `initialize()`
/// placement (the routing quality question is independent of the swap
/// loop).
pub fn run_app(app: App) -> AblationRow {
    let problem = app_problem(app, UNLIMITED_CAPACITY);
    let mapping = initialize(&problem);

    let t0 = Instant::now();
    let (_, loads) = routing::route_min_paths(&problem, &mapping).expect("mesh");
    let heuristic_time = t0.elapsed();

    let t1 = Instant::now();
    let lp = solve_mcf(&problem, &mapping, McfKind::MinMaxLoad, PathScope::Quadrant)
        .expect("min-max LP is always feasible");
    let lp_time = t1.elapsed();

    let heuristic_max_load = loads.max();
    let lp_bound = lp.objective;
    AblationRow {
        app,
        heuristic_max_load,
        lp_bound,
        ratio: heuristic_max_load / lp_bound,
        heuristic_time,
        lp_time,
    }
}

/// Runs the comparison for all six applications.
pub fn run_all() -> Vec<AblationRow> {
    App::all().into_iter().map(run_app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_never_beats_the_lower_bound() {
        let row = run_app(App::Pip);
        assert!(row.ratio >= 1.0 - 1e-9, "ratio {} < 1 is impossible", row.ratio);
    }

    #[test]
    fn heuristic_is_reasonably_tight_on_pip() {
        let row = run_app(App::Pip);
        assert!(
            row.ratio <= 2.0,
            "greedy router {}x the LP bound — far off the paper's ~10% claim",
            row.ratio
        );
    }
}
