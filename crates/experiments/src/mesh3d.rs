//! 2-D vs 3-D mapping study (`nmap_dse --mesh3d`): what stacking the
//! fabric into a third dimension buys each bundled application.
//!
//! 3-D NoCs are the canonical next workload for mapping algorithms (Jha
//! et al., *Estimation of Optimized Energy and Latency Constraints for
//! Task Allocation in 3D Network on Chip* and the companion homogeneous
//! 3-D NoC mapping paper): shorter average hop distances at equal node
//! count, at the price of vertical (TSV) links. With the dimension-generic
//! grid abstraction the whole pipeline — NMAP placement, minimum-path
//! routing over orthant DAGs, and the wormhole simulator — runs on 3-D
//! grids unchanged, so the study is a plain `.dse` sweep: every bundled
//! application on its fitted 2-D mesh and on a `4x4x2` 3-D mesh, mapped
//! by NMAP, routed min-path, then simulated to measure packet latency.
//!
//! The spec is text (see [`MESH3D_SPEC`]) rather than builder calls on
//! purpose: it doubles as an end-to-end test that a 3-D scenario flows
//! from the `.dse` grammar through map → route → simulate.

use noc_dse::{parse_spec, RunRecord, ScenarioSet, SweepSpec};

/// The full study: six bundled applications × {fitted 2-D mesh, 4x4x2
/// 3-D mesh}, NMAP + min-path, simulation at the spec's capacity.
pub const MESH3D_SPEC: &str = "\
# nmap_dse --mesh3d: 2-D vs 3-D mapping cost and latency
capacity 2000
seed 7
app all
topology fit
topology mesh 4x4x2
mapper nmap
routing min-path
simulate {
  warmup 20000
  measure 100000
  drain 30000
}
";

/// The reduced CI configuration (`--mesh3d --smoke`): same scenario
/// shape, shorter simulation windows.
pub const MESH3D_SMOKE_SPEC: &str = "\
# nmap_dse --mesh3d --smoke
capacity 2000
seed 7
app all
topology fit
topology mesh 4x4x2
mapper nmap
routing min-path
simulate {
  warmup 1000
  measure 5000
  drain 2000
}
";

/// Parses the (smoke or full) study spec.
///
/// # Panics
///
/// Panics if the embedded spec text stops parsing — a build-time bug,
/// caught by the tests below.
pub fn mesh3d_spec(smoke: bool) -> SweepSpec {
    let text = if smoke { MESH3D_SMOKE_SPEC } else { MESH3D_SPEC };
    parse_spec(text).expect("embedded mesh3d spec parses")
}

/// The expanded scenario set of [`mesh3d_spec`].
pub fn mesh3d_set(smoke: bool) -> ScenarioSet {
    mesh3d_spec(smoke).scenarios()
}

/// One application's 2-D vs 3-D comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh3dRow {
    /// Application name.
    pub app: String,
    /// Number of cores.
    pub cores: usize,
    /// NMAP communication cost on the fitted 2-D mesh.
    pub cost_2d: f64,
    /// NMAP communication cost on the 4x4x2 3-D mesh.
    pub cost_3d: f64,
    /// `cost_2d / cost_3d` (> 1 when the third dimension helps).
    pub cost_gain: f64,
    /// Mean simulated packet latency on the 2-D mesh (cycles).
    pub latency_2d: f64,
    /// Mean simulated packet latency on the 3-D mesh (cycles).
    pub latency_3d: f64,
    /// Either fabric saturated during measurement (latency not meaningful).
    pub saturated: bool,
}

/// Folds the engine records of [`mesh3d_set`] into study rows (2-D/3-D
/// record pairs in scenario order).
///
/// # Panics
///
/// Panics if `records` does not match the shape of [`mesh3d_set`] or
/// contains failed or simulation-less scenarios.
pub fn mesh3d_rows_from_records(records: &[RunRecord]) -> Vec<Mesh3dRow> {
    assert_eq!(records.len() % 2, 0, "records must be 2-D/3-D pairs");
    records
        .chunks_exact(2)
        .map(|pair| {
            let (flat, cube) = (&pair[0], &pair[1]);
            assert!(flat.is_ok() && cube.is_ok(), "bundled apps always fit both fabrics");
            assert_eq!(
                flat.topology.matches('x').count(),
                1,
                "unexpected order: {} should be the 2-D record",
                flat.topology
            );
            assert_eq!(cube.topology, "mesh4x4x2", "unexpected order: {}", cube.topology);
            let flat_sim = flat.sim.as_ref().expect("simulate stage enabled");
            let cube_sim = cube.sim.as_ref().expect("simulate stage enabled");
            Mesh3dRow {
                app: flat.scenario.clone(),
                cores: flat.cores,
                cost_2d: flat.comm_cost.to_f64(),
                cost_3d: cube.comm_cost.to_f64(),
                cost_gain: flat.comm_cost.to_f64() / cube.comm_cost.to_f64(),
                latency_2d: flat_sim.avg_latency_cycles.to_f64(),
                latency_3d: cube_sim.avg_latency_cycles.to_f64(),
                saturated: flat_sim.saturated || cube_sim.saturated,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_dse::TopologySpec;

    #[test]
    fn specs_parse_and_have_the_expected_shape() {
        for smoke in [false, true] {
            let spec = mesh3d_spec(smoke);
            assert_eq!(spec.apps.len(), 6, "all six bundled applications");
            assert_eq!(
                spec.topologies,
                vec![TopologySpec::FitMesh, TopologySpec::Mesh { dims: vec![4, 4, 2] }],
            );
            assert!(spec.simulate.is_some(), "latency needs the simulate stage");
            let set = spec.scenarios();
            assert_eq!(set.len(), 12, "6 apps x 2 fabrics");
        }
    }

    #[test]
    fn smoke_study_runs_end_to_end() {
        // The full map -> route -> simulate pipeline on a 3-D fabric from
        // `.dse` text, through the engine pool.
        let records = noc_dse::run_scenarios(mesh3d_set(true).scenarios(), 0);
        let rows = mesh3d_rows_from_records(&records);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.cost_2d > 0.0 && row.cost_3d > 0.0);
            assert!(
                row.latency_3d > 0.0 && row.latency_2d > 0.0,
                "{}: simulation produced no latency",
                row.app
            );
        }
    }
}
