//! Table 3: DSP NoC design parameters.
//!
//! Two of the six entries are recomputed by our pipeline (the minimum link
//! bandwidth under min-path and split routing); the silicon figures
//! (network-interface area, switch area, switch delay) come from the
//! paper's ×pipes synthesis and are echoed as published reference values —
//! an algorithmic reproduction cannot re-derive layout area (DESIGN.md
//! substitution table).

use noc_sim::SimConfig;

use crate::fig5c::design_dsp;

/// The reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Network-interface area, mm² (paper constant).
    pub ni_area_mm2: f64,
    /// Switch area, mm² (paper constant).
    pub switch_area_mm2: f64,
    /// Switch pipeline delay in cycles (paper constant; also the default
    /// of our simulator's router model).
    pub switch_delay_cycles: u64,
    /// Packet size in bytes (paper constant; simulator default).
    pub packet_bytes: usize,
    /// **Measured**: minimum link bandwidth for single-min-path routing
    /// (MB/s). Paper: 600.
    pub minpath_bw_mbps: f64,
    /// **Measured**: minimum link bandwidth with split routing (MB/s).
    /// Paper: 200.
    pub split_bw_mbps: f64,
}

/// Paper values for the rows we cannot recompute.
pub const PAPER_NI_AREA_MM2: f64 = 0.6;
/// Paper switch area (0.18 µm library, from ×pipes synthesis).
pub const PAPER_SWITCH_AREA_MM2: f64 = 1.08;
/// Paper switch delay in cycles.
pub const PAPER_SWITCH_DELAY_CYCLES: u64 = 7;

/// Builds the table, recomputing the bandwidth rows from the DSP design.
pub fn run() -> Table3 {
    let design = design_dsp();
    let sim = SimConfig::default();
    Table3 {
        ni_area_mm2: PAPER_NI_AREA_MM2,
        switch_area_mm2: PAPER_SWITCH_AREA_MM2,
        switch_delay_cycles: PAPER_SWITCH_DELAY_CYCLES,
        packet_bytes: sim.packet_bytes,
        minpath_bw_mbps: design.minpath_bw,
        split_bw_mbps: design.split_bw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_match_paper() {
        let t = run();
        assert_eq!(t.minpath_bw_mbps, 600.0);
        assert!((t.split_bw_mbps - 200.0).abs() < 1.0);
        assert_eq!(t.packet_bytes, 64);
        assert_eq!(t.switch_delay_cycles, 7);
    }
}
