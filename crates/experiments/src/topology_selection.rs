//! Topology selection (the paper's Section 8 future-work extension):
//! "the approach can be extended to map cores onto various NoC topologies
//! for fast and efficient design space exploration."
//!
//! For each application and each candidate fabric (meshes and tori of
//! several aspect ratios), run NMAP and record cost, bandwidth needs
//! under both routing regimes, and mapper runtime. The winner columns
//! show which fabric minimizes cost and which minimizes the split-traffic
//! link budget.

use std::time::{Duration, Instant};

use nmap::{
    map_single_path, mcf::solve_mcf, MappingProblem, McfKind, PathScope, SinglePathOptions,
};
use noc_apps::App;
use noc_graph::Topology;

use crate::UNLIMITED_CAPACITY;

/// Result of mapping one application onto one candidate fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateResult {
    /// Fabric description, e.g. "mesh 4x4".
    pub fabric: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Directed link count (cost proxy for wiring).
    pub links: usize,
    /// Equation-7 communication cost of the NMAP mapping.
    pub comm_cost: f64,
    /// Max link load under single-path routing (MB/s).
    pub bw_single: f64,
    /// Min-max link load under all-path splitting (MB/s).
    pub bw_split: f64,
    /// NMAP runtime.
    pub elapsed: Duration,
}

/// Candidate fabrics for `cores` cores: all meshes and tori with
/// `width ≥ height ≥ 2` (or a 1-row mesh when unavoidable) and
/// `cores ≤ nodes ≤ 2·cores`.
pub fn candidate_fabrics(cores: usize) -> Vec<Topology> {
    let mut out = Vec::new();
    for h in 1..=cores {
        for w in h..=cores.max(2) {
            let nodes = w * h;
            if nodes < cores || nodes > cores * 2 {
                continue;
            }
            out.push(Topology::mesh(w, h, UNLIMITED_CAPACITY));
            if w >= 3 && h >= 3 {
                out.push(Topology::torus(w, h, UNLIMITED_CAPACITY));
            }
        }
    }
    out
}

/// Runs the exploration for one application.
pub fn explore(app: App) -> Vec<CandidateResult> {
    let graph = app.core_graph();
    candidate_fabrics(graph.core_count())
        .into_iter()
        .map(|topology| {
            let fabric = describe(&topology);
            let nodes = topology.node_count();
            let links = topology.link_count();
            let problem = MappingProblem::new(graph.clone(), topology).expect("candidate fits");
            let start = Instant::now();
            let out = map_single_path(&problem, &SinglePathOptions::default())
                .expect("mesh/torus routing succeeds");
            let bw_split =
                solve_mcf(&problem, &out.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)
                    .expect("min-max LP is always feasible")
                    .objective;
            CandidateResult {
                fabric,
                nodes,
                links,
                comm_cost: out.comm_cost.to_f64(),
                bw_single: out.link_loads.max(),
                bw_split,
                elapsed: start.elapsed(),
            }
        })
        .collect()
}

fn describe(topology: &Topology) -> String {
    topology.kind().describe()
}

/// The candidate minimizing communication cost (ties: fewer links, then
/// name) — the "selected" fabric.
pub fn best_by_cost(results: &[CandidateResult]) -> Option<&CandidateResult> {
    results.iter().min_by(|a, b| {
        a.comm_cost
            .partial_cmp(&b.comm_cost)
            .expect("costs are finite")
            .then(a.links.cmp(&b.links))
            .then(a.fabric.cmp(&b.fabric))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_meshes_and_tori() {
        let fabrics = candidate_fabrics(8);
        assert!(fabrics.len() >= 3);
        let names: Vec<String> = fabrics.iter().map(describe).collect();
        assert!(names.iter().any(|n| n.starts_with("mesh")));
        assert!(names.iter().any(|n| n.starts_with("torus")));
        for f in &fabrics {
            assert!(f.node_count() >= 8 && f.node_count() <= 16);
        }
    }

    #[test]
    fn exploration_finds_a_torus_no_worse_than_its_mesh() {
        let results = explore(App::Pip);
        let mesh33 = results.iter().find(|r| r.fabric == "mesh 3x3").expect("mesh 3x3");
        let torus33 = results.iter().find(|r| r.fabric == "torus 3x3").expect("torus 3x3");
        assert!(torus33.comm_cost <= mesh33.comm_cost + 1e-9);
        assert!(best_by_cost(&results).is_some());
    }

    #[test]
    fn split_bandwidth_never_exceeds_single_path() {
        for r in explore(App::Pip) {
            assert!(
                r.bw_split <= r.bw_single + 1e-6,
                "{}: split {} > single {}",
                r.fabric,
                r.bw_split,
                r.bw_single
            );
        }
    }
}
