//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each module reproduces one artifact of Section 7 and returns plain data
//! structs; the `src/bin/` binaries print them as text tables, and the
//! `bench` crate reuses the same entry points so figure regeneration is
//! benchmarkable. See `EXPERIMENTS.md` at the workspace root for
//! paper-vs-measured records.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig3`] | Figure 3 — communication cost of PMAP/GMAP/PBB/NMAP on six video apps |
//! | [`fig4`] | Figure 4 — minimum bandwidth needed by 7 algorithm/routing combinations |
//! | [`table1`] | Table 1 — cost and bandwidth ratios vs. NMAP |
//! | [`table2`] | Table 2 — PBB vs NMAP on random graphs (25–65 cores) |
//! | [`fig5c`] | Figure 5(c) — packet latency vs link bandwidth, DSP NoC |
//! | [`table3`] | Table 3 — DSP NoC design parameters |
//! | [`routing_ablation`] | §5 claim — heuristic routing vs LP bound |
//! | [`topology_selection`] | §8 future work — fabric design-space exploration |
//! | [`dse_bridge`] | Table 2 and a torus-vs-mesh study through the `noc-dse` engine |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dse_bridge;
pub mod fig3;
pub mod fig4;
pub mod fig5c;
pub mod mesh3d;
pub mod profile_cli;
pub mod report;
pub mod routing_ablation;
pub mod search_ablation;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod topology_selection;

use nmap::MappingProblem;
use noc_apps::App;
use noc_graph::Topology;

/// Uniform link capacity (MB/s) used when the experiment wants all
/// algorithms to be bandwidth-feasible ("same bandwidth constraints for
/// all algorithms"), so costs compare placement quality only.
pub const GENEROUS_CAPACITY: f64 = 2_000.0;

/// Effectively unlimited capacity for minimum-bandwidth measurements.
pub const UNLIMITED_CAPACITY: f64 = 1e9;

/// Builds the mapping problem for `app` on its paper-sized mesh with the
/// given uniform link capacity.
///
/// # Panics
///
/// Panics only if the built-in application graphs are malformed (bug).
pub fn app_problem(app: App, capacity: f64) -> MappingProblem {
    let graph = app.core_graph();
    let (w, h) = app.mesh_dims();
    MappingProblem::new(graph, Topology::mesh(w, h, capacity)).expect("application fits its mesh")
}
