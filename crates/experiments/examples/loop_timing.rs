//! Interleaved wall-time comparison of the simulator main loops on the
//! Figure 5(c) and `--mesh3d` workloads — the measurement behind the
//! loop-kind rows in EXPERIMENTS.md.
//!
//! Criterion benches each loop kind in a separate serial block, so slow
//! drift in machine load lands on one kind and not the other; this
//! harness instead alternates kinds round-robin within a single process
//! and reports per-kind minima, which drift cannot bias. Usage:
//!
//! ```text
//! cargo run --release -p noc-experiments --example loop_timing [rounds]
//! ```

use std::time::Instant;

use noc_dse::{run_scenarios, RunRecord};
use noc_experiments::fig5c::{design_dsp, flows_from_tables};
use noc_experiments::mesh3d::mesh3d_spec;
use noc_graph::Topology;
use noc_sim::{LoopKind, SimConfig, SimReport, Simulator};

const KINDS: [(&str, LoopKind); 3] = [
    ("full-scan", LoopKind::FullScan),
    ("active-set", LoopKind::ActiveSet),
    ("event-queue", LoopKind::EventQueue),
];

fn main() {
    let rounds: usize =
        std::env::args().nth(1).map(|a| a.parse().expect("rounds: integer")).unwrap_or(10);
    let design = design_dsp();
    // The full Figure 5(c) windows (not the criterion bench's reduced
    // ones): the drain tail is where idle-time skipping pays.
    let config = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 100_000,
        drain_cycles: 40_000,
        ..SimConfig::default()
    };

    // The sweep's near-saturation left edge and low-load right edge.
    for bandwidth in [1_100.0, 1_800.0] {
        let topology = Topology::mesh(3, 2, bandwidth);
        let mut nanos: [Vec<u64>; KINDS.len()] = Default::default();
        let mut reports: Vec<Option<SimReport>> = vec![None; KINDS.len()];
        for _ in 0..rounds {
            for (i, &(_, kind)) in KINDS.iter().enumerate() {
                let flows =
                    flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
                let mut sim = Simulator::new(&topology, flows, config.clone());
                sim.set_loop_kind(kind);
                let start = Instant::now();
                let report = sim.run();
                nanos[i].push(start.elapsed().as_nanos() as u64);
                match &reports[i] {
                    None => reports[i] = Some(report),
                    Some(prev) => assert_eq!(prev, &report, "{kind:?} not deterministic"),
                }
            }
        }
        assert_eq!(reports[0], reports[1], "active-set diverged from full-scan");
        assert_eq!(reports[0], reports[2], "event-queue diverged from full-scan");

        report(&format!("split workload @ {bandwidth} MB/s links"), rounds, &mut nanos);
    }

    // The full 2-D vs 3-D study (`nmap_dse --mesh3d`): six applications
    // on fitted 2-D meshes and a 4x4x2 grid, full simulation windows.
    // Single-threaded so the numbers time the simulator, not the pool.
    let mut nanos: [Vec<u64>; KINDS.len()] = Default::default();
    let mut records: Vec<Option<Vec<RunRecord>>> = vec![None; KINDS.len()];
    for _ in 0..rounds {
        for (i, &(_, kind)) in KINDS.iter().enumerate() {
            let mut spec = mesh3d_spec(false);
            spec.simulate.as_mut().expect("mesh3d simulates").loop_kind = kind;
            let set = spec.scenarios();
            let start = Instant::now();
            let mut recs = run_scenarios(set.scenarios(), 1);
            nanos[i].push(start.elapsed().as_nanos() as u64);
            // Records embed wall-clock stage times; zero them so the
            // determinism and cross-kind comparisons see results only.
            for r in &mut recs {
                r.times = Default::default();
            }
            match &records[i] {
                None => records[i] = Some(recs),
                Some(prev) => assert_eq!(prev, &recs, "{kind:?} not deterministic"),
            }
        }
    }
    assert_eq!(records[0], records[1], "active-set diverged from full-scan");
    assert_eq!(records[0], records[2], "event-queue diverged from full-scan");
    report("mesh3d study (12 scenarios, engine single-threaded)", rounds, &mut nanos);
}

fn report(label: &str, rounds: usize, nanos: &mut [Vec<u64>; KINDS.len()]) {
    println!("{label} ({rounds} interleaved rounds):");
    for (i, &(name, _)) in KINDS.iter().enumerate() {
        nanos[i].sort_unstable();
        let min = nanos[i][0];
        let median = nanos[i][nanos[i].len() / 2];
        println!("  {name:<12} min {:>7.3} ms   median {:>7.3} ms", ms(min), ms(median));
    }
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}
