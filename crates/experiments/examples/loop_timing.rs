//! Interleaved wall-time comparison of the simulator main loops on the
//! Figure 5(c) and `--mesh3d` workloads — the measurement behind the
//! loop-kind rows in EXPERIMENTS.md.
//!
//! Criterion benches each loop kind in a separate serial block, so slow
//! drift in machine load lands on one kind and not the other; this
//! harness instead alternates kinds round-robin within a single process
//! and reports per-kind minima, which drift cannot bias. Timing runs
//! through the `noc-probe` layer: one [`Probe::timer`] scope per run
//! feeds a per-(workload, kind) histogram, and the report reads min/p50
//! straight off the profile snapshot. Usage:
//!
//! ```text
//! cargo run --release -p noc-experiments --features probe \
//!     --example loop_timing [rounds]
//! ```

use noc_dse::{run_scenarios, RunRecord};
use noc_experiments::fig5c::{design_dsp, flows_from_tables};
use noc_experiments::mesh3d::mesh3d_spec;
use noc_graph::Topology;
use noc_probe::Probe;
use noc_sim::{LoopKind, SimConfig, SimReport, Simulator};

const KINDS: [(&str, LoopKind); 4] = [
    ("full-scan", LoopKind::FullScan),
    ("active-set", LoopKind::ActiveSet),
    ("event-queue", LoopKind::EventQueue),
    ("hybrid", LoopKind::Hybrid),
];

/// Histogram name for one (workload, loop-kind) timing series.
fn timer_name(workload: &str, kind: &str) -> String {
    format!("loop_timing.{workload}.{kind}_us")
}

fn main() {
    let rounds: usize =
        std::env::args().nth(1).map(|a| a.parse().expect("rounds: integer")).unwrap_or(10);
    let probe = Probe::new();
    let design = design_dsp();
    // The full Figure 5(c) windows (not the criterion bench's reduced
    // ones): the drain tail is where idle-time skipping pays.
    let config = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 100_000,
        drain_cycles: 40_000,
        ..SimConfig::default()
    };

    // The sweep's near-saturation left edge and low-load right edge.
    for bandwidth in [1_100.0, 1_800.0] {
        let workload = format!("split{bandwidth}");
        let topology = Topology::mesh(3, 2, bandwidth);
        let mut reports: Vec<Option<SimReport>> = vec![None; KINDS.len()];
        for _ in 0..rounds {
            for (i, &(name, kind)) in KINDS.iter().enumerate() {
                let flows =
                    flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
                let mut sim = Simulator::new(&topology, flows, config.clone());
                sim.set_loop_kind(kind);
                let report = {
                    let _timer = probe.timer(&timer_name(&workload, name));
                    sim.run()
                };
                match &reports[i] {
                    None => reports[i] = Some(report),
                    Some(prev) => assert_eq!(prev, &report, "{kind:?} not deterministic"),
                }
            }
        }
        assert_eq!(reports[0], reports[1], "active-set diverged from full-scan");
        assert_eq!(reports[0], reports[2], "event-queue diverged from full-scan");
        assert_eq!(reports[0], reports[3], "hybrid diverged from full-scan");

        report(&probe, &format!("split workload @ {bandwidth} MB/s links"), rounds, &workload);
    }

    // The full 2-D vs 3-D study (`nmap_dse --mesh3d`): six applications
    // on fitted 2-D meshes and a 4x4x2 grid, full simulation windows.
    // Single-threaded so the numbers time the simulator, not the pool.
    let mut records: Vec<Option<Vec<RunRecord>>> = vec![None; KINDS.len()];
    for _ in 0..rounds {
        for (i, &(name, kind)) in KINDS.iter().enumerate() {
            let mut spec = mesh3d_spec(false);
            spec.simulate.as_mut().expect("mesh3d simulates").loop_kind = kind;
            let set = spec.scenarios();
            let mut recs = {
                let _timer = probe.timer(&timer_name("mesh3d", name));
                run_scenarios(set.scenarios(), 1)
            };
            // Records embed wall-clock stage times; zero them so the
            // determinism and cross-kind comparisons see results only.
            for r in &mut recs {
                r.times = Default::default();
            }
            match &records[i] {
                None => records[i] = Some(recs),
                Some(prev) => assert_eq!(prev, &recs, "{kind:?} not deterministic"),
            }
        }
    }
    assert_eq!(records[0], records[1], "active-set diverged from full-scan");
    assert_eq!(records[0], records[2], "event-queue diverged from full-scan");
    assert_eq!(records[0], records[3], "hybrid diverged from full-scan");
    report(&probe, "mesh3d study (12 scenarios, engine single-threaded)", rounds, "mesh3d");
}

fn report(probe: &Probe, label: &str, rounds: usize, workload: &str) {
    let profile = probe.snapshot();
    println!("{label} ({rounds} interleaved rounds):");
    for &(name, _) in KINDS.iter() {
        let h = profile.histogram(&timer_name(workload, name)).expect("timer recorded");
        println!("  {name:<12} min {:>7.3} ms   median {:>7.3} ms", ms(h.min), ms(h.p50));
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}
