//! End-to-end tests for the `nmap_dse` binary's sharded sweep flags
//! (PR 9): kill-and-resume must leave byte-identical outputs, the flag
//! validity rules must reject misuse cleanly, and `--bench-json` must
//! produce a parseable snapshot.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nmap_dse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nmap_dse")).args(args).output().expect("binary launches")
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("nmap_dse_cli_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        Self(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_str().expect("utf-8 temp path").to_string()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small sim-backed sweep: 2 apps × 2 topologies × 2 mappers ×
/// 2 routings × 2 bandwidths = 32 scenarios.
const SWEEP_SPEC: &str = "\
seed 11
capacity 800
app pip
app dsp
topology fit
topology fit-torus
mapper nmap-init gmap
routing min-path xy
simulate {
  warmup 300
  measure 1500
  drain 800
  bandwidths 700 1200
}
";

#[test]
fn killed_and_resumed_sweep_is_byte_identical_to_straight_through() {
    let scratch = ScratchDir::new("resume");
    let spec = scratch.path("sweep.dse");
    std::fs::write(&spec, SWEEP_SPEC).unwrap();

    // Ground truth: the plain (unsharded) engine.
    let full = scratch.path("full.jsonl");
    let out = nmap_dse(&["--spec", &spec, "--jsonl", &full, "--threads", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // "Kill" after 3 of 7 shards: exit code 3, partial prefix on disk.
    let ckpt = scratch.path("ckpt");
    let part = scratch.path("part.jsonl");
    let out = nmap_dse(&[
        "--spec",
        &spec,
        "--jsonl",
        &part,
        "--resume",
        &ckpt,
        "--cache-dir",
        &scratch.path("cache"),
        "--shard-size",
        "5",
        "--shard-budget",
        "3",
        "--threads",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(3), "budget stop must exit 3");
    let partial = std::fs::read_to_string(&part).unwrap();
    assert_eq!(partial.lines().count(), 15, "3 shards of 5 streamed");

    // Resume at a different thread count: restored + fresh shards must
    // concatenate to exactly the straight-through bytes.
    let resumed = scratch.path("resumed.jsonl");
    let out = nmap_dse(&[
        "--spec",
        &spec,
        "--jsonl",
        &resumed,
        "--resume",
        &ckpt,
        "--cache-dir",
        &scratch.path("cache"),
        "--shard-size",
        "5",
        "--threads",
        "4",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 restored"), "resume skipped nothing: {stdout}");
    let full_bytes = std::fs::read(&full).unwrap();
    assert_eq!(std::fs::read(&resumed).unwrap(), full_bytes, "resumed JSONL diverged");
    assert!(full_bytes.starts_with(partial.as_bytes()), "interrupted run not a prefix");
}

#[test]
fn sharded_flags_require_spec_mode() {
    let out = nmap_dse(&["--smoke", "--resume", "/tmp/nowhere"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("only valid with --spec"), "stderr: {stderr}");
}

#[test]
fn mismatched_checkpoint_is_rejected() {
    let scratch = ScratchDir::new("mismatch");
    let spec = scratch.path("sweep.dse");
    std::fs::write(&spec, SWEEP_SPEC).unwrap();
    let ckpt = scratch.path("ckpt");
    let args = ["--spec", &spec, "--resume", &ckpt, "--shard-size", "5", "--shard-budget", "1"];
    assert_eq!(nmap_dse(&args).status.code(), Some(3));
    // Same checkpoint, different shard size: a different sweep.
    let out = nmap_dse(&["--spec", &spec, "--resume", &ckpt, "--shard-size", "4"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different sweep"), "stderr: {stderr}");
}

#[test]
fn bench_json_writes_a_snapshot() {
    let scratch = ScratchDir::new("bench");
    let path = scratch.path("bench.json");
    let out = nmap_dse(&["--bench-json", &path, "--threads", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&path).unwrap();
    for needle in [
        "\"bench\": \"dse_cache\"",
        "\"name\": \"fig5c\"",
        "\"name\": \"mesh3d\"",
        "\"name\": \"search-mappers\"",
        "\"warm_hit_rate\": 1.000",
    ] {
        assert!(text.contains(needle), "snapshot missing `{needle}`:\n{text}");
    }
}

#[test]
fn hybrid_loop_is_accepted_and_bad_loops_are_not() {
    let out = nmap_dse(&["--fig5c", "--smoke", "--loop", "hybrid", "--threads", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = nmap_dse(&["--fig5c", "--loop", "warp-speed"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("hybrid"), "usage should list hybrid");
}
