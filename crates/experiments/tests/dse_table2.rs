//! The acceptance check for the `noc-dse` engine: Table 2 run through the
//! engine must produce *identical* values to the sequential reference
//! harness in `table2.rs` — same random-graph seeds, same mapper budgets,
//! same floating-point accumulation order — for any worker count.

use noc_baselines::PbbOptions;
use noc_experiments::dse_bridge::{table2_scenario_set, table2_via_engine};
use noc_experiments::table2::{run, Table2Config};

/// A reduced configuration so the test stays fast; the full-size study
/// runs in `nmap_dse --table2`.
fn small_config() -> Table2Config {
    Table2Config {
        sizes: vec![12, 16],
        instances: 2,
        pbb: PbbOptions { max_queue: 500, max_expansions: 5_000 },
    }
}

#[test]
fn engine_reproduces_table2_exactly() {
    let config = small_config();
    let reference = run(&config);
    for threads in [1usize, 4] {
        let engine = table2_via_engine(&config, threads);
        assert_eq!(engine.len(), reference.len());
        for (e, r) in engine.iter().zip(&reference) {
            assert_eq!(e.cores, r.cores);
            assert_eq!(e.pbb, r.pbb, "PBB mean diverged at {} cores", r.cores);
            assert_eq!(e.nmap, r.nmap, "NMAP mean diverged at {} cores", r.cores);
            assert_eq!(e.ratio, r.ratio, "ratio diverged at {} cores", r.cores);
        }
    }
}

#[test]
fn scenario_set_carries_the_pbb_budget() {
    let config = small_config();
    let set = table2_scenario_set(&config);
    assert_eq!(set.len(), config.sizes.len() * config.instances as usize * 2);
    // Budgets ride inside the mapper spec, not a side channel.
    let has_budget = set
        .scenarios()
        .iter()
        .any(|s| matches!(&s.mapper, noc_dse::MapperSpec::Pbb(o) if *o == config.pbb));
    assert!(has_budget);
}
