//! Error-path tests for the `nmap_cli` binary: bad inputs must exit
//! nonzero with a clear message on stderr — never a panic, never a
//! success code.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nmap_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nmap_cli")).args(args).output().expect("binary launches")
}

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn with_content(name: &str, content: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("nmap_cli_test_{}_{name}", std::process::id()));
        std::fs::write(&path, content).expect("temp dir is writable");
        Self(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn assert_clean_failure(output: &Output, needle: &str) {
    let stderr = stderr_of(output);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains(needle), "stderr missing `{needle}`: {stderr}");
    assert!(!stderr.contains("panicked"), "binary panicked: {stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "binary crashed instead of reporting: {stderr}");
}

#[test]
fn nonexistent_app_file_fails_cleanly() {
    let out = nmap_cli(&["/definitely/not/a/real/file.app"]);
    assert_clean_failure(&out, "cannot read /definitely/not/a/real/file.app");
}

#[test]
fn unparsable_app_file_reports_the_line() {
    let bad = TempFile::with_content("garbage.app", "core a\nfrobnicate the widgets\n");
    let out = nmap_cli(&[bad.path()]);
    assert_clean_failure(&out, "line 2: unknown keyword `frobnicate`");
}

#[test]
fn app_larger_than_topology_fails_cleanly() {
    // Five cores cannot fit a 2x2 mesh; every algorithm must refuse the
    // problem up front rather than panic mid-search.
    let app = TempFile::with_content(
        "five_cores.app",
        "comm a b 10\ncomm b c 10\ncomm c d 10\ncomm d e 10\n",
    );
    for algorithm in ["nmap", "nmap-split", "pmap", "gmap", "pbb"] {
        let out = nmap_cli(&[app.path(), "--mesh", "2x2", "--algorithm", algorithm]);
        assert_clean_failure(&out, "5 cores but the topology only has 4 nodes");
    }
}

#[test]
fn unparsable_topology_file_fails_cleanly() {
    let app = TempFile::with_content("ok.app", "comm a b 10\n");
    let noc = TempFile::with_content("bad.noc", "mesh 2 2 100\nlink 0 1 50\n");
    let out = nmap_cli(&[app.path(), "--noc", noc.path()]);
    assert_clean_failure(&out, "only valid for custom topologies");
}

#[test]
fn bad_flags_print_usage() {
    let out = nmap_cli(&["--mesh", "not-dims", "whatever.app"]);
    assert_clean_failure(&out, "bad dimensions");
    let out = nmap_cli(&[]);
    assert_clean_failure(&out, "usage:");
    let out = nmap_cli(&["app.app", "--algorithm", "quantum"]);
    assert_clean_failure(&out, "unknown algorithm `quantum`");
}

#[test]
fn infeasible_bandwidth_exits_two_not_one() {
    // Exit code 2 is the documented "constraints unsatisfied" signal,
    // distinct from input errors.
    let app = TempFile::with_content("hot.app", "comm a b 500\n");
    let out = nmap_cli(&[app.path(), "--mesh", "2x2", "--capacity", "100"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("NOT satisfied"));
}
