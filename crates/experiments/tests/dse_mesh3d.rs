//! The 3-D pipeline end-to-end: a `.dse` spec with `topology mesh 4x4x2`
//! must flow through map → route → simulate, deterministically at every
//! worker count, with real simulation statistics on the 3-D fabric.

use noc_dse::{run_scenarios, SweepReport};
use noc_experiments::mesh3d::{mesh3d_rows_from_records, mesh3d_set, MESH3D_SMOKE_SPEC};

#[test]
fn mesh3d_smoke_sweep_is_deterministic_and_sim_backed() {
    assert!(
        MESH3D_SMOKE_SPEC.contains("topology mesh 4x4x2"),
        "the study must exercise the 3-D grammar spelling"
    );
    let set = mesh3d_set(true);
    let reference = SweepReport::new(run_scenarios(set.scenarios(), 1));
    // Byte-identical records at higher worker counts (the engine merges
    // in scenario order; nothing may depend on worker identity).
    for threads in [2usize, 4] {
        let parallel = SweepReport::new(run_scenarios(set.scenarios(), threads));
        assert_eq!(parallel.write_jsonl(false), reference.write_jsonl(false), "threads={threads}");
        assert_eq!(parallel.write_csv(false), reference.write_csv(false), "threads={threads}");
    }
    // Every 3-D record ran the whole pipeline: mapped (cost), routed
    // (feasible at the study capacity) and simulated (delivered traffic).
    let cube_records: Vec<_> =
        reference.records.iter().filter(|r| r.topology == "mesh4x4x2").collect();
    assert_eq!(cube_records.len(), 6, "one 3-D record per bundled app");
    for record in cube_records {
        assert!(record.is_ok(), "{}: {}", record.scenario, record.error);
        assert!(record.comm_cost.to_f64() > 0.0);
        assert!(record.feasible, "{} infeasible on the 3-D mesh", record.scenario);
        let sim = record.sim.as_ref().expect("simulate stage enabled");
        assert!(sim.avg_latency_cycles.to_f64() > 0.0);
        assert!(sim.delivered_mbps.to_f64() > 0.0);
    }
    // And the folded study rows are well-formed.
    let rows = mesh3d_rows_from_records(&reference.records);
    assert_eq!(rows.len(), 6);
    for row in rows {
        assert!(row.cost_gain.is_finite() && row.cost_gain > 0.0);
    }
}
