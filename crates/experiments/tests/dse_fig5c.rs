//! The engine-backed Figure 5(c) sweep must reproduce the sequential
//! harness exactly: same DSP design, same simulator seeds, same points —
//! at any worker count. This is the simulation counterpart of the
//! `dse_table2` mutual check. Since PR 6 the sweep also cross-checks the
//! simulator loops: the event-queue default and the cycle-stepped oracle
//! must produce identical Figure 5(c) points.

use noc_experiments::dse_bridge::{fig5c_smoke_config, fig5c_via_engine};
use noc_experiments::fig5c::{self, Fig5cConfig};
use noc_sim::LoopKind;

#[test]
fn engine_fig5c_matches_sequential_harness_at_1_and_4_threads() {
    let config = fig5c_smoke_config();
    let reference = fig5c::run(&config);
    assert_eq!(reference.len(), config.bandwidths_mbps.len());
    for point in &reference {
        assert!(point.minpath_latency > 0.0 && point.split_latency > 0.0);
    }
    for threads in [1usize, 4] {
        let engine = fig5c_via_engine(&config, threads);
        assert_eq!(engine, reference, "threads={threads}");
    }
}

#[test]
fn fig5c_points_are_identical_under_every_loop_kind() {
    // The figure the paper plots must not depend on which simulator main
    // loop produced it: diff the whole sweep (sequential harness *and*
    // engine pool) across the event-queue loop and both retained oracles.
    let with_kind = |loop_kind| Fig5cConfig { loop_kind, ..fig5c_smoke_config() };
    let oracle = fig5c::run(&with_kind(LoopKind::FullScan));
    for kind in [LoopKind::ActiveSet, LoopKind::EventQueue] {
        let config = with_kind(kind);
        assert_eq!(fig5c::run(&config), oracle, "sequential {kind:?} diverged");
        assert_eq!(fig5c_via_engine(&config, 4), oracle, "engine {kind:?} diverged");
    }
}
