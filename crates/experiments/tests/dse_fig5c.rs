//! The engine-backed Figure 5(c) sweep must reproduce the sequential
//! harness exactly: same DSP design, same simulator seeds, same points —
//! at any worker count. This is the simulation counterpart of the
//! `dse_table2` mutual check.

use noc_experiments::dse_bridge::{fig5c_smoke_config, fig5c_via_engine};
use noc_experiments::fig5c;

#[test]
fn engine_fig5c_matches_sequential_harness_at_1_and_4_threads() {
    let config = fig5c_smoke_config();
    let reference = fig5c::run(&config);
    assert_eq!(reference.len(), config.bandwidths_mbps.len());
    for point in &reference {
        assert!(point.minpath_latency > 0.0 && point.split_latency > 0.0);
    }
    for threads in [1usize, 4] {
        let engine = fig5c_via_engine(&config, threads);
        assert_eq!(engine, reference, "threads={threads}");
    }
}
