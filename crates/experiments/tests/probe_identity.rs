//! PR 7's hard invariant, pinned differentially: every JSONL/CSV/summary
//! output of the engine is **byte-identical** with a live probe, a
//! disabled probe, and no probe at all — at 1, 2 and 8 worker threads.
//!
//! The suite runs identically in both feature configurations: with
//! `--features probe` it proves the live instrumentation is strictly
//! out-of-band; without it, that the feature-gated no-op stubs change
//! nothing either (CI runs it both ways). The sweep covers all six
//! bundled applications plus a simulated leg (tabu + wormhole stage), so
//! the search counters, trajectory events and simulator counters are all
//! exercised on the probed side; the Figure 5(c) engine sweep is
//! compared point-for-point as well.

use noc_dse::{
    run_sweep, run_sweep_probed, EngineOptions, MapperSpec, RoutingSpec, ScenarioSet, SimulateSpec,
    StageTimes, SweepReport, TopologySpec,
};
use noc_experiments::dse_bridge::{fig5c_smoke_config, fig5c_via_engine, fig5c_via_engine_probed};
use noc_probe::Probe;

/// All six bundled applications, two mappers (constructive + tabu, the
/// latter exercising swap-delta and trajectory probes), min-path routing.
fn app_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(7)
        .all_apps()
        .topology(TopologySpec::FitMesh)
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Tabu(Default::default()))
        .routing(RoutingSpec::MinPath)
        .build()
}

/// A small simulated leg so the engine's simulate stage (and therefore
/// the simulator's probe counters) runs on the probed side too.
fn sim_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(7)
        .dsp()
        .topology(TopologySpec::FitMesh)
        .mapper(MapperSpec::NmapInit)
        .routing(RoutingSpec::MinPath)
        .simulate(SimulateSpec {
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
            drain_cycles: 2_000,
            ..Default::default()
        })
        .build()
}

/// The wall-clock stage times legitimately differ between runs; zero
/// them so every remaining byte must match.
fn strip_times(mut report: SweepReport) -> SweepReport {
    for r in &mut report.records {
        r.times = StageTimes::default();
    }
    report
}

fn assert_outputs_identical(set: &ScenarioSet, label: &str) {
    for threads in [1usize, 2, 8] {
        let options = EngineOptions { threads, ..Default::default() };
        let unprobed = strip_times(run_sweep(set, &options));
        let live_probe = Probe::new();
        let live = strip_times(run_sweep_probed(set, &options, &live_probe));
        let disabled = strip_times(run_sweep_probed(set, &options, &Probe::disabled()));

        for (probed, which) in [(&live, "live"), (&disabled, "disabled")] {
            assert_eq!(
                probed.write_jsonl(false),
                unprobed.write_jsonl(false),
                "{label}: JSONL diverged ({which} probe, {threads} threads)"
            );
            assert_eq!(
                probed.write_csv(false),
                unprobed.write_csv(false),
                "{label}: CSV diverged ({which} probe, {threads} threads)"
            );
            assert_eq!(
                probed.summary().to_string(),
                unprobed.summary().to_string(),
                "{label}: summary diverged ({which} probe, {threads} threads)"
            );
        }

        // Sanity on the instrument itself: a live probe collects data
        // exactly when the feature is compiled in.
        assert_eq!(
            !live_probe.snapshot().is_empty(),
            Probe::compiled(),
            "{label}: live profile presence must track the feature ({threads} threads)"
        );
        assert!(
            Probe::disabled().snapshot().is_empty(),
            "{label}: a disabled probe must never collect"
        );
    }
}

#[test]
fn app_sweep_outputs_are_byte_identical_across_probe_states() {
    assert_outputs_identical(&app_set(), "six-app sweep");
}

#[test]
fn simulated_sweep_outputs_are_byte_identical_across_probe_states() {
    assert_outputs_identical(&sim_set(), "simulated sweep");
}

#[test]
fn fig5c_points_are_identical_across_probe_states() {
    let config = fig5c_smoke_config();
    for threads in [1usize, 2, 8] {
        let unprobed = fig5c_via_engine(&config, threads);
        let live = fig5c_via_engine_probed(&config, threads, &Probe::new());
        let disabled = fig5c_via_engine_probed(&config, threads, &Probe::disabled());
        assert_eq!(live, unprobed, "fig5c diverged with a live probe ({threads} threads)");
        assert_eq!(disabled, unprobed, "fig5c diverged with a disabled probe ({threads} threads)");
    }
}

/// With the feature on, a profiled fig5c run must satisfy the PR's
/// acceptance arithmetic: executed + skipped cycles sum to the same
/// simulated window the cycle-stepped loops execute in full, and the
/// engine's scenario probes tally real work.
#[cfg(feature = "probe")]
#[test]
fn fig5c_profile_reports_consistent_windows_across_loop_kinds() {
    use noc_dse::LoopKind;

    let mut windows = Vec::new();
    for kind in [LoopKind::EventQueue, LoopKind::ActiveSet, LoopKind::FullScan] {
        let mut config = fig5c_smoke_config();
        config.loop_kind = kind;
        let probe = Probe::new();
        let _ = fig5c_via_engine_probed(&config, 2, &probe);
        let profile = probe.snapshot();
        let executed = profile.counter("sim.cycles_executed").unwrap_or(0);
        let skipped = profile.counter("sim.cycles_skipped").unwrap_or(0);
        assert!(executed > 0, "{kind:?}: nothing executed");
        if kind != LoopKind::EventQueue {
            assert_eq!(skipped, 0, "{kind:?} is cycle-stepped");
        }
        assert_eq!(
            profile.counter("dse.tasks"),
            Some(config.bandwidths_mbps.len() as u64 * 2),
            "{kind:?}: every pool task counted"
        );
        windows.push(executed + skipped);
    }
    assert_eq!(windows[0], windows[1], "event-queue vs active-set window");
    assert_eq!(windows[0], windows[2], "event-queue vs full-scan window");
}
