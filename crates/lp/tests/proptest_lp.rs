//! Property-based tests for the simplex solver: solutions of randomly
//! generated programs must be feasible and at least as good as a known
//! feasible point, the sparse pivot must be bit-identical to its dense
//! oracle, and snapshot warm restarts must agree with cold solves.

use noc_lp::{LinearProgram, PivotMode, Sense, SimplexOptions, SolveError, VarId};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// A randomly generated LP together with a point known to be feasible.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    /// (coefficients, sense, rhs); sense: 0 = Le, 1 = Ge, 2 = Eq.
    constraints: Vec<(Vec<f64>, u8, f64)>,
    feasible_point: Vec<f64>,
    bounded: bool,
}

fn random_lp(bounded: bool) -> impl Strategy<Value = RandomLp> {
    let dims = (1usize..=5, 1usize..=6);
    dims.prop_flat_map(move |(n, m)| {
        let costs = prop::collection::vec(-10.0..10.0f64, n);
        let point = prop::collection::vec(0.0..8.0f64, n);
        let rows =
            prop::collection::vec((prop::collection::vec(-5.0..5.0f64, n), 0u8..3, 0.0..6.0f64), m);
        (costs, point, rows).prop_map(move |(costs, feasible_point, raw_rows)| {
            let constraints = raw_rows
                .into_iter()
                .map(|(coeffs, sense, slack)| {
                    let activity: f64 =
                        coeffs.iter().zip(&feasible_point).map(|(a, x)| a * x).sum();
                    // Choose the rhs so `feasible_point` satisfies the row.
                    let rhs = match sense {
                        0 => activity + slack, // a.x <= rhs
                        1 => activity - slack, // a.x >= rhs
                        _ => activity,         // a.x == rhs
                    };
                    (coeffs, sense, rhs)
                })
                .collect();
            RandomLp { costs, constraints, feasible_point, bounded }
        })
    })
}

fn build(lp_data: &RandomLp) -> (LinearProgram, Vec<VarId>) {
    let mut lp = LinearProgram::new(Sense::Minimize);
    let vars: Vec<VarId> = lp_data
        .costs
        .iter()
        .enumerate()
        .map(|(i, &c)| lp.add_variable(format!("x{i}"), c))
        .collect();
    for (coeffs, sense, rhs) in &lp_data.constraints {
        let terms: Vec<(VarId, f64)> = vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)).collect();
        match sense {
            0 => lp.add_le(&terms, *rhs),
            1 => lp.add_ge(&terms, *rhs),
            _ => lp.add_eq(&terms, *rhs),
        }
    }
    if lp_data.bounded {
        // Box constraints keep the program bounded; the feasible point is
        // inside the box by construction (components < 8 <= 20).
        for &v in &vars {
            lp.add_le(&[(v, 1.0)], 20.0);
        }
    }
    (lp, vars)
}

fn check_feasible(lp_data: &RandomLp, values: &[f64]) {
    for (i, &v) in values.iter().enumerate() {
        assert!(v >= -TOL, "x{i} = {v} negative");
    }
    for (row, (coeffs, sense, rhs)) in lp_data.constraints.iter().enumerate() {
        let activity: f64 = coeffs.iter().zip(values).map(|(a, x)| a * x).sum();
        let ok = match sense {
            0 => activity <= rhs + TOL,
            1 => activity >= rhs - TOL,
            _ => (activity - rhs).abs() <= TOL,
        };
        assert!(ok, "row {row} violated: activity {activity}, sense {sense}, rhs {rhs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bounded programs with a known feasible point must solve to an
    /// optimum that is (a) feasible and (b) no worse than that point.
    #[test]
    fn bounded_random_lps_solve_correctly(lp_data in random_lp(true)) {
        let (lp, _) = build(&lp_data);
        let solution = lp.solve().expect("feasible bounded LP must solve");
        check_feasible(&lp_data, &solution.values);
        let reference: f64 = lp_data
            .costs
            .iter()
            .zip(&lp_data.feasible_point)
            .map(|(c, x)| c * x)
            .sum();
        prop_assert!(
            solution.objective <= reference + TOL,
            "objective {} worse than known feasible point {}",
            solution.objective,
            reference
        );
        // The reported objective matches the reported point.
        let recomputed: f64 =
            lp_data.costs.iter().zip(&solution.values).map(|(c, x)| c * x).sum();
        prop_assert!((solution.objective - recomputed).abs() < 1e-6);
    }

    /// Unbounded-direction programs either solve (feasible optimum) or
    /// report unboundedness — never infeasibility, and never a bogus
    /// "optimal" point violating a constraint.
    #[test]
    fn unbounded_random_lps_never_report_infeasible(lp_data in random_lp(false)) {
        let (lp, _) = build(&lp_data);
        match lp.solve() {
            Ok(solution) => check_feasible(&lp_data, &solution.values),
            Err(SolveError::Unbounded) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?} on a feasible program"),
        }
    }

    /// The sparse pivot is an execution strategy, not an algorithm change:
    /// on any program it must walk the same pivot sequence as the dense
    /// oracle and land on the *bit-identical* solution — exact `f64`
    /// equality on every component, not an epsilon comparison.
    #[test]
    fn sparse_pivot_is_bit_identical_to_the_dense_oracle(lp_data in random_lp(true)) {
        let (mut sparse_lp, _) = build(&lp_data);
        sparse_lp.set_options(SimplexOptions {
            pivot_mode: PivotMode::Sparse,
            ..SimplexOptions::default()
        });
        let (mut dense_lp, _) = build(&lp_data);
        dense_lp.set_options(SimplexOptions {
            pivot_mode: PivotMode::Dense,
            ..SimplexOptions::default()
        });
        let sparse = sparse_lp.solve().expect("feasible bounded LP must solve");
        let dense = dense_lp.solve().expect("feasible bounded LP must solve");
        prop_assert_eq!(sparse.values, dense.values, "pivot modes diverged");
        prop_assert_eq!(sparse.objective.to_bits(), dense.objective.to_bits());
    }

    /// Resolving from a captured tableau snapshot after loosening the
    /// inequality right-hand sides must agree with a cold solve of the
    /// perturbed program. A `BasisMismatch` refusal (non-unique optimum,
    /// or a loosened row crossing zero and flipping its standard form) is
    /// the documented fallback path and equally acceptable — what is
    /// *never* acceptable is a warm "optimum" that a cold solve beats.
    #[test]
    fn snapshot_resolve_agrees_with_cold_solve(
        lp_data in random_lp(true),
        delta in 0.0..3.0f64,
    ) {
        let (lp, _) = build(&lp_data);
        let Ok((_, snapshot, _)) = lp.solve_with_snapshot() else { return Ok(()) };
        // Loosen every inequality row; the known feasible point stays
        // feasible, and equalities keep the perturbed program honest.
        let perturbed_data = RandomLp {
            constraints: lp_data
                .constraints
                .iter()
                .map(|(coeffs, sense, rhs)| {
                    let rhs = match sense {
                        0 => rhs + delta,
                        1 => rhs - delta,
                        _ => *rhs,
                    };
                    (coeffs.clone(), *sense, rhs)
                })
                .collect(),
            ..lp_data.clone()
        };
        let (perturbed, _) = build(&perturbed_data);
        match perturbed.resolve_with_snapshot(snapshot) {
            Ok((warm, _, stats)) => {
                prop_assert!(stats.warm_start, "snapshot resolve must report warm");
                check_feasible(&perturbed_data, &warm.values);
                let cold = perturbed.solve().expect("loosened program stays feasible");
                prop_assert!(
                    (warm.objective - cold.objective).abs()
                        <= 1e-6 * (1.0 + cold.objective.abs()),
                    "warm optimum {} != cold optimum {}",
                    warm.objective,
                    cold.objective
                );
            }
            // Refusals fall back to a cold solve in every caller; solver
            // verdicts (infeasible/unbounded) must then match cold.
            Err(SolveError::BasisMismatch) => {}
            Err(e) => {
                let cold = perturbed.solve();
                prop_assert!(cold.is_err(), "warm failed with {e:?} but cold solved");
            }
        }
    }

    /// Resolving a snapshot against the *unchanged* program is the
    /// degenerate sweep step: it must succeed whenever the capture was
    /// reusable and return the same optimum without any simplex work
    /// beyond the RHS recompute.
    #[test]
    fn snapshot_resolve_is_idempotent_on_unchanged_rhs(lp_data in random_lp(true)) {
        let (lp, _) = build(&lp_data);
        let Ok((first, snapshot, _)) = lp.solve_with_snapshot() else { return Ok(()) };
        if !snapshot.is_reusable() {
            return Ok(());
        }
        let (warm, _, stats) = lp
            .resolve_with_snapshot(snapshot)
            .expect("reusable snapshot must resolve its own program");
        prop_assert!(stats.warm_start);
        prop_assert!(
            (warm.objective - first.objective).abs()
                <= 1e-9 * (1.0 + first.objective.abs()),
            "idempotent resolve moved the optimum: {} -> {}",
            first.objective,
            warm.objective
        );
        check_feasible(&lp_data, &warm.values);
    }

    /// Scaling every cost by a positive constant scales the optimum and
    /// preserves feasibility of the reported point.
    #[test]
    fn objective_scaling_is_linear(lp_data in random_lp(true), scale in 0.5..4.0f64) {
        let (lp, _) = build(&lp_data);
        let scaled_data = RandomLp {
            costs: lp_data.costs.iter().map(|c| c * scale).collect(),
            ..lp_data.clone()
        };
        let (scaled_lp, _) = build(&scaled_data);
        let a = lp.solve().expect("solves");
        let b = scaled_lp.solve().expect("solves");
        prop_assert!(
            (a.objective * scale - b.objective).abs() < 1e-5 * (1.0 + a.objective.abs() * scale),
            "scaled optimum {} != {} * {}",
            b.objective,
            scale,
            a.objective
        );
    }
}
