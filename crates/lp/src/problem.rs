//! Model-building API: variables, constraints, objective sense.
//
// lint: allow-file(f64-api) — the solver is a raw-numeric seam by
// design: costs, coefficients and right-hand sides are dimensionless
// reals whose units live with the caller (nmap wraps them in typed
// quantities at the MCF layer).

use std::fmt;
use std::ops::Index;

use crate::revised::{resolve_from_snapshot, resolve_standard_form, Basis, TableauSnapshot};
use crate::simplex::{
    solve_standard_form_full, solve_standard_form_snapshot, SimplexOptions, SolveError, SolveStats,
};

/// Identifier of a decision variable within one [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw column index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (the native form of the solver).
    Minimize,
    /// Maximize the objective (costs are negated internally).
    Maximize,
}

/// Direction of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// A linear constraint `Σ aᵢxᵢ (≤|=|≥) b` over non-negative variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficient list `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Constraint direction.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// All variables satisfy `x ≥ 0`; richer bounds are expressed as explicit
/// constraints. See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    sense: Sense,
    names: Vec<String>,
    costs: Vec<f64>,
    constraints: Vec<Constraint>,
    options: SimplexOptions,
}

impl LinearProgram {
    /// Creates an empty program with the given objective sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            names: Vec::new(),
            costs: Vec::new(),
            constraints: Vec::new(),
            options: SimplexOptions::default(),
        }
    }

    /// Overrides the solver options (tolerances, iteration limit).
    pub fn set_options(&mut self, options: SimplexOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Adds a non-negative variable with objective coefficient `cost` and
    /// returns its id. `name` is used only in diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is not finite.
    pub fn add_variable(&mut self, name: impl Into<String>, cost: f64) -> VarId {
        assert!(cost.is_finite(), "objective coefficient must be finite");
        let id = VarId(self.costs.len());
        self.names.push(name.into());
        self.costs.push(cost);
        id
    }

    /// Adds `count` anonymous variables sharing the objective coefficient
    /// `cost`; returns the id of the first (ids are consecutive).
    pub fn add_variables(&mut self, count: usize, cost: f64) -> VarId {
        let first = VarId(self.costs.len());
        for i in 0..count {
            self.add_variable(format!("x{}", first.0 + i), cost);
        }
        first
    }

    /// Adds an arbitrary constraint.
    ///
    /// # Panics
    ///
    /// Panics if a term references an unknown variable or any value is not
    /// finite.
    pub fn add_constraint(&mut self, constraint: Constraint) {
        assert!(constraint.rhs.is_finite(), "rhs must be finite");
        for &(var, coeff) in &constraint.terms {
            assert!(var.0 < self.costs.len(), "unknown variable {var}");
            assert!(coeff.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(constraint);
    }

    /// Convenience: adds `Σ aᵢxᵢ ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(Constraint { terms: terms.to_vec(), sense: ConstraintSense::Le, rhs });
    }

    /// Convenience: adds `Σ aᵢxᵢ = rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(Constraint { terms: terms.to_vec(), sense: ConstraintSense::Eq, rhs });
    }

    /// Convenience: adds `Σ aᵢxᵢ ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(Constraint { terms: terms.to_vec(), sense: ConstraintSense::Ge, rhs });
    }

    /// Number of decision variables.
    pub fn variable_count(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn variable_name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// The objective sense the program was created with.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients, indexed by [`VarId`].
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// The constraints added so far, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Solves the program with the two-phase primal simplex method.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] — no point satisfies all constraints.
    /// * [`SolveError::Unbounded`] — the objective decreases without bound.
    /// * [`SolveError::IterationLimit`] — the pivot budget was exhausted
    ///   (raise it via [`SimplexOptions`]).
    /// * [`SolveError::InvalidOptions`] — a [`SimplexOptions`] field is out
    ///   of range.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_basis().map(|(solution, _, _)| solution)
    }

    /// Like [`LinearProgram::solve`], additionally returning the optimal
    /// [`Basis`] (for warm-starting a related program via
    /// [`LinearProgram::resolve_with_basis`]) and the [`SolveStats`] pivot
    /// counters.
    ///
    /// # Errors
    ///
    /// Same as [`LinearProgram::solve`].
    pub fn solve_with_basis(&self) -> Result<(Solution, Basis, SolveStats), SolveError> {
        let costs = self.minimization_costs();
        let full = solve_standard_form_full(&costs, &self.constraints, self.options)?;
        Ok((self.finish(full.values), full.basis, full.stats))
    }

    /// Re-optimizes from `previous`, the optimal basis of a structurally
    /// identical program whose constraint right-hand sides may have
    /// changed, using the dual simplex method. On a bandwidth sweep this
    /// replaces a full two-phase solve with a few dual pivots.
    ///
    /// # Errors
    ///
    /// * [`SolveError::BasisMismatch`] — `previous` does not fit this
    ///   program (different shape/senses, an RHS sign flip that changes
    ///   the slack layout, or a singular refactorization). Fall back to a
    ///   cold [`LinearProgram::solve`].
    /// * Otherwise as [`LinearProgram::solve`].
    pub fn resolve_with_basis(
        &self,
        previous: &Basis,
    ) -> Result<(Solution, Basis, SolveStats), SolveError> {
        let costs = self.minimization_costs();
        let (values, basis, stats) =
            resolve_standard_form(&costs, &self.constraints, self.options, previous)?;
        Ok((self.finish(values), basis, stats))
    }

    /// Like [`LinearProgram::solve_with_basis`], but capturing the final
    /// simplex tableau as a [`TableauSnapshot`] instead of just the basic
    /// column set. Re-optimizing from a snapshot
    /// ([`LinearProgram::resolve_with_snapshot`]) skips the per-row
    /// Gauss-Jordan refactorization a [`Basis`] restart pays, rebuilding
    /// the RHS column from the stored basis inverse in `O(m²)`.
    ///
    /// The solution and pivot sequence are identical to
    /// [`LinearProgram::solve`]; the capture only keeps tableau columns
    /// alive that the plain solve is free to stop maintaining.
    ///
    /// # Errors
    ///
    /// Same as [`LinearProgram::solve`].
    pub fn solve_with_snapshot(
        &self,
    ) -> Result<(Solution, TableauSnapshot, SolveStats), SolveError> {
        let costs = self.minimization_costs();
        let (full, snapshot) =
            solve_standard_form_snapshot(&costs, &self.constraints, self.options)?;
        Ok((self.finish(full.values), snapshot, full.stats))
    }

    /// Re-optimizes from `previous`, a [`TableauSnapshot`] of a
    /// structurally identical program whose constraint right-hand sides
    /// may have changed. Like [`LinearProgram::resolve_with_basis`] this
    /// runs the dual simplex, but it starts from the stored eliminated
    /// tableau: the refactorization — the dominant cost of a basis warm
    /// start on large programs — is replaced by one dot product per row
    /// against the snapshot's basis-inverse columns.
    ///
    /// The snapshot is consumed: its tableau is moved through the solve
    /// and returned as the successor snapshot, so a sweep carries one
    /// tableau along the whole capacity axis without copying it. Clone
    /// the snapshot first if a restart point must be retained.
    ///
    /// # Errors
    ///
    /// * [`SolveError::BasisMismatch`] — `previous` does not fit this
    ///   program (different shape/senses/objective coefficients, an RHS
    ///   sign flip, or a snapshot captured at a non-unique optimum, which
    ///   is refused in O(1)). Fall back to a cold
    ///   [`LinearProgram::solve_with_snapshot`].
    /// * Otherwise as [`LinearProgram::solve`].
    pub fn resolve_with_snapshot(
        &self,
        previous: TableauSnapshot,
    ) -> Result<(Solution, TableauSnapshot, SolveStats), SolveError> {
        let costs = self.minimization_costs();
        let (values, snapshot, stats) =
            resolve_from_snapshot(&costs, &self.constraints, self.options, previous)?;
        Ok((self.finish(values), snapshot, stats))
    }

    /// Objective coefficients in the solver's native minimization sense.
    fn minimization_costs(&self) -> Vec<f64> {
        if self.sense == Sense::Maximize {
            self.costs.iter().map(|c| -c).collect()
        } else {
            self.costs.clone()
        }
    }

    /// Builds a [`Solution`] from raw structural values: computes the
    /// objective in the original sense and snaps tiny negatives introduced
    /// by elimination to zero.
    fn finish(&self, mut values: Vec<f64>) -> Solution {
        let mut objective = 0.0;
        for (value, cost) in values.iter().zip(&self.costs) {
            objective += value * cost;
        }
        for v in &mut values {
            if *v < 0.0 && *v > -1e-9 {
                *v = 0.0;
            }
        }
        Solution { objective, values }
    }
}

/// An optimal solution returned by [`LinearProgram::solve`].
///
/// Index it with a [`VarId`] to read a variable's value.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal objective value (in the sense of the original program).
    pub objective: f64,
    /// Values of the decision variables, indexed by [`VarId`].
    pub values: Vec<f64>,
}

impl Index<VarId> for Solution {
    type Output = f64;

    fn index(&self, var: VarId) -> &f64 {
        &self.values[var.0]
    }
}

impl Solution {
    /// Value of `var` in the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` belongs to a different program.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-8;

    #[test]
    fn maximization_negates_costs() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable("x", 3.0);
        let y = lp.add_variable("y", 5.0);
        lp.add_le(&[(x, 1.0)], 4.0);
        lp.add_le(&[(y, 2.0)], 12.0);
        lp.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < EPS, "objective {}", sol.objective);
        assert!((sol[x] - 2.0).abs() < EPS);
        assert!((sol[y] - 6.0).abs() < EPS);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + y = 10, x - y = 4  => x = 7, y = 3
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 1.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 10.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 4.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 7.0).abs() < EPS);
        assert!((sol[y] - 3.0).abs() < EPS);
        assert!((sol.objective - 10.0).abs() < EPS);
    }

    #[test]
    fn ge_constraints_and_surplus() {
        // min 2x + 3y st x + y >= 10, x >= 3 => (7,3)? cost 2*7+3*3 = 23 vs
        // x=10,y=0 => 20 (x>=3 ok). So optimum (10, 0) with cost 20.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 2.0);
        let y = lp.add_variable("y", 3.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        lp.add_ge(&[(x, 1.0)], 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < EPS, "objective {}", sol.objective);
        assert!((sol[x] - 10.0).abs() < EPS);
        assert!(sol[y].abs() < EPS);
    }

    #[test]
    fn add_variables_returns_consecutive_ids() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let first = lp.add_variables(5, 1.0);
        assert_eq!(first.index(), 0);
        assert_eq!(lp.variable_count(), 5);
        let next = lp.add_variable("z", 2.0);
        assert_eq!(next.index(), 5);
    }

    #[test]
    fn solution_indexing() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_ge(&[(x, 1.0)], 5.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], sol.value(x));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_foreign_variable_panics() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let _ = lp.add_variable("x", 1.0);
        lp.add_le(&[(VarId(99), 1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_cost_panics() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let _ = lp.add_variable("x", f64::INFINITY);
    }

    #[test]
    fn variable_names_are_kept() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("flow_a_b", 0.0);
        assert_eq!(lp.variable_name(x), "flow_a_b");
    }
}
