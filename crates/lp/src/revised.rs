//! Warm-started re-optimization from a previous optimal basis.
//!
//! A bandwidth sweep re-solves the *same* LP at every capacity point with
//! only the constraint right-hand sides changed. The optimal basis of the
//! previous solve is then dual-feasible for the new program: rebuilding the
//! tableau, refactorizing that basis, and running the **dual simplex**
//! method reaches the new optimum in a handful of pivots instead of a full
//! two-phase solve.
//!
//! Entry points are [`crate::LinearProgram::solve_with_basis`] (a cold
//! solve that also returns its optimal [`Basis`]) and
//! [`crate::LinearProgram::resolve_with_basis`] (the warm restart). The
//! warm path is strictly best-effort: any structural difference between
//! the recorded basis and the new program — variable/constraint counts,
//! constraint senses, an RHS sign flip that changes the slack layout, a
//! singular refactorization, or a previously-redundant row that the new
//! RHS makes binding — reports [`SolveError::BasisMismatch`] so the caller
//! can fall back to a cold solve.

use crate::problem::{Constraint, ConstraintSense};
use crate::simplex::{effective_sense, SimplexOptions, SolveError, SolveStats, Tableau};

/// Layout fingerprint of one constraint row as the cold solve built it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RowLayout {
    /// The sense the constraint was declared with.
    pub(crate) sense: ConstraintSense,
    /// Whether the row was negated because its RHS was negative.
    pub(crate) flipped: bool,
    /// Column of the row's slack/surplus variable, or `usize::MAX` if the
    /// effective sense is an equality (no slack).
    pub(crate) slack: usize,
}

/// An optimal simplex basis captured by
/// [`crate::LinearProgram::solve_with_basis`], reusable to warm-start a
/// program that differs only in its constraint right-hand sides.
///
/// The basis is opaque: it records the basic column set per surviving
/// tableau row plus a layout fingerprint (variable count, per-constraint
/// sense and RHS-sign pattern) that
/// [`crate::LinearProgram::resolve_with_basis`] validates before reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per surviving constraint row.
    pub(crate) columns: Vec<usize>,
    /// Original constraint index behind each surviving row (phase 1 may
    /// have dropped redundant rows).
    pub(crate) kept_rows: Vec<usize>,
    /// Structural variable count of the program that produced the basis.
    pub(crate) variables: usize,
    /// Number of slack/surplus columns in the layout.
    pub(crate) slack_count: usize,
    /// Per-original-constraint layout fingerprint.
    pub(crate) layout: Vec<RowLayout>,
    /// Whether the optimum this basis describes was provably unique (every
    /// nonbasic reduced cost strictly positive). Reduced costs do not
    /// depend on the RHS, so a basis recorded at a non-unique optimum
    /// would fail the warm path's uniqueness guard after paying for a full
    /// refactorization; recording the verdict lets
    /// [`crate::LinearProgram::resolve_with_basis`] refuse in O(1) instead.
    pub(crate) unique: bool,
}

impl Basis {
    /// Number of basic columns (equals the surviving constraint rows).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for the basis of a program with no constraints.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Threshold below which a refactorization pivot counts as singular. This
/// mirrors the `1e-7` pivot guard used when driving artificials out after
/// phase 1 and is deliberately independent of the user tolerance.
const SINGULAR_EPSILON: f64 = 1e-9;

/// The final simplex tableau of an optimal solve, captured by
/// [`crate::LinearProgram::solve_with_snapshot`] for RHS-only warm
/// restarts via [`crate::LinearProgram::resolve_with_snapshot`].
///
/// Where a [`Basis`] records only the basic column *set* — forcing the
/// warm path to rebuild the tableau and refactorize it with one
/// Gauss-Jordan pivot per row — the snapshot keeps the eliminated tableau
/// itself. Its slack and artificial columns are the columns of the basis
/// inverse (each started life as a unit column), so an RHS-only change
/// needs just one dot product per row to rebuild the RHS column before
/// the dual simplex runs: `O(m²)` arithmetic in place of `m` full
/// elimination passes.
///
/// The snapshot is opaque and validated before reuse exactly like a
/// basis (shape, senses, RHS sign pattern), plus an objective-coefficient
/// check: the stored reduced costs are only valid while the costs are
/// unchanged. Snapshots taken at a non-unique optimum store no tableau
/// data and are refused in O(1), mirroring [`Basis`]'s `unique` flag.
#[derive(Debug, Clone, PartialEq)]
pub struct TableauSnapshot {
    /// Final tableau (constraint rows then objective row), full width
    /// including artificial columns; empty when `unique` is false.
    pub(crate) data: Vec<f64>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Basic column per surviving constraint row.
    pub(crate) basis_cols: Vec<usize>,
    /// Original constraint index behind each surviving row.
    pub(crate) kept_rows: Vec<usize>,
    /// Structural variable count of the producing program.
    pub(crate) variables: usize,
    /// Number of slack/surplus columns in the layout.
    pub(crate) slack_count: usize,
    /// First artificial column.
    pub(crate) artificial_start: usize,
    /// Per-original-constraint layout fingerprint.
    pub(crate) layout: Vec<RowLayout>,
    /// Minimization-sense objective coefficients at capture time; the
    /// stored reduced costs are valid only while these are unchanged.
    pub(crate) costs: Vec<f64>,
    /// Whether the captured optimum was provably unique (see [`Basis`]).
    pub(crate) unique: bool,
}

impl TableauSnapshot {
    /// Number of surviving constraint rows in the captured tableau.
    pub fn len(&self) -> usize {
        self.rows - 1
    }

    /// True for the snapshot of a program with no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`crate::LinearProgram::resolve_with_snapshot`] can reuse
    /// this snapshot at all: captures at a non-unique optimum are refused
    /// up front (and store no tableau data).
    pub fn is_reusable(&self) -> bool {
        self.unique
    }

    /// Heap bytes held by the captured tableau.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// The unit column each original constraint row started with: its
    /// slack for an effective `≤` row, its artificial for `≥`/`=` rows
    /// (artificials are assigned sequentially in row order, mirroring the
    /// cold solve's layout pass). In the final tableau those columns hold
    /// the basis-inverse entries the RHS recompute needs.
    fn unit_columns(&self) -> Vec<usize> {
        let mut next_artificial = self.artificial_start;
        self.layout
            .iter()
            .map(|lay| match effective_sense(lay.sense, lay.flipped) {
                ConstraintSense::Le => lay.slack,
                ConstraintSense::Ge | ConstraintSense::Eq => {
                    let col = next_artificial;
                    next_artificial += 1;
                    col
                }
            })
            .collect()
    }
}

/// Re-optimizes `min c·x` from `prev`, assuming only constraint RHS values
/// changed since the basis was recorded. Returns the structural values,
/// the (possibly updated) optimal basis, and solve statistics.
pub(crate) fn resolve_standard_form(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
    prev: &Basis,
) -> Result<(Vec<f64>, Basis, SolveStats), SolveError> {
    options.validate()?;
    let n = costs.len();
    let m = constraints.len();
    if prev.variables != n || prev.layout.len() != m {
        return Err(SolveError::BasisMismatch);
    }
    // A basis recorded at a non-unique optimum would re-enter the same
    // degenerate optimal face and fail the uniqueness guard below in all
    // but contrived cases (reduced costs are RHS-independent), so refuse
    // before paying for the tableau rebuild and refactorization. Skipping
    // an attempt is output-neutral: the caller's fallback is the cold
    // solve, which is the reference answer.
    if !prev.unique {
        return Err(SolveError::BasisMismatch);
    }
    // An RHS sign change flips the row and alters the slack/artificial
    // layout the basis columns are numbered against.
    for (c, lay) in constraints.iter().zip(&prev.layout) {
        if c.sense != lay.sense || (c.rhs < 0.0) != lay.flipped {
            return Err(SolveError::BasisMismatch);
        }
    }

    // Rebuild the tableau over the surviving rows only, without artificial
    // columns: a recorded optimal basis never contains artificials.
    let artificial_start = n + prev.slack_count;
    let cols = artificial_start + 1;
    let rows = prev.kept_rows.len() + 1;
    let mut t = Tableau {
        rows,
        cols,
        data: vec![0.0; rows * cols],
        basis: vec![usize::MAX; rows - 1],
        origin: prev.kept_rows.clone(),
        artificial_start,
        options,
        stats: SolveStats { warm_start: true, ..SolveStats::default() },
        scratch_segments: Vec::new(),
        scratch_values: Vec::new(),
        freeze_artificials: false,
    };
    for (r, &orig) in prev.kept_rows.iter().enumerate() {
        let c = &constraints[orig];
        let lay = prev.layout[orig];
        let sign = if lay.flipped { -1.0 } else { 1.0 };
        for &(var, coeff) in &c.terms {
            t.data[r * cols + var.0] += sign * coeff; // accumulate duplicates
        }
        let rhs_col = t.rhs_col();
        t.set(r, rhs_col, sign * c.rhs);
        if lay.slack != usize::MAX {
            let slack_sign = match effective_sense(lay.sense, lay.flipped) {
                ConstraintSense::Le => 1.0,
                ConstraintSense::Ge => -1.0,
                ConstraintSense::Eq => unreachable!("equalities carry no slack"),
            };
            t.set(r, lay.slack, slack_sign);
        }
    }

    // Refactorize: turn every recorded basis column into a unit column via
    // Gauss-Jordan pivots. Row association is re-derived deterministically
    // (largest available magnitude, first row on ties); only the basic
    // column *set* matters for correctness.
    let mut assigned = vec![false; rows - 1];
    for &col in &prev.columns {
        if col >= artificial_start {
            return Err(SolveError::BasisMismatch);
        }
        let mut best: Option<usize> = None;
        let mut best_mag = SINGULAR_EPSILON;
        for (r, done) in assigned.iter().enumerate() {
            if *done {
                continue;
            }
            let mag = t.at(r, col).abs();
            if mag > best_mag {
                best_mag = mag;
                best = Some(r);
            }
        }
        let Some(r) = best else {
            return Err(SolveError::BasisMismatch);
        };
        t.pivot(r, col);
        assigned[r] = true;
    }
    t.stats.refactor_pivots = t.stats.pivots;
    t.stats.pivots = 0;
    t.stats.trace.clear();

    // Express the objective over the refactorized basis. Reduced costs are
    // independent of the RHS, so the row is dual-feasible (up to roundoff).
    t.install_objective(costs);

    let values = dual_reoptimize(&mut t, n, constraints)?;

    let basis = Basis {
        columns: t.basis.clone(),
        kept_rows: t.origin.clone(),
        variables: n,
        slack_count: prev.slack_count,
        layout: prev.layout.clone(),
        unique: true, // dual_reoptimize's uniqueness guard just proved it
    };
    let stats = std::mem::take(&mut t.stats);
    Ok((values, basis, stats))
}

/// Re-optimizes `min c·x` from `prev`, a captured [`TableauSnapshot`],
/// assuming only constraint RHS values changed. Instead of refactorizing
/// the basis (one Gauss-Jordan pass per row), the stored tableau's slack
/// and artificial columns — the columns of the basis inverse — rebuild the
/// RHS column with one dot product per row; the dual simplex then repairs
/// primal feasibility as usual.
///
/// The snapshot is consumed: its tableau moves into the working state and
/// back out into the returned successor snapshot, so a warm hit performs
/// no tableau-sized allocation or copy at all. On error the snapshot is
/// simply dropped — the fallback cold solve recaptures its own.
pub(crate) fn resolve_from_snapshot(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
    prev: TableauSnapshot,
) -> Result<(Vec<f64>, TableauSnapshot, SolveStats), SolveError> {
    options.validate()?;
    let n = costs.len();
    let m = constraints.len();
    if prev.variables != n || prev.layout.len() != m {
        return Err(SolveError::BasisMismatch);
    }
    // O(1) refusal of snapshots taken at a non-unique optimum: the
    // uniqueness guard below would reject them after all the work (reduced
    // costs are RHS-independent), and they carry no tableau data.
    if !prev.unique {
        return Err(SolveError::BasisMismatch);
    }
    // The stored reduced costs are only valid for the capture-time
    // objective; any cost change must fall back to a cold solve.
    if prev.costs != costs {
        return Err(SolveError::BasisMismatch);
    }
    // An RHS sign change flips the row and alters the slack/artificial
    // layout the snapshot columns are numbered against.
    for (c, lay) in constraints.iter().zip(&prev.layout) {
        if c.sense != lay.sense || (c.rhs < 0.0) != lay.flipped {
            return Err(SolveError::BasisMismatch);
        }
    }

    let unit_cols = prev.unit_columns();
    let mut t = Tableau {
        rows: prev.rows,
        cols: prev.cols,
        data: prev.data,
        basis: prev.basis_cols,
        origin: prev.kept_rows,
        artificial_start: prev.artificial_start,
        options,
        stats: SolveStats { warm_start: true, ..SolveStats::default() },
        scratch_segments: Vec::new(),
        scratch_values: Vec::new(),
        // The artificial columns must stay live: they are basis-inverse
        // columns the *next* capture (below) will need again.
        freeze_artificials: false,
    };

    // Rebuild the RHS column: every tableau row (objective included) is a
    // fixed linear combination of the original constraint rows, and the
    // combination coefficients sit in the unit column each original row
    // started with. `rhs[r] = Σ_j inv[r][j] · b'_j` over the original
    // constraints j — including rows phase 1 later dropped as redundant,
    // whose combinations may still contribute. The objective row's entry
    // in those same columns is `-(c_B·inv)_j`, so the identical sum yields
    // the new objective cell. The inner loop walks one tableau row in
    // ascending column order (cache-friendly), and the per-row summation
    // order is the fixed constraint order, so the result is deterministic.
    let mut contributions: Vec<(usize, f64)> = Vec::with_capacity(m);
    for (j, (c, lay)) in constraints.iter().zip(&prev.layout).enumerate() {
        let sign = if lay.flipped { -1.0 } else { 1.0 };
        let b = sign * c.rhs;
        if b != 0.0 {
            contributions.push((unit_cols[j], b));
        }
    }
    let cols = t.cols;
    let rhs_col = t.rhs_col();
    for r in 0..t.rows {
        let row = &mut t.data[r * cols..(r + 1) * cols];
        let mut acc = 0.0;
        for &(col, b) in &contributions {
            acc += row[col] * b;
        }
        row[rhs_col] = acc;
    }

    let values = dual_reoptimize(&mut t, n, constraints)?;

    let snapshot = TableauSnapshot {
        data: std::mem::take(&mut t.data),
        rows: t.rows,
        cols: t.cols,
        basis_cols: std::mem::take(&mut t.basis),
        kept_rows: std::mem::take(&mut t.origin),
        variables: n,
        slack_count: prev.slack_count,
        artificial_start: prev.artificial_start,
        layout: prev.layout,
        costs: prev.costs,
        unique: true, // dual_reoptimize's uniqueness guard just proved it
    };
    let stats = std::mem::take(&mut t.stats);
    Ok((values, snapshot, stats))
}

/// The shared tail of both warm paths: dual simplex from a dual-feasible
/// tableau, primal cleanup, the uniqueness guard, value extraction, and
/// the consistency recheck of constraint rows the cold solve dropped as
/// redundant. Returns the structural values; the caller packages the
/// basis/snapshot and stats.
fn dual_reoptimize(
    t: &mut Tableau,
    n: usize,
    constraints: &[Constraint],
) -> Result<Vec<f64>, SolveError> {
    let options = t.options;
    let tol = options.tolerance;
    let m = constraints.len();

    // Dual simplex: repair primal feasibility while keeping dual
    // feasibility. Leaving row = most negative RHS (first row on ties);
    // entering column = dual ratio test (first column on ties).
    let mut iterations = 0usize;
    loop {
        if iterations >= options.max_iterations {
            return Err(SolveError::IterationLimit);
        }
        let rhs_col = t.rhs_col();
        let mut leave: Option<usize> = None;
        let mut most_negative = -tol;
        for r in 0..t.rows - 1 {
            let v = t.at(r, rhs_col);
            if v < most_negative {
                most_negative = v;
                leave = Some(r);
            }
        }
        let Some(lr) = leave else {
            break; // primal feasible again => optimal
        };
        let obj = t.obj_row();
        let mut enter: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for c in 0..t.artificial_start {
            let a = t.at(lr, c);
            if a < -tol {
                let ratio = t.at(obj, c) / -a;
                if ratio < best_ratio {
                    best_ratio = ratio;
                    enter = Some(c);
                }
            }
        }
        let Some(ec) = enter else {
            // The leaving row cannot be repaired: the new RHS is infeasible.
            return Err(SolveError::Infeasible);
        };
        t.pivot(lr, ec);
        iterations += 1;
    }

    // Clean up any residual dual infeasibility introduced by roundoff in
    // the refactorization with ordinary primal pivots.
    t.optimize(t.artificial_start, &mut iterations)?;

    // Uniqueness guard: a zero reduced cost on a nonbasic column means the
    // optimal face has dimension > 0, and a cold solve could legitimately
    // stop at a *different* optimal vertex than the dual simplex did. The
    // warm path only answers when the optimum is provably unique (every
    // nonbasic reduced cost strictly positive), so that warm and cold
    // always return the same solution; otherwise the caller falls back.
    if !t.optimum_is_unique(tol) {
        return Err(SolveError::BasisMismatch);
    }

    // Extract structural values (normalizing negative zeros, as the cold
    // path does).
    let mut values = vec![0.0; n];
    let rhs = t.rhs_col();
    for r in 0..t.rows - 1 {
        let b = t.basis[r];
        if b < n {
            let v = t.at(r, rhs);
            values[b] = if v == 0.0 { 0.0 } else { v };
        }
    }

    // Rows the cold solve dropped as redundant were consistent for the old
    // RHS; verify they still hold, otherwise the warm state is unusable.
    if t.origin.len() != m {
        let mut kept = vec![false; m];
        for &k in &t.origin {
            kept[k] = true;
        }
        let slack_tol = tol.max(1e-7);
        for (i, c) in constraints.iter().enumerate() {
            if kept[i] {
                continue;
            }
            let mut lhs = 0.0;
            for &(var, coeff) in &c.terms {
                lhs += coeff * values[var.0];
            }
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + slack_tol,
                ConstraintSense::Ge => lhs >= c.rhs - slack_tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= slack_tol,
            };
            if !ok {
                return Err(SolveError::BasisMismatch);
            }
        }
    }

    Ok(values)
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, PivotMode, Sense, SimplexOptions, SolveError};

    const EPS: f64 = 1e-7;

    /// A tiny transport-like LP whose optimum moves as `cap` changes.
    fn capacitated(cap: f64) -> LinearProgram {
        // min x + 3y  s.t.  x + y >= 10, x <= cap.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 3.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        lp.add_le(&[(x, 1.0)], cap);
        lp
    }

    #[test]
    fn warm_restart_tracks_rhs_changes() {
        let (cold, mut basis, stats) = capacitated(10.0).solve_with_basis().unwrap();
        assert!((cold.objective - 10.0).abs() < EPS);
        assert!(!stats.warm_start);
        for cap in [8.0, 6.0, 4.0, 2.0, 0.0] {
            let lp = capacitated(cap);
            let (warm, next, wstats) = lp.resolve_with_basis(&basis).unwrap();
            let reference = lp.solve().unwrap();
            assert!(wstats.warm_start);
            assert!(
                (warm.objective - reference.objective).abs() < EPS,
                "cap {cap}: warm {} vs cold {}",
                warm.objective,
                reference.objective
            );
            assert_eq!(warm.values.len(), reference.values.len());
            for (w, c) in warm.values.iter().zip(&reference.values) {
                assert!((w - c).abs() < EPS, "cap {cap}: {w} vs {c}");
            }
            basis = next;
        }
    }

    #[test]
    fn warm_restart_with_unchanged_rhs_needs_no_dual_pivots() {
        let lp = capacitated(10.0);
        let (_, basis, _) = lp.solve_with_basis().unwrap();
        let (sol, _, stats) = lp.resolve_with_basis(&basis).unwrap();
        assert!((sol.objective - 10.0).abs() < EPS);
        assert_eq!(stats.pivots, 0, "identical RHS should re-verify without pivoting");
        assert_eq!(stats.refactor_pivots, basis.len());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let (_, basis, _) = capacitated(10.0).solve_with_basis().unwrap();
        // Different variable count.
        let mut other = LinearProgram::new(Sense::Minimize);
        let x = other.add_variable("x", 1.0);
        other.add_ge(&[(x, 1.0)], 1.0);
        assert_eq!(other.resolve_with_basis(&basis).unwrap_err(), SolveError::BasisMismatch);
        // Different constraint sense pattern.
        let mut flipped = LinearProgram::new(Sense::Minimize);
        let x = flipped.add_variable("x", 1.0);
        let y = flipped.add_variable("y", 3.0);
        flipped.add_le(&[(x, 1.0), (y, 1.0)], 10.0);
        flipped.add_le(&[(x, 1.0)], 10.0);
        assert_eq!(flipped.resolve_with_basis(&basis).unwrap_err(), SolveError::BasisMismatch);
    }

    #[test]
    fn rhs_sign_flip_is_a_mismatch() {
        let (_, basis, _) = capacitated(10.0).solve_with_basis().unwrap();
        // cap < 0 flips the row when the tableau is built, changing the
        // slack layout the basis columns are numbered against.
        let lp = capacitated(-1.0);
        assert_eq!(lp.resolve_with_basis(&basis).unwrap_err(), SolveError::BasisMismatch);
    }

    #[test]
    fn infeasible_new_rhs_is_detected() {
        // x <= cap with x >= 5: cap below 5 has no feasible point.
        let build = |cap: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", 1.0);
            lp.add_ge(&[(x, 1.0)], 5.0);
            lp.add_le(&[(x, 1.0)], cap);
            lp
        };
        let (_, basis, _) = build(10.0).solve_with_basis().unwrap();
        assert_eq!(build(3.0).resolve_with_basis(&basis).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn warm_iteration_limit_is_reported() {
        let (_, basis, _) = capacitated(10.0).solve_with_basis().unwrap();
        let mut lp = capacitated(2.0);
        lp.set_options(SimplexOptions { max_iterations: 0, ..Default::default() });
        assert_eq!(
            lp.resolve_with_basis(&basis).unwrap_err(),
            SolveError::InvalidOptions("max_iterations")
        );
        // A budget of zero is invalid; the smallest valid budget still
        // trips once the dual pivots exceed it.
        let mut tight = capacitated(0.0);
        tight.set_options(SimplexOptions { max_iterations: 1, ..Default::default() });
        let got = tight.resolve_with_basis(&basis);
        assert!(
            matches!(got, Err(SolveError::IterationLimit) | Err(SolveError::BasisMismatch))
                || got.is_ok(),
            "unexpected {got:?}"
        );
    }

    #[test]
    fn degenerate_program_warm_restarts_or_falls_back() {
        // Degenerate: three constraints active at the (unique) optimum
        // vertex. Degeneracy may leave a zero reduced cost on a nonbasic
        // column, in which case the uniqueness guard refuses the warm
        // answer — acceptable, as long as it never returns a solution
        // that disagrees with the cold path.
        let build = |cap: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", -1.0);
            let y = lp.add_variable("y", -1.0);
            lp.add_le(&[(x, 1.0)], cap);
            lp.add_le(&[(y, 1.0)], cap);
            lp.add_le(&[(x, 1.0), (y, 1.0)], 2.0 * cap);
            lp
        };
        let (_, basis, _) = build(5.0).solve_with_basis().unwrap();
        for cap in [4.0, 2.0, 1.0] {
            let lp = build(cap);
            let cold = lp.solve().unwrap();
            match lp.resolve_with_basis(&basis) {
                Ok((warm, _, _)) => {
                    assert!((warm.objective - cold.objective).abs() < EPS, "cap {cap}");
                }
                Err(SolveError::BasisMismatch) => {} // guard fell back
                Err(e) => panic!("cap {cap}: unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn alternative_optima_are_refused() {
        // min x + y s.t. x + y >= r: the whole segment is optimal, so a
        // cold solve could stop at a different vertex than the dual
        // simplex. The uniqueness guard must refuse the warm answer.
        let build = |r: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", 1.0);
            let y = lp.add_variable("y", 1.0);
            lp.add_ge(&[(x, 1.0), (y, 1.0)], r);
            lp
        };
        let (_, basis, _) = build(4.0).solve_with_basis().unwrap();
        assert_eq!(build(6.0).resolve_with_basis(&basis).unwrap_err(), SolveError::BasisMismatch);
    }

    #[test]
    fn unbounded_cold_program_yields_no_basis_to_reuse() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", -1.0);
        lp.add_ge(&[(x, 1.0)], 0.0);
        assert_eq!(lp.solve_with_basis().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn redundant_row_consistency_is_rechecked() {
        // Cold solve sees x + y = 4 twice and drops one copy as redundant.
        let build = |second_rhs: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", 1.0);
            let y = lp.add_variable("y", 2.0);
            lp.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
            lp.add_eq(&[(x, 1.0), (y, 1.0)], second_rhs);
            lp
        };
        let (_, basis, _) = build(4.0).solve_with_basis().unwrap();
        if basis.len() < 2 {
            // The duplicate was dropped; making its RHS inconsistent must
            // not silently succeed on the warm path.
            let got = build(7.0).resolve_with_basis(&basis);
            assert!(
                matches!(got, Err(SolveError::BasisMismatch) | Err(SolveError::Infeasible)),
                "unexpected {got:?}"
            );
        }
    }

    #[test]
    fn warm_path_matches_dense_oracle() {
        for cap in [9.0, 7.0, 3.5, 1.0] {
            let mut warm_lp = capacitated(10.0);
            warm_lp.set_options(SimplexOptions::default());
            let (_, basis, _) = warm_lp.solve_with_basis().unwrap();
            let lp = capacitated(cap);
            let (warm, _, _) = lp.resolve_with_basis(&basis).unwrap();
            let mut dense = capacitated(cap);
            dense
                .set_options(SimplexOptions { pivot_mode: PivotMode::Dense, ..Default::default() });
            let oracle = dense.solve().unwrap();
            assert!((warm.objective - oracle.objective).abs() < EPS, "cap {cap}");
        }
    }

    #[test]
    fn snapshot_restart_tracks_rhs_changes() {
        let (cold, mut snapshot, stats) = capacitated(10.0).solve_with_snapshot().unwrap();
        assert!((cold.objective - 10.0).abs() < EPS);
        assert!(!stats.warm_start);
        assert!(snapshot.is_reusable());
        for cap in [8.0, 6.0, 4.0, 2.0, 0.0] {
            let lp = capacitated(cap);
            let (warm, next, wstats) = lp.resolve_with_snapshot(snapshot).unwrap();
            let reference = lp.solve().unwrap();
            assert!(wstats.warm_start);
            assert!(
                (warm.objective - reference.objective).abs() < EPS,
                "cap {cap}: warm {} vs cold {}",
                warm.objective,
                reference.objective
            );
            for (w, c) in warm.values.iter().zip(&reference.values) {
                assert!((w - c).abs() < EPS, "cap {cap}: {w} vs {c}");
            }
            snapshot = next;
        }
    }

    #[test]
    fn snapshot_restart_with_unchanged_rhs_skips_all_simplex_work() {
        let lp = capacitated(10.0);
        let (_, snapshot, _) = lp.solve_with_snapshot().unwrap();
        let (sol, _, stats) = lp.resolve_with_snapshot(snapshot).unwrap();
        assert!((sol.objective - 10.0).abs() < EPS);
        assert_eq!(stats.pivots, 0, "identical RHS should re-verify without pivoting");
        // The whole point of storing the tableau: unlike the basis
        // restart, no Gauss-Jordan refactorization runs at all.
        assert_eq!(stats.refactor_pivots, 0);
    }

    #[test]
    fn snapshot_shape_cost_and_sign_mismatches_are_refused() {
        let (_, snapshot, _) = capacitated(10.0).solve_with_snapshot().unwrap();
        // Different variable count.
        let mut other = LinearProgram::new(Sense::Minimize);
        let x = other.add_variable("x", 1.0);
        other.add_ge(&[(x, 1.0)], 1.0);
        assert_eq!(
            other.resolve_with_snapshot(snapshot.clone()).unwrap_err(),
            SolveError::BasisMismatch
        );
        // Same shape, different objective: the stored reduced costs are
        // only valid for the capture-time cost vector.
        let mut repriced = LinearProgram::new(Sense::Minimize);
        let x = repriced.add_variable("x", 1.0);
        let y = repriced.add_variable("y", 2.0);
        repriced.add_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        repriced.add_le(&[(x, 1.0)], 10.0);
        assert_eq!(
            repriced.resolve_with_snapshot(snapshot.clone()).unwrap_err(),
            SolveError::BasisMismatch
        );
        // Negative cap flips the row in standard form, renumbering the
        // unit columns the RHS recompute reads.
        assert_eq!(
            capacitated(-1.0).resolve_with_snapshot(snapshot).unwrap_err(),
            SolveError::BasisMismatch
        );
    }

    #[test]
    fn non_unique_capture_is_refused_in_constant_space() {
        // min x + y s.t. x + y >= 4: a whole edge is optimal, so the
        // capture must mark itself non-reusable and drop the tableau —
        // the refusal costs O(1) and the snapshot holds no basis data.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 1.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        let (_, snapshot, _) = lp.solve_with_snapshot().unwrap();
        assert!(!snapshot.is_reusable());
        assert!(snapshot.memory_bytes() < 1024, "refused capture must not hold the tableau");
        assert_eq!(lp.resolve_with_snapshot(snapshot).unwrap_err(), SolveError::BasisMismatch);
    }

    #[test]
    fn snapshot_infeasible_new_rhs_is_detected() {
        let build = |cap: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", 1.0);
            lp.add_ge(&[(x, 1.0)], 5.0);
            lp.add_le(&[(x, 1.0)], cap);
            lp
        };
        let (_, snapshot, _) = build(10.0).solve_with_snapshot().unwrap();
        assert_eq!(build(3.0).resolve_with_snapshot(snapshot).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn snapshot_rhs_recompute_covers_phase1_dropped_rows() {
        // Phase 1 drops one copy of the duplicated equality as redundant,
        // but the dropped row's multipliers still live in the stored
        // tableau: moving *both* right-hand sides together must restart
        // cleanly, and moving them apart must not silently succeed.
        let build = |first: f64, second: f64| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x = lp.add_variable("x", 1.0);
            let y = lp.add_variable("y", 2.0);
            lp.add_eq(&[(x, 1.0), (y, 1.0)], first);
            lp.add_eq(&[(x, 1.0), (y, 1.0)], second);
            lp
        };
        let (_, snapshot, _) = build(4.0, 4.0).solve_with_snapshot().unwrap();
        let consistent = build(5.0, 5.0);
        match consistent.resolve_with_snapshot(snapshot.clone()) {
            Ok((warm, _, _)) => {
                let cold = consistent.solve().unwrap();
                assert!((warm.objective - cold.objective).abs() < EPS);
            }
            Err(SolveError::BasisMismatch) => {} // guard fell back
            Err(e) => panic!("unexpected {e:?}"),
        }
        let inconsistent = build(5.0, 7.0);
        let got = inconsistent.resolve_with_snapshot(snapshot);
        assert!(
            matches!(got, Err(SolveError::BasisMismatch) | Err(SolveError::Infeasible)),
            "unexpected {got:?}"
        );
    }

    #[test]
    fn snapshot_restart_matches_dense_oracle() {
        for cap in [9.0, 7.0, 3.5, 1.0] {
            let (_, snapshot, _) = capacitated(10.0).solve_with_snapshot().unwrap();
            let lp = capacitated(cap);
            let (warm, _, _) = lp.resolve_with_snapshot(snapshot).unwrap();
            let mut dense = capacitated(cap);
            dense
                .set_options(SimplexOptions { pivot_mode: PivotMode::Dense, ..Default::default() });
            let oracle = dense.solve().unwrap();
            assert!((warm.objective - oracle.objective).abs() < EPS, "cap {cap}");
        }
    }
}
