//! Two-phase primal simplex over a dense tableau.
//
// lint: allow-file(f64-api) — solver options and statistics expose raw
// tolerances and objective reals; the unit-bearing wrappers live with
// the MCF callers in `nmap`.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution (or prove infeasibility); phase 2 optimizes the real
//! objective. Entering variables follow Dantzig's rule until the objective
//! stalls, then Bland's rule, which guarantees termination on degenerate
//! problems.
//!
//! Pivot updates run in one of two modes ([`PivotMode`]): the default
//! **sparse** mode skips row/column entries whose multiplier is exactly
//! `0.0`, while the **dense** mode performs every multiply-subtract. The
//! arithmetic the sparse mode does execute is identical in order and
//! operands to the dense mode, so the two produce the same pivot sequence
//! and bit-identical solutions; dense mode is retained as the differential
//! oracle for tests. (The only representational difference skipping can
//! introduce is the sign of an exact zero, which no comparison in the
//! solver distinguishes and which is normalized out of returned values.)

use std::error::Error;
use std::fmt;

use crate::problem::{Constraint, ConstraintSense};
use crate::revised::{Basis, RowLayout, TableauSnapshot};

/// How pivot eliminations traverse the tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotMode {
    /// Skip entries whose multiplier is exactly `0.0` (the fast default).
    #[default]
    Sparse,
    /// Touch every entry; the differential oracle for the sparse mode.
    Dense,
}

/// Tunable solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Feasibility/optimality tolerance. Must be positive and finite.
    pub tolerance: f64,
    /// Hard cap on pivots across both phases. Must be positive.
    pub max_iterations: usize,
    /// Number of non-improving pivots before switching to Bland's rule.
    /// Must be positive.
    pub stall_threshold: usize,
    /// Pivot elimination strategy (sparse by default).
    pub pivot_mode: PivotMode,
    /// Record the `(row, column)` pivot sequence in [`SolveStats::trace`].
    /// Off by default; used by differential tests.
    pub record_trace: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 200_000,
            stall_threshold: 256,
            pivot_mode: PivotMode::Sparse,
            record_trace: false,
        }
    }
}

impl SimplexOptions {
    /// Checks that every field is usable before a solve starts.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidOptions`] naming the offending field when
    /// `tolerance` is not a positive finite number or either iteration
    /// bound is zero.
    pub fn validate(&self) -> Result<(), SolveError> {
        if self.tolerance <= 0.0 || !self.tolerance.is_finite() {
            return Err(SolveError::InvalidOptions("tolerance"));
        }
        if self.max_iterations == 0 {
            return Err(SolveError::InvalidOptions("max_iterations"));
        }
        if self.stall_threshold == 0 {
            return Err(SolveError::InvalidOptions("stall_threshold"));
        }
        Ok(())
    }
}

/// Failure modes of [`crate::LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint set has no feasible point.
    Infeasible,
    /// The objective is unbounded below (for minimization).
    Unbounded,
    /// The pivot budget was exhausted before reaching an optimum.
    IterationLimit,
    /// A [`SimplexOptions`] field is out of range; the payload names it.
    InvalidOptions(&'static str),
    /// A warm-start basis does not fit this program (shape, sense, or
    /// RHS-sign change, or the recorded basis is singular here). Callers
    /// should fall back to a cold [`crate::LinearProgram::solve`].
    BasisMismatch,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::InvalidOptions(field) => {
                write!(f, "invalid solver options: {field} must be positive and finite")
            }
            SolveError::BasisMismatch => {
                write!(f, "warm-start basis does not match this program")
            }
        }
    }
}

impl Error for SolveError {}

/// Pivot counters from one solve, for instrumentation and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex pivots performed (both phases for a cold solve; dual plus
    /// cleanup pivots for a warm solve).
    pub pivots: usize,
    /// Pivots spent in phase 1, including driving artificials out
    /// (always zero for a warm solve, which has no phase 1).
    pub phase1_pivots: usize,
    /// Gauss-Jordan pivots spent refactorizing a warm-start basis
    /// (always zero for a cold solve).
    pub refactor_pivots: usize,
    /// True when the solve was warm-started from a previous basis.
    pub warm_start: bool,
    /// `(row, column)` of every pivot, recorded only when
    /// [`SimplexOptions::record_trace`] is set.
    pub trace: Vec<(usize, usize)>,
}

/// Longest run of zeros a sparse pivot folds into a contiguous elimination
/// segment rather than starting a new one. Merged zeros cost one redundant
/// `x -= factor * 0.0` each (what the dense oracle computes anyway), while
/// every segment break costs a bounds check and breaks vectorization, so
/// short gaps are cheaper to step over than to split on.
const SEGMENT_GAP: usize = 2;

/// Tableau width below which sparse mode runs the plain dense sweep
/// instead of building segments: a narrow tableau stays cache-resident,
/// where the branch-free vectorized sweep wins outright.
const SEGMENT_MIN_COLS: usize = 1024;

/// Dense simplex tableau. Rows `0..m` are constraints; the last row is the
/// objective. Column layout: structural variables, then slacks/surpluses,
/// then artificials, then the RHS.
pub(crate) struct Tableau {
    pub(crate) rows: usize,
    pub(crate) cols: usize, // including rhs column
    pub(crate) data: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    /// Original constraint index behind each surviving row.
    pub(crate) origin: Vec<usize>,
    pub(crate) artificial_start: usize,
    pub(crate) options: SimplexOptions,
    pub(crate) stats: SolveStats,
    /// Reusable `(start, len)` segment list of the scaled pivot row for
    /// [`PivotMode::Sparse`]; kept on the tableau so repeated pivots reuse
    /// one allocation.
    pub(crate) scratch_segments: Vec<(usize, usize)>,
    /// Reusable concatenated segment values matching `scratch_segments`.
    pub(crate) scratch_values: Vec<f64>,
    /// When set, sparse pivots stop updating the artificial column block
    /// `artificial_start..cols-1`. Phase 2 never reads those columns
    /// (artificials may not re-enter, so neither the entering scan nor the
    /// ratio test touches them, and extraction only reads structural
    /// columns and the RHS), so the stale values are unobservable.
    pub(crate) freeze_artificials: bool,
}

impl Tableau {
    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub(crate) fn rhs_col(&self) -> usize {
        self.cols - 1
    }

    pub(crate) fn obj_row(&self) -> usize {
        self.rows - 1
    }

    /// Gauss-Jordan pivot on (`pivot_row`, `pivot_col`).
    pub(crate) fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let cols = self.cols;
        let start = pivot_row * cols;
        let pivot_value = self.data[start + pivot_col];
        debug_assert!(pivot_value.abs() > 0.0, "zero pivot");
        let inv = 1.0 / pivot_value;
        match self.options.pivot_mode {
            PivotMode::Dense => self.dense_pivot(pivot_row, pivot_col, inv),
            PivotMode::Sparse if cols < SEGMENT_MIN_COLS => {
                // Small tableaux live in cache, where the fully vectorized
                // dense sweep beats segment bookkeeping; it computes the
                // same observable cells (see the segment-merge note below),
                // so the pivot trace and solution are unchanged.
                self.dense_pivot(pivot_row, pivot_col, inv);
            }
            PivotMode::Sparse => {
                // Scale the pivot row and gather its nonzeros into
                // contiguous segments in one pass; eliminations then run a
                // vectorized slice update per segment instead of touching
                // every column. Nonzeros separated by at most `SEGMENT_GAP`
                // zeros merge into one segment: the extra `x -= factor*0.0`
                // terms a merged gap adds are exactly what the dense oracle
                // computes anyway — they can only flip the sign of an exact
                // zero, which no comparison in the solver distinguishes and
                // which extraction normalizes away — so the pivot trace and
                // solution stay bit-identical while long runs amortize the
                // per-segment bounds check and autovectorize.
                //
                // With `freeze_artificials` set, the artificial block is
                // neither scaled nor eliminated — phase 2 never reads it.
                let mut segments = std::mem::take(&mut self.scratch_segments);
                let mut values = std::mem::take(&mut self.scratch_values);
                segments.clear();
                values.clear();
                let scan_end =
                    if self.freeze_artificials { self.artificial_start } else { cols - 1 };
                for c in (0..scan_end).chain(cols - 1..cols) {
                    let v = self.data[start + c];
                    if v != 0.0 {
                        // Snap the pivot entry exactly to 1 to limit drift.
                        let scaled = if c == pivot_col { 1.0 } else { v * inv };
                        self.data[start + c] = scaled;
                        match segments.last_mut() {
                            Some((s, len)) if c - (*s + *len) <= SEGMENT_GAP => {
                                // Merge: carry the gap's zeros into the
                                // segment so it stays contiguous.
                                values.resize(values.len() + (c - (*s + *len)), 0.0);
                                *len = c - *s + 1;
                            }
                            _ => segments.push((c, 1)),
                        }
                        values.push(scaled);
                    }
                }
                for r in 0..self.rows {
                    if r == pivot_row {
                        continue;
                    }
                    let factor = self.data[r * cols + pivot_col];
                    if factor == 0.0 {
                        continue;
                    }
                    let row = &mut self.data[r * cols..(r + 1) * cols];
                    let mut offset = 0usize;
                    for &(s, len) in &segments {
                        let source = &values[offset..offset + len];
                        for (value, &p) in row[s..s + len].iter_mut().zip(source) {
                            *value -= factor * p;
                        }
                        offset += len;
                    }
                    row[pivot_col] = 0.0;
                }
                self.scratch_segments = segments;
                self.scratch_values = values;
            }
        }
        self.basis[pivot_row] = pivot_col;
        self.stats.pivots += 1;
        if self.options.record_trace {
            self.stats.trace.push((pivot_row, pivot_col));
        }
    }

    /// True when the optimum the tableau currently expresses is provably
    /// unique: every nonbasic non-artificial column has a strictly
    /// positive reduced cost. A zero reduced cost means the optimal face
    /// has dimension > 0 and another vertex attains the same objective.
    pub(crate) fn optimum_is_unique(&self, tol: f64) -> bool {
        let obj = self.obj_row();
        let mut in_basis = vec![false; self.artificial_start];
        for &b in &self.basis[..self.rows - 1] {
            if b < self.artificial_start {
                in_basis[b] = true;
            }
        }
        (0..self.artificial_start).all(|c| in_basis[c] || self.at(obj, c) > tol)
    }

    /// Full-width Gauss-Jordan elimination: scale the pivot row by `inv`,
    /// then sweep every other row with a nonzero pivot-column entry.
    fn dense_pivot(&mut self, pivot_row: usize, pivot_col: usize, inv: f64) {
        let cols = self.cols;
        let start = pivot_row * cols;
        for c in 0..cols {
            self.data[start + c] *= inv;
        }
        // Snap the pivot entry exactly to 1 to limit drift.
        self.data[start + pivot_col] = 1.0;

        let pivot_row_copy: Vec<f64> = self.data[start..start + cols].to_vec();
        for r in 0..self.rows {
            if r == pivot_row {
                continue;
            }
            let factor = self.data[r * cols + pivot_col];
            if factor == 0.0 {
                continue;
            }
            let row = &mut self.data[r * cols..(r + 1) * cols];
            for (value, &p) in row.iter_mut().zip(&pivot_row_copy) {
                *value -= factor * p;
            }
            row[pivot_col] = 0.0;
        }
    }

    /// Installs the phase-2 objective: zeroes the objective row, writes the
    /// structural costs, and eliminates the reduced costs of every basic
    /// variable so the row is expressed over the current basis.
    pub(crate) fn install_objective(&mut self, costs: &[f64]) {
        let obj = self.obj_row();
        let cols = self.cols;
        let n = costs.len();
        for c in 0..cols {
            self.set(obj, c, 0.0);
        }
        for (v, &cost) in costs.iter().enumerate() {
            self.set(obj, v, cost);
        }
        let sparse = self.options.pivot_mode == PivotMode::Sparse;
        for r in 0..self.rows - 1 {
            let b = self.basis[r];
            let cost = if b < n { costs[b] } else { 0.0 };
            if cost != 0.0 {
                let row: Vec<f64> = self.data[r * cols..(r + 1) * cols].to_vec();
                let orow = &mut self.data[obj * cols..(obj + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(&row) {
                    if sparse && v == 0.0 {
                        continue;
                    }
                    *o -= cost * v;
                }
            }
        }
    }

    /// Runs simplex until optimality over columns `< allowed_cols`.
    pub(crate) fn optimize(
        &mut self,
        allowed_cols: usize,
        iterations: &mut usize,
    ) -> Result<(), SolveError> {
        let tol = self.options.tolerance;
        let mut stall = 0usize;
        let mut last_objective = self.at(self.obj_row(), self.rhs_col());
        loop {
            if *iterations >= self.options.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            let bland = stall > self.options.stall_threshold;
            let obj = self.obj_row();

            // Entering column.
            let mut entering: Option<usize> = None;
            let mut best = -tol;
            for c in 0..allowed_cols {
                let reduced = self.at(obj, c);
                if bland {
                    if reduced < -tol {
                        entering = Some(c);
                        break;
                    }
                } else if reduced < best {
                    best = reduced;
                    entering = Some(c);
                }
            }
            let Some(enter) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test.
            let rhs_col = self.rhs_col();
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows - 1 {
                let coeff = self.at(r, enter);
                if coeff > tol {
                    let ratio = self.at(r, rhs_col) / coeff;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(SolveError::Unbounded);
            };

            self.pivot(leave, enter);
            *iterations += 1;

            let objective = self.at(self.obj_row(), self.rhs_col());
            if objective < last_objective - tol {
                stall = 0;
                last_objective = objective;
            } else {
                stall += 1;
            }
        }
    }
}

/// Result of [`solve_standard_form_full`]: structural values plus the
/// optimal basis and pivot counters.
pub(crate) struct FullSolution {
    pub(crate) values: Vec<f64>,
    pub(crate) basis: Basis,
    pub(crate) stats: SolveStats,
}

/// Solves `min c·x` subject to `constraints` and `x ≥ 0`, returning the
/// structural values together with the optimal basis and solve statistics.
pub(crate) fn solve_standard_form_full(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
) -> Result<FullSolution, SolveError> {
    solve_standard_form_inner(costs, constraints, options, false).map(|(full, _)| full)
}

/// [`solve_standard_form_full`] that additionally captures the final
/// tableau as a [`TableauSnapshot`] for RHS-only warm restarts. Capturing
/// keeps the artificial columns live through phase 2 (they hold the basis
/// inverse the snapshot needs), which every pivot mode computes the same
/// observable cells for, so the solution and pivot trace are unchanged.
pub(crate) fn solve_standard_form_snapshot(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
) -> Result<(FullSolution, TableauSnapshot), SolveError> {
    solve_standard_form_inner(costs, constraints, options, true)
        .map(|(full, snapshot)| (full, snapshot.expect("capture was requested")))
}

fn solve_standard_form_inner(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
    capture: bool,
) -> Result<(FullSolution, Option<TableauSnapshot>), SolveError> {
    options.validate()?;
    let n = costs.len();
    let m = constraints.len();
    let tol = options.tolerance;

    // Column layout.
    let mut slack_count = 0usize;
    let mut artificial_count = 0usize;
    for c in constraints {
        let rhs_negative = c.rhs < 0.0;
        let sense = effective_sense(c.sense, rhs_negative);
        match sense {
            ConstraintSense::Le => slack_count += 1,
            ConstraintSense::Ge => {
                slack_count += 1;
                artificial_count += 1;
            }
            ConstraintSense::Eq => artificial_count += 1,
        }
    }
    let slack_start = n;
    let artificial_start = n + slack_count;
    let total_vars = n + slack_count + artificial_count;
    let cols = total_vars + 1;
    let rows = m + 1;

    let mut t = Tableau {
        rows,
        cols,
        data: vec![0.0; rows * cols],
        basis: vec![usize::MAX; m],
        origin: (0..m).collect(),
        artificial_start,
        options,
        stats: SolveStats::default(),
        scratch_segments: Vec::new(),
        scratch_values: Vec::new(),
        freeze_artificials: false,
    };

    // Fill constraint rows, recording the per-row layout for warm restarts.
    let mut layout: Vec<RowLayout> = Vec::with_capacity(m);
    let mut next_slack = slack_start;
    let mut next_artificial = artificial_start;
    for (r, c) in constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(var, coeff) in &c.terms {
            let cell = r * cols + var.0;
            t.data[cell] += sign * coeff; // accumulate duplicate terms
        }
        t.set(r, t.rhs_col(), sign * c.rhs);
        let mut slack = usize::MAX;
        match effective_sense(c.sense, flip) {
            ConstraintSense::Le => {
                t.set(r, next_slack, 1.0);
                t.basis[r] = next_slack;
                slack = next_slack;
                next_slack += 1;
            }
            ConstraintSense::Ge => {
                t.set(r, next_slack, -1.0);
                slack = next_slack;
                next_slack += 1;
                t.set(r, next_artificial, 1.0);
                t.basis[r] = next_artificial;
                next_artificial += 1;
            }
            ConstraintSense::Eq => {
                t.set(r, next_artificial, 1.0);
                t.basis[r] = next_artificial;
                next_artificial += 1;
            }
        }
        layout.push(RowLayout { sense: c.sense, flipped: flip, slack });
    }

    let mut iterations = 0usize;

    // ---- Phase 1: minimize sum of artificials ----
    if artificial_count > 0 {
        let obj = t.obj_row();
        for a in artificial_start..total_vars {
            t.set(obj, a, 1.0);
        }
        // Zero out reduced costs of the basic artificials.
        let sparse = t.options.pivot_mode == PivotMode::Sparse;
        for r in 0..m {
            if t.basis[r] >= artificial_start {
                let row: Vec<f64> = t.data[r * cols..(r + 1) * cols].to_vec();
                let orow = &mut t.data[obj * cols..(obj + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(&row) {
                    if sparse && v == 0.0 {
                        continue;
                    }
                    *o -= v;
                }
            }
        }
        t.optimize(total_vars, &mut iterations)?;
        let phase1 = -t.at(t.obj_row(), t.rhs_col());
        // Objective row stores -value after eliminations; the minimized sum
        // of artificials is the negation of the stored rhs entry.
        if phase1.abs() > tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }

        // Drive remaining artificials out of the basis.
        let mut r = 0usize;
        while r < t.rows - 1 {
            if t.basis[r] >= artificial_start {
                let mut pivoted = false;
                for c in 0..artificial_start {
                    if t.at(r, c).abs() > 1e-7 {
                        t.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: remove it.
                    remove_row(&mut t, r);
                    continue;
                }
            }
            r += 1;
        }
    }
    t.stats.phase1_pivots = t.stats.pivots;

    // ---- Phase 2: original objective ----
    // Artificial columns are dead from here on (they may not re-enter and
    // nothing below reads them), so sparse pivots stop maintaining them —
    // unless a snapshot capture was requested: the artificial (and slack)
    // columns of the final tableau are the rows of the basis inverse the
    // snapshot's RHS recompute reads.
    t.freeze_artificials = !capture && t.options.pivot_mode == PivotMode::Sparse;
    t.install_objective(costs);
    // Artificials may not re-enter.
    t.optimize(t.artificial_start, &mut iterations)?;

    // Extract structural solution, normalizing negative zeros so sparse and
    // dense pivot modes return bit-identical values.
    let mut values = vec![0.0; n];
    let rhs = t.rhs_col();
    for r in 0..t.rows - 1 {
        let b = t.basis[r];
        if b < n {
            let v = t.at(r, rhs);
            values[b] = if v == 0.0 { 0.0 } else { v };
        }
    }
    let unique = t.optimum_is_unique(tol);
    let snapshot = capture.then(|| TableauSnapshot {
        // A non-unique optimum is refused by the warm path in O(1), so
        // storing its tableau would only hold memory; keep the fingerprint
        // and drop the data.
        data: if unique { t.data.clone() } else { Vec::new() },
        rows: t.rows,
        cols: t.cols,
        basis_cols: t.basis.clone(),
        kept_rows: t.origin.clone(),
        variables: n,
        slack_count,
        artificial_start,
        layout: layout.clone(),
        costs: costs.to_vec(),
        unique,
    });
    let basis = Basis {
        columns: t.basis.clone(),
        kept_rows: t.origin.clone(),
        variables: n,
        slack_count,
        layout,
        unique,
    };
    let stats = std::mem::take(&mut t.stats);
    Ok((FullSolution { values, basis, stats }, snapshot))
}

pub(crate) fn effective_sense(sense: ConstraintSense, flipped: bool) -> ConstraintSense {
    if !flipped {
        return sense;
    }
    match sense {
        ConstraintSense::Le => ConstraintSense::Ge,
        ConstraintSense::Ge => ConstraintSense::Le,
        ConstraintSense::Eq => ConstraintSense::Eq,
    }
}

/// Removes constraint row `r` from the tableau (redundant after phase 1).
fn remove_row(t: &mut Tableau, r: usize) {
    let cols = t.cols;
    let start = r * cols;
    t.data.drain(start..start + cols);
    t.basis.remove(r);
    t.origin.remove(r);
    t.rows -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Sense, VarId};

    const EPS: f64 = 1e-7;

    #[test]
    fn infeasible_program_is_detected() {
        // x <= 1 and x >= 2
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, 1.0)], 1.0);
        lp.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_program_is_detected() {
        // min -x, x unconstrained above
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", -1.0);
        lp.add_ge(&[(x, 1.0)], 0.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -5  <=>  x >= 5
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, -1.0)], -5.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 5.0).abs() < EPS);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // (x + x) <= 6  => x <= 3; maximize x
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, 1.0), (x, 1.0)], 6.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 3.0).abs() < EPS);
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        // x + y = 4 stated twice plus x - y = 0 => x = y = 2.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 2.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 2.0).abs() < EPS);
        assert!((sol[y] - 2.0).abs() < EPS);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic degenerate LP that cycles under naive Dantzig:
        // min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
        // s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
        //      0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
        //      x3 <= 1
        // Optimum: -0.05 at x = (0.04/0.8.., ...) — objective is -1/20.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x1 = lp.add_variable("x1", -0.75);
        let x2 = lp.add_variable("x2", 150.0);
        let x3 = lp.add_variable("x3", -0.02);
        let x4 = lp.add_variable("x4", 6.0);
        lp.add_le(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        lp.add_le(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        lp.add_le(&[(x3, 1.0)], 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - (-0.05)).abs() < 1e-6, "objective {}", sol.objective);
    }

    #[test]
    fn degenerate_transport_problem() {
        // Balanced 2x2 transportation problem with degenerate basis.
        // supplies (10, 10), demands (10, 10), costs [[1, 2], [3, 1]].
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x11 = lp.add_variable("x11", 1.0);
        let x12 = lp.add_variable("x12", 2.0);
        let x21 = lp.add_variable("x21", 3.0);
        let x22 = lp.add_variable("x22", 1.0);
        lp.add_eq(&[(x11, 1.0), (x12, 1.0)], 10.0);
        lp.add_eq(&[(x21, 1.0), (x22, 1.0)], 10.0);
        lp.add_eq(&[(x11, 1.0), (x21, 1.0)], 10.0);
        lp.add_eq(&[(x12, 1.0), (x22, 1.0)], 10.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < EPS);
        assert!((sol[x11] - 10.0).abs() < EPS);
        assert!((sol[x22] - 10.0).abs() < EPS);
    }

    #[test]
    fn zero_variable_program() {
        let lp = LinearProgram::new(Sense::Minimize);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(sol.values.is_empty());
    }

    #[test]
    fn constraint_only_feasibility_check() {
        // No objective (all costs zero): solver acts as a feasibility oracle.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 0.0);
        let y = lp.add_variable("y", 0.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        lp.add_ge(&[(x, 1.0)], 1.0);
        let sol = lp.solve().unwrap();
        assert!(sol[x] >= 1.0 - EPS);
        assert!((sol[x] + sol[y] - 3.0).abs() < EPS);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let mut vars = Vec::new();
        for i in 0..20 {
            vars.push(lp.add_variable(format!("x{i}"), -1.0));
        }
        for i in 0..20 {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, if v.index() == i { 2.0 } else { 1.0 })).collect();
            lp.add_le(&terms, 100.0);
        }
        lp.set_options(SimplexOptions { max_iterations: 1, ..Default::default() });
        assert_eq!(lp.solve().unwrap_err(), SolveError::IterationLimit);
    }

    #[test]
    fn klee_minty_3d_solves_to_corner() {
        // Klee-Minty cube in 3 dimensions: max 100x1 + 10x2 + x3
        // s.t. x1 <= 1; 20x1 + x2 <= 100; 200x1 + 20x2 + x3 <= 10000.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x1 = lp.add_variable("x1", 100.0);
        let x2 = lp.add_variable("x2", 10.0);
        let x3 = lp.add_variable("x3", 1.0);
        lp.add_le(&[(x1, 1.0)], 1.0);
        lp.add_le(&[(x1, 20.0), (x2, 1.0)], 100.0);
        lp.add_le(&[(x1, 200.0), (x2, 20.0), (x3, 1.0)], 10_000.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 10_000.0).abs() < 1e-6);
        assert!(sol[x1].abs() < EPS);
        assert!(sol[x2].abs() < EPS);
        assert!((sol[x3] - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_sense_problem() {
        // min x + y + z
        // x + y >= 4; y + z = 6; x <= 3
        // optimum: x=0, y=4..6... let's check: y+z=6 fixed sum, minimize
        // x+y+z = x + y + (6-y) = x + 6 => x = 0 as long as y >= 4 feasible
        // (y <= 6, z = 6 - y >= 0). So optimum 6 with y in [4,6].
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 1.0);
        let z = lp.add_variable("z", 1.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(y, 1.0), (z, 1.0)], 6.0);
        lp.add_le(&[(x, 1.0)], 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 6.0).abs() < EPS, "objective {}", sol.objective);
        assert!(sol[x].abs() < EPS);
        assert!(sol[y] >= 4.0 - EPS && sol[y] <= 6.0 + EPS);
        assert!((sol[y] + sol[z] - 6.0).abs() < EPS);
    }

    #[test]
    fn equality_with_negative_rhs() {
        // -x - y = -8 with min x s.t. y <= 5 => x = 3.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 0.0);
        lp.add_eq(&[(x, -1.0), (y, -1.0)], -8.0);
        lp.add_le(&[(y, 1.0)], 5.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 3.0).abs() < EPS);
        assert!((sol[y] - 5.0).abs() < EPS);
    }

    fn mixed_example() -> LinearProgram {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 1.0);
        let z = lp.add_variable("z", 1.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(y, 1.0), (z, 1.0)], 6.0);
        lp.add_le(&[(x, 1.0)], 3.0);
        lp
    }

    #[test]
    fn sparse_and_dense_modes_agree_bit_for_bit() {
        let mut sparse = mixed_example();
        sparse.set_options(SimplexOptions {
            pivot_mode: PivotMode::Sparse,
            record_trace: true,
            ..Default::default()
        });
        let mut dense = mixed_example();
        dense.set_options(SimplexOptions {
            pivot_mode: PivotMode::Dense,
            record_trace: true,
            ..Default::default()
        });
        let (s_sol, s_basis, s_stats) = sparse.solve_with_basis().unwrap();
        let (d_sol, d_basis, d_stats) = dense.solve_with_basis().unwrap();
        assert_eq!(s_stats.trace, d_stats.trace, "pivot sequences differ");
        assert_eq!(s_basis, d_basis);
        assert_eq!(s_sol.objective.to_bits(), d_sol.objective.to_bits());
        let s_bits: Vec<u64> = s_sol.values.iter().map(|v| v.to_bits()).collect();
        let d_bits: Vec<u64> = d_sol.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(s_bits, d_bits);
    }

    #[test]
    fn invalid_tolerance_is_rejected() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_ge(&[(x, 1.0)], 1.0);
        for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
            lp.set_options(SimplexOptions { tolerance: bad, ..Default::default() });
            assert_eq!(lp.solve().unwrap_err(), SolveError::InvalidOptions("tolerance"));
        }
    }

    #[test]
    fn zero_iteration_budgets_are_rejected() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_ge(&[(x, 1.0)], 1.0);
        lp.set_options(SimplexOptions { max_iterations: 0, ..Default::default() });
        assert_eq!(lp.solve().unwrap_err(), SolveError::InvalidOptions("max_iterations"));
        lp.set_options(SimplexOptions { stall_threshold: 0, ..Default::default() });
        assert_eq!(lp.solve().unwrap_err(), SolveError::InvalidOptions("stall_threshold"));
    }

    #[test]
    fn invalid_options_error_names_the_field() {
        let message = SolveError::InvalidOptions("tolerance").to_string();
        assert!(message.contains("tolerance"), "{message}");
    }

    #[test]
    fn stats_count_pivots_and_phases() {
        let mut lp = mixed_example();
        lp.set_options(SimplexOptions::default());
        let (_, _, stats) = lp.solve_with_basis().unwrap();
        assert!(stats.pivots > 0);
        assert!(stats.phase1_pivots <= stats.pivots);
        assert!(!stats.warm_start);
        assert_eq!(stats.refactor_pivots, 0);
        assert!(stats.trace.is_empty(), "trace off by default");
    }
}
