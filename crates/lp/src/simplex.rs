//! Two-phase primal simplex over a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution (or prove infeasibility); phase 2 optimizes the real
//! objective. Entering variables follow Dantzig's rule until the objective
//! stalls, then Bland's rule, which guarantees termination on degenerate
//! problems.

use std::error::Error;
use std::fmt;

use crate::problem::{Constraint, ConstraintSense};

/// Tunable solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Feasibility/optimality tolerance.
    pub tolerance: f64,
    /// Hard cap on pivots across both phases.
    pub max_iterations: usize,
    /// Number of non-improving pivots before switching to Bland's rule.
    pub stall_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self { tolerance: 1e-9, max_iterations: 200_000, stall_threshold: 256 }
    }
}

/// Failure modes of [`crate::LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint set has no feasible point.
    Infeasible,
    /// The objective is unbounded below (for minimization).
    Unbounded,
    /// The pivot budget was exhausted before reaching an optimum.
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for SolveError {}

/// Dense simplex tableau. Rows `0..m` are constraints; the last row is the
/// objective. Column layout: structural variables, then slacks/surpluses,
/// then artificials, then the RHS.
struct Tableau {
    rows: usize,
    cols: usize, // including rhs column
    data: Vec<f64>,
    basis: Vec<usize>,
    artificial_start: usize,
    options: SimplexOptions,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    fn rhs_col(&self) -> usize {
        self.cols - 1
    }

    fn obj_row(&self) -> usize {
        self.rows - 1
    }

    /// Gauss-Jordan pivot on (`pivot_row`, `pivot_col`).
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let cols = self.cols;
        let start = pivot_row * cols;
        let pivot_value = self.data[start + pivot_col];
        debug_assert!(pivot_value.abs() > 0.0, "zero pivot");
        let inv = 1.0 / pivot_value;
        for c in 0..cols {
            self.data[start + c] *= inv;
        }
        // Snap the pivot entry exactly to 1 to limit drift.
        self.data[start + pivot_col] = 1.0;

        let pivot_row_copy: Vec<f64> = self.data[start..start + cols].to_vec();
        for r in 0..self.rows {
            if r == pivot_row {
                continue;
            }
            let factor = self.data[r * cols + pivot_col];
            if factor == 0.0 {
                continue;
            }
            let row = &mut self.data[r * cols..(r + 1) * cols];
            for (value, &p) in row.iter_mut().zip(&pivot_row_copy) {
                *value -= factor * p;
            }
            row[pivot_col] = 0.0;
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Runs simplex until optimality over columns `< allowed_cols`.
    fn optimize(&mut self, allowed_cols: usize, iterations: &mut usize) -> Result<(), SolveError> {
        let tol = self.options.tolerance;
        let mut stall = 0usize;
        let mut last_objective = self.at(self.obj_row(), self.rhs_col());
        loop {
            if *iterations >= self.options.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            let bland = stall > self.options.stall_threshold;
            let obj = self.obj_row();

            // Entering column.
            let mut entering: Option<usize> = None;
            let mut best = -tol;
            for c in 0..allowed_cols {
                let reduced = self.at(obj, c);
                if bland {
                    if reduced < -tol {
                        entering = Some(c);
                        break;
                    }
                } else if reduced < best {
                    best = reduced;
                    entering = Some(c);
                }
            }
            let Some(enter) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test.
            let rhs_col = self.rhs_col();
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows - 1 {
                let coeff = self.at(r, enter);
                if coeff > tol {
                    let ratio = self.at(r, rhs_col) / coeff;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(SolveError::Unbounded);
            };

            self.pivot(leave, enter);
            *iterations += 1;

            let objective = self.at(self.obj_row(), self.rhs_col());
            if objective < last_objective - tol {
                stall = 0;
                last_objective = objective;
            } else {
                stall += 1;
            }
        }
    }
}

/// Solves `min c·x` subject to `constraints` and `x ≥ 0`.
/// Returns the optimal values of the structural variables.
pub(crate) fn solve_standard_form(
    costs: &[f64],
    constraints: &[Constraint],
    options: SimplexOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = costs.len();
    let m = constraints.len();
    let tol = options.tolerance;

    // Column layout.
    let mut slack_count = 0usize;
    let mut artificial_count = 0usize;
    for c in constraints {
        let rhs_negative = c.rhs < 0.0;
        let sense = effective_sense(c.sense, rhs_negative);
        match sense {
            ConstraintSense::Le => slack_count += 1,
            ConstraintSense::Ge => {
                slack_count += 1;
                artificial_count += 1;
            }
            ConstraintSense::Eq => artificial_count += 1,
        }
    }
    let slack_start = n;
    let artificial_start = n + slack_count;
    let total_vars = n + slack_count + artificial_count;
    let cols = total_vars + 1;
    let rows = m + 1;

    let mut t = Tableau {
        rows,
        cols,
        data: vec![0.0; rows * cols],
        basis: vec![usize::MAX; m],
        artificial_start,
        options,
    };

    // Fill constraint rows.
    let mut next_slack = slack_start;
    let mut next_artificial = artificial_start;
    for (r, c) in constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(var, coeff) in &c.terms {
            let cell = r * cols + var.0;
            t.data[cell] += sign * coeff; // accumulate duplicate terms
        }
        t.set(r, t.rhs_col(), sign * c.rhs);
        match effective_sense(c.sense, flip) {
            ConstraintSense::Le => {
                t.set(r, next_slack, 1.0);
                t.basis[r] = next_slack;
                next_slack += 1;
            }
            ConstraintSense::Ge => {
                t.set(r, next_slack, -1.0);
                next_slack += 1;
                t.set(r, next_artificial, 1.0);
                t.basis[r] = next_artificial;
                next_artificial += 1;
            }
            ConstraintSense::Eq => {
                t.set(r, next_artificial, 1.0);
                t.basis[r] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    let mut iterations = 0usize;

    // ---- Phase 1: minimize sum of artificials ----
    if artificial_count > 0 {
        let obj = t.obj_row();
        for a in artificial_start..total_vars {
            t.set(obj, a, 1.0);
        }
        // Zero out reduced costs of the basic artificials.
        for r in 0..m {
            if t.basis[r] >= artificial_start {
                let row: Vec<f64> = t.data[r * cols..(r + 1) * cols].to_vec();
                let orow = &mut t.data[obj * cols..(obj + 1) * cols];
                for (o, v) in orow.iter_mut().zip(&row) {
                    *o -= v;
                }
            }
        }
        t.optimize(total_vars, &mut iterations)?;
        let phase1 = -t.at(t.obj_row(), t.rhs_col());
        // Objective row stores -value after eliminations; the minimized sum
        // of artificials is the negation of the stored rhs entry.
        if phase1.abs() > tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }

        // Drive remaining artificials out of the basis.
        let mut r = 0usize;
        while r < t.rows - 1 {
            if t.basis[r] >= artificial_start {
                let mut pivoted = false;
                for c in 0..artificial_start {
                    if t.at(r, c).abs() > 1e-7 {
                        t.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: remove it.
                    remove_row(&mut t, r);
                    continue;
                }
            }
            r += 1;
        }
    }

    // ---- Phase 2: original objective ----
    {
        let obj = t.obj_row();
        let rhs = t.rhs_col();
        for c in 0..cols {
            t.set(obj, c, 0.0);
        }
        for (v, &cost) in costs.iter().enumerate() {
            t.set(obj, v, cost);
        }
        t.set(obj, rhs, 0.0);
        // Make reduced costs of basic variables zero.
        for r in 0..t.rows - 1 {
            let b = t.basis[r];
            let cost = if b < n { costs[b] } else { 0.0 };
            if cost != 0.0 {
                let row: Vec<f64> = t.data[r * cols..(r + 1) * cols].to_vec();
                let orow = &mut t.data[obj * cols..(obj + 1) * cols];
                for (o, v) in orow.iter_mut().zip(&row) {
                    *o -= cost * v;
                }
            }
        }
        // Artificials may not re-enter.
        t.optimize(t.artificial_start, &mut iterations)?;
    }

    // Extract structural solution.
    let mut values = vec![0.0; n];
    let rhs = t.rhs_col();
    for r in 0..t.rows - 1 {
        let b = t.basis[r];
        if b < n {
            values[b] = t.at(r, rhs);
        }
    }
    Ok(values)
}

fn effective_sense(sense: ConstraintSense, flipped: bool) -> ConstraintSense {
    if !flipped {
        return sense;
    }
    match sense {
        ConstraintSense::Le => ConstraintSense::Ge,
        ConstraintSense::Ge => ConstraintSense::Le,
        ConstraintSense::Eq => ConstraintSense::Eq,
    }
}

/// Removes constraint row `r` from the tableau (redundant after phase 1).
fn remove_row(t: &mut Tableau, r: usize) {
    let cols = t.cols;
    let start = r * cols;
    t.data.drain(start..start + cols);
    t.basis.remove(r);
    t.rows -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Sense, VarId};

    const EPS: f64 = 1e-7;

    #[test]
    fn infeasible_program_is_detected() {
        // x <= 1 and x >= 2
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, 1.0)], 1.0);
        lp.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_program_is_detected() {
        // min -x, x unconstrained above
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", -1.0);
        lp.add_ge(&[(x, 1.0)], 0.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -5  <=>  x >= 5
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, -1.0)], -5.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 5.0).abs() < EPS);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // (x + x) <= 6  => x <= 3; maximize x
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable("x", 1.0);
        lp.add_le(&[(x, 1.0), (x, 1.0)], 6.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 3.0).abs() < EPS);
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        // x + y = 4 stated twice plus x - y = 0 => x = y = 2.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 2.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 2.0).abs() < EPS);
        assert!((sol[y] - 2.0).abs() < EPS);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic degenerate LP that cycles under naive Dantzig:
        // min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
        // s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
        //      0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
        //      x3 <= 1
        // Optimum: -0.05 at x = (0.04/0.8.., ...) — objective is -1/20.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x1 = lp.add_variable("x1", -0.75);
        let x2 = lp.add_variable("x2", 150.0);
        let x3 = lp.add_variable("x3", -0.02);
        let x4 = lp.add_variable("x4", 6.0);
        lp.add_le(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        lp.add_le(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        lp.add_le(&[(x3, 1.0)], 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - (-0.05)).abs() < 1e-6, "objective {}", sol.objective);
    }

    #[test]
    fn degenerate_transport_problem() {
        // Balanced 2x2 transportation problem with degenerate basis.
        // supplies (10, 10), demands (10, 10), costs [[1, 2], [3, 1]].
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x11 = lp.add_variable("x11", 1.0);
        let x12 = lp.add_variable("x12", 2.0);
        let x21 = lp.add_variable("x21", 3.0);
        let x22 = lp.add_variable("x22", 1.0);
        lp.add_eq(&[(x11, 1.0), (x12, 1.0)], 10.0);
        lp.add_eq(&[(x21, 1.0), (x22, 1.0)], 10.0);
        lp.add_eq(&[(x11, 1.0), (x21, 1.0)], 10.0);
        lp.add_eq(&[(x12, 1.0), (x22, 1.0)], 10.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < EPS);
        assert!((sol[x11] - 10.0).abs() < EPS);
        assert!((sol[x22] - 10.0).abs() < EPS);
    }

    #[test]
    fn zero_variable_program() {
        let lp = LinearProgram::new(Sense::Minimize);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(sol.values.is_empty());
    }

    #[test]
    fn constraint_only_feasibility_check() {
        // No objective (all costs zero): solver acts as a feasibility oracle.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 0.0);
        let y = lp.add_variable("y", 0.0);
        lp.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        lp.add_ge(&[(x, 1.0)], 1.0);
        let sol = lp.solve().unwrap();
        assert!(sol[x] >= 1.0 - EPS);
        assert!((sol[x] + sol[y] - 3.0).abs() < EPS);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let mut vars = Vec::new();
        for i in 0..20 {
            vars.push(lp.add_variable(format!("x{i}"), -1.0));
        }
        for i in 0..20 {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, if v.index() == i { 2.0 } else { 1.0 })).collect();
            lp.add_le(&terms, 100.0);
        }
        lp.set_options(SimplexOptions { max_iterations: 1, ..Default::default() });
        assert_eq!(lp.solve().unwrap_err(), SolveError::IterationLimit);
    }

    #[test]
    fn klee_minty_3d_solves_to_corner() {
        // Klee-Minty cube in 3 dimensions: max 100x1 + 10x2 + x3
        // s.t. x1 <= 1; 20x1 + x2 <= 100; 200x1 + 20x2 + x3 <= 10000.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x1 = lp.add_variable("x1", 100.0);
        let x2 = lp.add_variable("x2", 10.0);
        let x3 = lp.add_variable("x3", 1.0);
        lp.add_le(&[(x1, 1.0)], 1.0);
        lp.add_le(&[(x1, 20.0), (x2, 1.0)], 100.0);
        lp.add_le(&[(x1, 200.0), (x2, 20.0), (x3, 1.0)], 10_000.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 10_000.0).abs() < 1e-6);
        assert!(sol[x1].abs() < EPS);
        assert!(sol[x2].abs() < EPS);
        assert!((sol[x3] - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_sense_problem() {
        // min x + y + z
        // x + y >= 4; y + z = 6; x <= 3
        // optimum: x=0, y=4..6... let's check: y+z=6 fixed sum, minimize
        // x+y+z = x + y + (6-y) = x + 6 => x = 0 as long as y >= 4 feasible
        // (y <= 6, z = 6 - y >= 0). So optimum 6 with y in [4,6].
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 1.0);
        let z = lp.add_variable("z", 1.0);
        lp.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq(&[(y, 1.0), (z, 1.0)], 6.0);
        lp.add_le(&[(x, 1.0)], 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 6.0).abs() < EPS, "objective {}", sol.objective);
        assert!(sol[x].abs() < EPS);
        assert!(sol[y] >= 4.0 - EPS && sol[y] <= 6.0 + EPS);
        assert!((sol[y] + sol[z] - 6.0).abs() < EPS);
    }

    #[test]
    fn equality_with_negative_rhs() {
        // -x - y = -8 with min x s.t. y <= 5 => x = 3.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("y", 0.0);
        lp.add_eq(&[(x, -1.0), (y, -1.0)], -8.0);
        lp.add_le(&[(y, 1.0)], 5.0);
        let sol = lp.solve().unwrap();
        assert!((sol[x] - 3.0).abs() < EPS);
        assert!((sol[y] - 5.0).abs() < EPS);
    }
}
