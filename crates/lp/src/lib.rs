//! A self-contained linear-programming solver.
//!
//! The NMAP paper solves its multi-commodity-flow formulations (MCF1 and
//! MCF2, Equations 8–9) with the external `lp_solve` library. This crate is
//! the from-scratch substitute: a **two-phase primal simplex** method over a
//! dense tableau, sufficient for the problem sizes NMAP produces (hundreds
//! of constraints, a few thousand variables).
//!
//! * Build a model with [`LinearProgram`]: add variables (with their
//!   objective coefficients) and constraints (`≤`, `=`, `≥`).
//! * Call [`LinearProgram::solve`] to obtain a [`Solution`] or a
//!   [`SolveError`] describing infeasibility/unboundedness.
//! * For a family of programs that differ only in constraint right-hand
//!   sides (e.g. a bandwidth sweep), call
//!   [`LinearProgram::solve_with_basis`] once and
//!   [`LinearProgram::resolve_with_basis`] afterwards: the dual simplex
//!   re-optimizes from the previous optimal [`Basis`] in a few pivots.
//!   [`LinearProgram::solve_with_snapshot`] /
//!   [`LinearProgram::resolve_with_snapshot`] trade memory for speed:
//!   the captured [`TableauSnapshot`] keeps the whole eliminated tableau,
//!   so the restart skips the refactorization a basis restart pays.
//!
//! Pivot updates are column-sparse by default ([`PivotMode::Sparse`]):
//! eliminations skip entries whose multiplier is exactly zero, which on
//! MCF tableaux (over 90% zeros) removes most of the arithmetic while
//! leaving the executed operations — and therefore every result bit —
//! identical to the dense oracle ([`PivotMode::Dense`]).
//!
//! Determinism: pivot selection uses Dantzig's rule with index tie-breaks
//! and falls back to Bland's rule when stalling is detected, so the solver
//! terminates on degenerate problems and always returns the same answer for
//! the same model. [`SolveStats`] reports pivot counts for instrumentation.
//!
//! # Example
//!
//! ```
//! use noc_lp::{LinearProgram, Sense};
//!
//! // min -x - 2y  s.t.  x + y <= 4, x <= 2, y <= 3, x,y >= 0
//! let mut lp = LinearProgram::new(Sense::Minimize);
//! let x = lp.add_variable("x", -1.0);
//! let y = lp.add_variable("y", -2.0);
//! lp.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! lp.add_le(&[(x, 1.0)], 2.0);
//! lp.add_le(&[(y, 1.0)], 3.0);
//! let sol = lp.solve()?;
//! assert!((sol.objective - (-7.0)).abs() < 1e-9);
//! assert!((sol[x] - 1.0).abs() < 1e-9);
//! assert!((sol[y] - 3.0).abs() < 1e-9);
//! # Ok::<(), noc_lp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod problem;
mod revised;
mod simplex;

pub use problem::{Constraint, ConstraintSense, LinearProgram, Sense, Solution, VarId};
pub use revised::{Basis, TableauSnapshot};
pub use simplex::{PivotMode, SimplexOptions, SolveError, SolveStats};
