//! CPLEX-LP-format export, so any model built here can be cross-checked
//! against an external solver (`lp_solve`, GLPK, HiGHS, …) — the
//! verification path a reproduction of an `lp_solve`-based paper should
//! offer.

use std::fmt::Write as _;

use crate::problem::{ConstraintSense, LinearProgram, Sense};

impl LinearProgram {
    /// Renders the model in CPLEX LP format.
    ///
    /// Variable names are sanitized to `x<index>` (LP-format identifiers
    /// are restrictive); the mapping to the model's own names is emitted
    /// as comments.
    ///
    /// # Example
    ///
    /// ```
    /// use noc_lp::{LinearProgram, Sense};
    /// let mut lp = LinearProgram::new(Sense::Minimize);
    /// let x = lp.add_variable("flow_a", 2.0);
    /// lp.add_le(&[(x, 1.0)], 5.0);
    /// let text = lp.to_lp_format();
    /// assert!(text.contains("Minimize"));
    /// assert!(text.contains("c0: + 1 x0 <= 5"));
    /// ```
    pub fn to_lp_format(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "\\ exported by noc-lp; {} variables, {} constraints",
            self.variable_count(),
            self.constraint_count()
        );
        for i in 0..self.variable_count() {
            let name = self.variable_name(crate::VarId(i));
            if name != format!("x{i}") {
                let _ = writeln!(out, "\\ x{i} = {name}");
            }
        }

        out.push_str(match self.sense() {
            Sense::Minimize => "Minimize\n obj:",
            Sense::Maximize => "Maximize\n obj:",
        });
        let mut any = false;
        for (i, &cost) in self.costs().iter().enumerate() {
            if cost != 0.0 {
                let _ = write!(out, " {} {} x{i}", sign(cost), fmt_mag(cost));
                any = true;
            }
        }
        if !any {
            out.push_str(" 0 x0");
        }
        out.push_str("\nSubject To\n");
        for (r, c) in self.constraints().iter().enumerate() {
            let _ = write!(out, " c{r}:");
            for &(var, coeff) in &c.terms {
                if coeff != 0.0 {
                    let _ = write!(out, " {} {} x{}", sign(coeff), fmt_mag(coeff), var.0);
                }
            }
            let op = match c.sense {
                ConstraintSense::Le => "<=",
                ConstraintSense::Eq => "=",
                ConstraintSense::Ge => ">=",
            };
            let _ = writeln!(out, " {op} {}", fmt_num(c.rhs));
        }
        // All variables are non-negative, which is the LP-format default;
        // state it explicitly for clarity.
        out.push_str("Bounds\n");
        for i in 0..self.variable_count() {
            let _ = writeln!(out, " 0 <= x{i}");
        }
        out.push_str("End\n");
        out
    }
}

fn sign(v: f64) -> char {
    if v < 0.0 {
        '-'
    } else {
        '+'
    }
}

fn fmt_mag(v: f64) -> String {
    fmt_num(v.abs())
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, Sense};

    #[test]
    fn exports_a_small_model() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable("x", 1.0);
        let y = lp.add_variable("flow", -2.5);
        lp.add_le(&[(x, 1.0), (y, 2.0)], 10.0);
        lp.add_ge(&[(y, 1.0)], 1.0);
        lp.add_eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let text = lp.to_lp_format();
        assert!(text.contains("Minimize"));
        assert!(text.contains("obj: + 1 x0 - 2.5 x1"));
        assert!(text.contains("c0: + 1 x0 + 2 x1 <= 10"));
        assert!(text.contains("c1: + 1 x1 >= 1"));
        assert!(text.contains("c2: + 1 x0 - 1 x1 = 0"));
        assert!(text.contains("\\ x1 = flow"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn maximization_and_empty_objective() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable("x0", 0.0);
        lp.add_le(&[(x, 1.0)], 4.0);
        let text = lp.to_lp_format();
        assert!(text.contains("Maximize"));
        assert!(text.contains("obj: 0 x0"), "zero objective must still be syntactic: {text}");
    }

    #[test]
    fn bounds_section_lists_every_variable() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        for i in 0..3 {
            lp.add_variable(format!("v{i}"), 1.0);
        }
        let text = lp.to_lp_format();
        for i in 0..3 {
            assert!(text.contains(&format!("0 <= x{i}")));
        }
    }
}
