//! The sweep engine: runs every [`Scenario`] of a set, optionally on a
//! deterministic `std::thread` worker pool.
//!
// lint: allow-file(wall-clock) — the engine is the repo's sanctioned
// timing seam: every `Instant::now` here feeds `StageTimes`, which the
// report writers exclude from deterministic output by default.
//!
//! Determinism contract: a scenario's record depends only on the scenario
//! itself (its seed is fixed at build time, never derived from worker
//! identity), workers claim scenarios from a shared atomic cursor, and
//! each record is written into the slot of its scenario index — so the
//! returned `Vec<RunRecord>` is in scenario order and its deterministic
//! fields are byte-identical for 1 or N threads. Only the wall-clock
//! [`StageTimes`] vary between runs, and the report writers exclude them
//! by default.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nmap::{
    mcf::{solve_mcf, solve_mcf_warm},
    routing, EvalContext, LinkLoads, MapError, Mapping, MappingProblem, McfKind, McfSolution,
    McfWarmState, PathScope, RoutingTables,
};
use noc_lp::SolveError;
use noc_probe::{Probe, Value};
use noc_sim::{FlowSpec, SimReport, Simulator};
use noc_units::Mbps;

use crate::cache::{self, CacheStats, Lookup, StageCache};
use crate::report::{RunRecord, SimStats, StageTimes, SweepReport};
use crate::scenario::{
    topology_label, MapperSpec, RoutingSpec, Scenario, ScenarioSet, SimulateSpec,
};
use crate::shard::{Checkpoint, ShardPlan};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` (the default) uses the machine's available
    /// parallelism. The pool never spawns more workers than scenarios.
    pub threads: usize,
    /// Warm-start the MCF route stage's LP across a sweep's bandwidth
    /// axis: scenarios sharing a [`cache::warm_lineage_key`] chain their
    /// optimal simplex tableaux through [`solve_mcf_warm`]'s dual simplex
    /// instead of cold two-phase solves. Off by default. Records are
    /// byte-identical either way — a warm result is used only when
    /// `noc-lp`'s uniqueness guard proves the optimum unique, every other
    /// case falls back to the cold path — but the `lp.warm_start.*`
    /// counters depend on which capacity point of a lineage solves first,
    /// so they are interleaving-dependent above one thread.
    pub warm_lp: bool,
}

/// Per-lineage warm-start slots for the MCF route stage, shared across a
/// sweep. Keyed by [`cache::warm_lineage_key`]; each slot holds the last
/// optimal [`McfWarmState`] per objective kind, and its lock is held
/// across the LP solve so one lineage's capacity points chain their
/// tableaux sequentially while distinct lineages solve in parallel.
#[derive(Debug, Default)]
pub struct WarmLpStore {
    slots: Mutex<BTreeMap<String, Arc<Mutex<WarmSlot>>>>,
}

/// One lineage's warm state. FlowMin and SlackMin chains are kept apart:
/// the engine's MCF fallback (FlowMin infeasible → SlackMin) would
/// otherwise clobber the FlowMin lineage at the first infeasible point.
#[derive(Debug, Default)]
struct WarmSlot {
    flow_min: WarmChain,
    slack_min: WarmChain,
}

/// A consecutive-refusal budget per chain: when the uniqueness guard (or a
/// basis mismatch) keeps refusing reuse, the instance's optima are
/// structurally non-unique and further warm attempts are pointless (the
/// O(1) snapshot refusal is cheap, but each point still re-captures state
/// it will never use). After this many refusals in a row the chain stops
/// attempting warm starts; one accepted reuse resets the count.
const WARM_REFUSAL_LIMIT: u32 = 2;

/// One objective kind's tableau chain plus its refusal strike count.
#[derive(Debug, Default)]
struct WarmChain {
    state: Option<McfWarmState>,
    refusals: u32,
}

impl WarmLpStore {
    /// The lineage's slot, created on first use.
    fn slot(&self, lineage: &str) -> Arc<Mutex<WarmSlot>> {
        let mut slots = self.slots.lock().expect("warm slots not poisoned");
        Arc::clone(slots.entry(lineage.to_string()).or_default())
    }
}

/// Runs every scenario of `set` and aggregates the records into a
/// [`SweepReport`] (records in scenario order).
pub fn run_sweep(set: &ScenarioSet, options: &EngineOptions) -> SweepReport {
    run_sweep_probed(set, options, &Probe::default())
}

/// [`run_sweep`] with instrumentation attached: stage-time histograms,
/// worker utilization, per-scenario run-log events and a sweep-level
/// `dse.sweep` summary event land in `probe`. The probe observes only —
/// the returned report is byte-identical to an unprobed run.
pub fn run_sweep_probed(set: &ScenarioSet, options: &EngineOptions, probe: &Probe) -> SweepReport {
    let warm = options.warm_lp.then(WarmLpStore::default);
    let records = run_scenarios_warm(
        set.scenarios(),
        options.threads,
        probe,
        &StageCache::in_memory(),
        warm.as_ref(),
    );
    if probe.is_enabled() {
        let failed = records.iter().filter(|r| !r.is_ok()).count();
        let feasible = records.iter().filter(|r| r.feasible).count();
        probe.emit(
            "dse.sweep",
            &[
                ("scenarios", Value::from(records.len())),
                ("failed", Value::from(failed)),
                ("feasible", Value::from(feasible)),
                ("threads", Value::from(options.threads)),
            ],
        );
    }
    SweepReport::new(records)
}

/// Runs `scenarios` on `threads` workers (`0` = available parallelism),
/// returning records in scenario order. Scenario-level failures (app does
/// not fit, unroutable, LP breakdown) become records with a non-empty
/// `error` field; they never abort the sweep.
pub fn run_scenarios(scenarios: &[Scenario], threads: usize) -> Vec<RunRecord> {
    run_scenarios_probed(scenarios, threads, &Probe::default())
}

/// [`run_scenarios`] with instrumentation attached (see
/// [`run_sweep_probed`] for what the probe collects). A fresh in-memory
/// [`StageCache`] spans the call, so scenarios sharing a map or route
/// stage (the routing × bandwidth axes) compute it exactly once.
pub fn run_scenarios_probed(
    scenarios: &[Scenario],
    threads: usize,
    probe: &Probe,
) -> Vec<RunRecord> {
    run_scenarios_cached(scenarios, threads, probe, &StageCache::in_memory())
}

/// [`run_scenarios_probed`] against a caller-owned [`StageCache`] — the
/// seam for cross-sweep reuse (a warm cache spanning several calls, or
/// one with an on-disk tier). Stage memoization preserves the byte-
/// identical-output contract: cache keys capture every input a stage
/// reads, so a cached result equals the computed one by construction.
pub fn run_scenarios_cached(
    scenarios: &[Scenario],
    threads: usize,
    probe: &Probe,
    cache: &StageCache,
) -> Vec<RunRecord> {
    run_scenarios_warm(scenarios, threads, probe, cache, None)
}

/// [`run_scenarios_cached`] with an optional warm-start store for the MCF
/// route stage (see [`WarmLpStore`]); `None` keeps every LP solve cold.
/// Passing a store spanning several calls chains bases across them.
pub fn run_scenarios_warm(
    scenarios: &[Scenario],
    threads: usize,
    probe: &Probe,
    cache: &StageCache,
    warm: Option<&WarmLpStore>,
) -> Vec<RunRecord> {
    pool_map_probed(scenarios.len(), threads, probe, |i| {
        run_scenario_warm(&scenarios[i], probe, cache, warm)
    })
}

/// Default scenarios per shard for [`run_sweep_sharded`]: small enough
/// that a kill loses little work, large enough that per-shard pool and
/// checkpoint overhead stays negligible.
pub const DEFAULT_SHARD_SIZE: usize = 64;

/// Configuration of a sharded, optionally checkpointed sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker threads per shard; `0` uses available parallelism.
    pub threads: usize,
    /// Scenarios per shard; `0` uses [`DEFAULT_SHARD_SIZE`].
    pub shard_size: usize,
    /// Checkpoint directory: completed shards persist here and are
    /// skipped on re-run (see [`crate::shard::Checkpoint`]). `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Stage-cache directory: attaches the on-disk map tier
    /// ([`StageCache::with_disk`]) for cross-run reuse. `None` keeps the
    /// cache in-memory (still spanning the whole sweep).
    pub cache_dir: Option<PathBuf>,
    /// Stop after executing this many shards (restored shards do not
    /// count) and return with `completed = false` — the seam kill-and-
    /// resume tests and bounded-work runs use. `None` runs to the end.
    pub shard_budget: Option<usize>,
    /// Warm-start the MCF route stage's LP across the bandwidth axis (see
    /// [`EngineOptions::warm_lp`]); the warm store spans shards, so a
    /// lineage's basis chain survives shard boundaries.
    pub warm_lp: bool,
    /// Byte budget for the stage cache's in-memory tiers (see
    /// [`StageCache::with_mem_cap`]); `None` is unbounded.
    pub cache_mem_cap: Option<usize>,
}

/// What a sharded sweep produced (see [`run_sweep_sharded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Records of every shard processed so far, in scenario order. For a
    /// completed sweep this is the full report, byte-identical to
    /// [`run_sweep`]'s on the default (timing-less) writers.
    pub report: SweepReport,
    /// False when a `shard_budget` stopped the sweep early.
    pub completed: bool,
    /// Shards the plan divides the sweep into.
    pub shards_total: usize,
    /// Shards executed by this call.
    pub shards_run: usize,
    /// Shards restored from the checkpoint instead of executed.
    pub shards_restored: usize,
    /// The stage cache's counters at the end of the call.
    pub cache: CacheStats,
}

/// Runs `set` as ordered shards with stage memoization, optional
/// checkpointed resume and an optional on-disk cache tier (see
/// [`SweepConfig`]). Records merge in shard order = scenario order, so
/// the deterministic output of a completed sweep is byte-identical to
/// [`run_sweep`]'s at any thread count, cold or warm cache, straight
/// through or killed-and-resumed.
///
/// # Errors
///
/// Checkpoint/cache I/O failures and sweep-mismatch rejections (a
/// checkpoint directory recorded for a different sweep). Scenario-level
/// failures still become error records, never call-level errors.
pub fn run_sweep_sharded(
    set: &ScenarioSet,
    config: &SweepConfig,
    probe: &Probe,
) -> Result<ShardedOutcome, String> {
    run_sweep_sharded_with(set, config, probe, &mut |_, _| {})
}

/// [`run_sweep_sharded`] with a streaming sink: `sink(shard, records)`
/// is called once per shard in shard order — with restored records for
/// checkpoint hits — so callers can emit JSONL incrementally instead of
/// buffering the whole sweep (the full report is still returned).
pub fn run_sweep_sharded_with(
    set: &ScenarioSet,
    config: &SweepConfig,
    probe: &Probe,
    sink: &mut dyn FnMut(usize, &[RunRecord]),
) -> Result<ShardedOutcome, String> {
    let scenarios = set.scenarios();
    let shard_size = if config.shard_size == 0 { DEFAULT_SHARD_SIZE } else { config.shard_size };
    let plan = ShardPlan::new(scenarios.len(), shard_size);
    let cache = match &config.cache_dir {
        Some(dir) => StageCache::with_disk(dir)?,
        None => StageCache::in_memory(),
    }
    .with_mem_cap(config.cache_mem_cap);
    let warm = config.warm_lp.then(WarmLpStore::default);
    let checkpoint = match &config.checkpoint_dir {
        Some(dir) => Some(Checkpoint::open(dir, scenarios, shard_size)?),
        None => None,
    };

    let mut records: Vec<RunRecord> = Vec::with_capacity(scenarios.len());
    let mut shards_run = 0usize;
    let mut shards_restored = 0usize;
    let mut completed = true;
    for shard in 0..plan.shard_count() {
        if let Some(cp) = &checkpoint {
            if let Some(restored) = cp.load_shard(shard)? {
                shards_restored += 1;
                sink(shard, &restored);
                records.extend(restored);
                continue;
            }
        }
        if config.shard_budget.is_some_and(|budget| shards_run >= budget) {
            completed = false;
            break;
        }
        let range = plan.range(shard);
        let shard_records =
            run_scenarios_warm(&scenarios[range], config.threads, probe, &cache, warm.as_ref());
        if let Some(cp) = &checkpoint {
            cp.store_shard(shard, &shard_records)?;
        }
        shards_run += 1;
        sink(shard, &shard_records);
        records.extend(shard_records);
    }

    if probe.is_enabled() {
        probe.counter("dse.shard.run").add(shards_run as u64);
        probe.counter("dse.shard.restored").add(shards_restored as u64);
        probe.counter("dse.cache.evictions").add(cache.stats().evictions);
        probe.emit(
            "dse.sweep_sharded",
            &[
                ("scenarios", Value::from(records.len())),
                ("shards_total", Value::from(plan.shard_count())),
                ("shards_run", Value::from(shards_run)),
                ("shards_restored", Value::from(shards_restored)),
                ("completed", Value::from(completed)),
            ],
        );
    }
    Ok(ShardedOutcome {
        report: SweepReport::new(records),
        completed,
        shards_total: plan.shard_count(),
        shards_run,
        shards_restored,
        cache: cache.stats(),
    })
}

/// The engine's deterministic worker pool, exposed for harnesses that fan
/// out work the scenario pipeline cannot express (e.g. the engine-backed
/// Figure 5(c) sweep): runs `task(0..count)` on `threads` workers (`0` =
/// available parallelism) and returns the results **in index order**.
///
/// The determinism contract is the caller's half of the engine's: `task`
/// must be a pure function of its index (no shared mutable state, no
/// worker-identity dependence). Under that contract the returned vector
/// is identical for 1 or N threads — workers claim indices from a shared
/// atomic cursor and write each result into its index's slot.
pub fn pool_map<T, F>(count: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pool_map_probed(count, threads, &Probe::default(), task)
}

/// [`pool_map`] with per-worker utilization accounting attached: when
/// `probe` is live, each worker's busy time (inside `task`) and wait
/// time (claim overhead plus tail idle) land in the
/// `dse.worker_busy_us` / `dse.worker_wait_us` histograms, completed
/// tasks in the `dse.tasks` counter, and one `dse.worker` event per
/// worker records its share of the pool. The accounting is entirely
/// out-of-band — results are identical to an unprobed run.
pub fn pool_map_probed<T, F>(count: usize, threads: usize, probe: &Probe, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = effective_threads(threads, count);
    let instrumented = probe.is_enabled();
    // Busy time accumulates per worker and is reported once at worker
    // exit, so the hot claim loop touches no shared probe state.
    let run_one = |i: usize, busy_us: &mut u64, tasks: &mut u64| -> T {
        if !instrumented {
            return task(i);
        }
        let start = Instant::now();
        let result = task(i);
        *busy_us = busy_us.saturating_add(StageTimes::us(start.elapsed()));
        *tasks += 1;
        result
    };
    let report_worker = |worker: usize, busy_us: u64, tasks: u64, wall_us: u64| {
        if !instrumented {
            return;
        }
        let wait_us = wall_us.saturating_sub(busy_us);
        probe.counter("dse.tasks").add(tasks);
        probe.histogram("dse.worker_busy_us").record(busy_us);
        probe.histogram("dse.worker_wait_us").record(wait_us);
        probe.emit(
            "dse.worker",
            &[
                ("worker", Value::from(worker)),
                ("tasks", Value::from(tasks)),
                ("busy_us", Value::from(busy_us)),
                ("wait_us", Value::from(wait_us)),
            ],
        );
    };

    if workers <= 1 {
        let pool_start = Instant::now();
        let mut busy_us = 0u64;
        let mut tasks = 0u64;
        let out: Vec<T> = (0..count).map(|i| run_one(i, &mut busy_us, &mut tasks)).collect();
        report_worker(0, busy_us, tasks, StageTimes::us(pool_start.elapsed()));
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let run_one = &run_one;
        let report_worker = &report_worker;
        let cursor = &cursor;
        let slots = &slots;
        for worker in 0..workers {
            scope.spawn(move || {
                let worker_start = Instant::now();
                let mut busy_us = 0u64;
                let mut tasks = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = run_one(i, &mut busy_us, &mut tasks);
                    *slots[i].lock().expect("no poisoned slots") = Some(result);
                }
                report_worker(worker, busy_us, tasks, StageTimes::us(worker_start.elapsed()));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("no poisoned slots").expect("every slot filled"))
        .collect()
}

/// Resolves the worker count: `0` → available parallelism, clamped to the
/// scenario count and at least 1.
fn effective_threads(threads: usize, scenarios: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        threads
    };
    requested.clamp(1, scenarios.max(1))
}

/// Runs one scenario end to end: build → map → route → measure, plus the
/// optional wormhole-simulation stage (the scenario's routing tables are
/// loaded into the simulator as source routes).
pub fn run_scenario(scenario: &Scenario) -> RunRecord {
    run_scenario_probed(scenario, &Probe::default())
}

/// [`run_scenario`] with instrumentation attached: the probe is threaded
/// into the mapper's [`EvalContext`] (evaluation/delta-gate counters,
/// search trajectory events) and the simulator (cycle and wake-up
/// counters), the per-stage wall times land in the `dse.stage.*_us`
/// histograms, and one `dse.scenario` event records the run. The record
/// itself is byte-identical to an unprobed run. Stage memoization is
/// per-call here (a fresh cache each time); use [`run_scenario_cached`]
/// to share stages across scenarios.
pub fn run_scenario_probed(scenario: &Scenario, probe: &Probe) -> RunRecord {
    run_scenario_cached(scenario, probe, &StageCache::in_memory())
}

/// [`run_scenario_probed`] against a caller-owned [`StageCache`]. Cache
/// lookups land in the `dse.cache.{hit,miss,disk_hit}` counters (plus
/// per-stage `dse.cache.{map,route}_*` variants) and their overhead in
/// the `dse.stage.cache_us` histogram.
pub fn run_scenario_cached(scenario: &Scenario, probe: &Probe, cache: &StageCache) -> RunRecord {
    run_scenario_warm(scenario, probe, cache, None)
}

/// [`run_scenario_cached`] with an optional warm-start store (see
/// [`WarmLpStore`]). LP pivot counts land in the `lp.pivots` /
/// `lp.phase1_pivots` counters and basis reuse in `lp.warm_start.hits` /
/// `lp.warm_start.pivots_saved`.
pub fn run_scenario_warm(
    scenario: &Scenario,
    probe: &Probe,
    cache: &StageCache,
    warm: Option<&WarmLpStore>,
) -> RunRecord {
    let record = run_scenario_inner(scenario, probe, cache, warm);
    probe.histogram("dse.stage.build_us").record(record.times.build_us);
    probe.histogram("dse.stage.map_us").record(record.times.map_us);
    probe.histogram("dse.stage.route_us").record(record.times.route_us);
    probe.histogram("dse.stage.cache_us").record(record.times.cache_us);
    if record.sim.is_some() {
        probe.histogram("dse.stage.sim_us").record(record.times.sim_us);
    }
    if probe.is_enabled() {
        probe.emit(
            "dse.scenario",
            &[
                ("scenario", Value::from(record.scenario.as_str())),
                ("mapper", Value::from(record.mapper.as_str())),
                ("routing", Value::from(record.routing.as_str())),
                ("seed", Value::from(record.seed)),
                ("ok", Value::from(record.is_ok())),
                ("feasible", Value::from(record.feasible)),
                ("evaluations", Value::from(record.evaluations)),
                ("total_us", Value::from(record.times.total_us())),
            ],
        );
    }
    record
}

/// Counts one cache lookup in the probe: the aggregate
/// `dse.cache.{hit,miss,disk_hit}` counters plus the per-stage variant.
fn count_lookup(probe: &Probe, stage: &str, lookup: Lookup) {
    if !probe.is_enabled() {
        return;
    }
    let kind = match lookup {
        Lookup::Hit => "hit",
        Lookup::DiskHit => "disk_hit",
        Lookup::Miss => "miss",
    };
    probe.counter(&format!("dse.cache.{kind}")).add(1);
    probe.counter(&format!("dse.cache.{stage}_{kind}")).add(1);
}

fn run_scenario_inner(
    scenario: &Scenario,
    probe: &Probe,
    cache: &StageCache,
    warm: Option<&WarmLpStore>,
) -> RunRecord {
    let build_start = Instant::now();
    let (graph, topology) = scenario.parts();
    let cores = graph.core_count();
    let topo_label = topology_label(&topology);
    // Scenario fields are public, so a hand-built scenario can bypass the
    // builder's validation; an invalid simulate spec must become an error
    // record here, not a Simulator::new panic inside a pool worker. The
    // same goes for unresolved bandwidth points — the engine simulates at
    // the scenario's capacity, so silently ignoring them would mislabel
    // every sim column.
    if let Some(spec) = &scenario.simulate {
        let problem = if spec.bandwidths_mbps.is_empty() {
            spec.validate().err()
        } else {
            Some(
                "unresolved bandwidth sweep points (expand them through ScenarioSetBuilder)"
                    .to_string(),
            )
        };
        if let Some(message) = problem {
            return RunRecord::failed(scenario, cores, topo_label, format!("simulate: {message}"));
        }
    }
    let problem = match MappingProblem::new(graph, topology) {
        Ok(p) => p,
        Err(e) => return RunRecord::failed(scenario, cores, topo_label, e.to_string()),
    };
    let build_us = StageTimes::us(build_start.elapsed());

    // Map stage, memoized: `map_us` is the compute time (0 on a hit) and
    // the lookup's remainder — key derivation, tier locks, disk restore,
    // result clone — is accounted to `cache_us`, so worker-utilization
    // profiles attribute cache overhead honestly.
    let map_lookup_start = Instant::now();
    let mut map_us = 0u64;
    let (map_result, map_lookup) = cache.map_stage(&cache::map_key(scenario), &problem, || {
        let compute_start = Instant::now();
        let result =
            run_mapper(&problem, &scenario.mapper, scenario.seed, probe).map_err(|e| e.to_string());
        map_us = StageTimes::us(compute_start.elapsed());
        result
    });
    let mut cache_us = StageTimes::us(map_lookup_start.elapsed()).saturating_sub(map_us);
    count_lookup(probe, "map", map_lookup);
    let (mapping, evaluations) = match map_result {
        Ok(result) => result,
        Err(e) => {
            let mut r = RunRecord::failed(scenario, cores, topo_label, e);
            r.times.build_us = build_us;
            r.times.map_us = map_us;
            r.times.cache_us = cache_us;
            return r;
        }
    };

    let need_tables = scenario.simulate.is_some();
    // Only the MCF regimes solve an LP, so only they get a warm slot; the
    // slot is resolved outside the cache closure (a route-stage hit never
    // touches the warm store).
    let warm_slot = warm
        .filter(|_| matches!(scenario.routing, RoutingSpec::McfQuadrant | RoutingSpec::McfAllPaths))
        .map(|store| store.slot(&cache::warm_lineage_key(scenario, need_tables)));
    let route_lookup_start = Instant::now();
    let mut route_us = 0u64;
    let (route_result, route_lookup) =
        cache.route_stage(&cache::route_key(scenario, need_tables), || {
            let compute_start = Instant::now();
            let result =
                route(&problem, &mapping, scenario.routing, need_tables, warm_slot.as_ref(), probe)
                    .map_err(|e| e.to_string());
            route_us = StageTimes::us(compute_start.elapsed());
            result
        });
    cache_us = cache_us
        .saturating_add(StageTimes::us(route_lookup_start.elapsed()).saturating_sub(route_us));
    count_lookup(probe, "route", route_lookup);
    let (tables, loads) = match route_result {
        Ok(routed) => routed,
        Err(e) => {
            let mut r = RunRecord::failed(scenario, cores, topo_label, e);
            r.times.build_us = build_us;
            r.times.map_us = map_us;
            r.times.cache_us = cache_us;
            r.evaluations = evaluations;
            return r;
        }
    };

    let sim_start = Instant::now();
    let sim = scenario.simulate.as_ref().map(|spec| {
        let tables = tables.as_ref().expect("tables built when simulate is present");
        simulate(&problem, &mapping, tables, spec, scenario.seed, probe)
    });
    let sim_us = if sim.is_some() { StageTimes::us(sim_start.elapsed()) } else { 0 };

    RunRecord {
        scenario: scenario.label.clone(),
        cores,
        topology: topo_label,
        capacity: scenario.capacity,
        mapper: scenario.mapper.name(),
        routing: scenario.routing.name().to_string(),
        seed: scenario.seed,
        error: String::new(),
        feasible: loads.within_capacity(problem.topology()),
        comm_cost: problem.comm_cost(&mapping),
        // Routed loads are finite sums of non-negative commodity rates —
        // in range for `Mbps` by construction.
        max_link_load: Mbps::raw(loads.max()),
        total_load: Mbps::raw(loads.total()),
        evaluations,
        sim,
        times: StageTimes { build_us, map_us, route_us, sim_us, cache_us },
    }
}

/// Runs the wormhole simulator over the scenario's routed traffic: one
/// [`FlowSpec`] per positive commodity, paths and shares straight from the
/// routing tables, link bandwidth = the scenario's capacity (the topology
/// was built with it). The traffic seed is a pure function of the
/// scenario's seed, so the stats are worker-independent.
fn simulate(
    problem: &MappingProblem,
    mapping: &Mapping,
    tables: &RoutingTables,
    spec: &SimulateSpec,
    scenario_seed: u64,
    probe: &Probe,
) -> SimStats {
    let flows = flows_from_tables(problem, mapping, tables);
    let config = spec.sim_config(scenario_seed);
    let packet_bytes = config.packet_bytes;
    let mut sim = Simulator::new(problem.topology(), flows, config);
    sim.set_loop_kind(spec.loop_kind);
    sim.set_probe(probe);
    let report = sim.run();
    sim_stats(&report, problem.topology().link_count(), packet_bytes)
}

/// Converts a placement's commodities plus routing tables into simulator
/// flows: one [`FlowSpec`] per positive commodity, paths and traffic
/// shares straight from the tables (zero-fraction placeholder routes are
/// dropped — [`FlowSpec::split`] rejects non-positive weights). This is
/// *the* bridge between the mapping layer and the simulator; the
/// sequential Figure 5(c) harness routes through it too.
pub fn flows_from_tables(
    problem: &MappingProblem,
    mapping: &Mapping,
    tables: &RoutingTables,
) -> Vec<FlowSpec> {
    problem
        .commodities(mapping)
        .into_iter()
        .filter(|c| !c.value.is_zero())
        .map(|c| {
            let paths: Vec<(Vec<_>, f64)> = tables
                .routes_of(c.edge)
                .iter()
                .filter(|r| r.fraction > 0.0)
                .map(|r| (r.links.clone(), r.fraction))
                .collect();
            FlowSpec::split(c.source, c.dest, c.value, paths)
        })
        .collect()
}

/// Folds a [`SimReport`] into the record-level [`SimStats`] columns.
fn sim_stats(report: &SimReport, link_count: usize, packet_bytes: usize) -> SimStats {
    let delivered_mbps = if report.measure_cycles == 0 {
        Mbps::ZERO
    } else {
        Mbps::raw(
            report.latency.count() as f64 * packet_bytes as f64 / report.measure_cycles as f64
                * 1000.0,
        )
    };
    let max_link_mbps = (0..link_count)
        .map(|l| report.link_throughput_mbps(noc_graph::LinkId::new(l)))
        .fold(Mbps::ZERO, Mbps::max);
    SimStats {
        avg_latency_cycles: report.avg_latency_cycles(),
        avg_network_latency_cycles: report.avg_network_latency_cycles(),
        p95_latency_cycles: report.latency.quantile_upper_bound(0.95).unwrap_or(0),
        delivered_mbps,
        max_link_mbps,
        saturated: report.saturated(),
    }
}

/// Dispatches the mapper through the [`nmap::search::Mapper`] trait,
/// returning the placement and the mapper's work measure (swap
/// evaluations, LP solves or search expansions). No per-algorithm arms
/// here: [`MapperSpec::mapper`] materializes the trait object (threading
/// the scenario seed into stochastic mappers) and every algorithm runs
/// through the same call shape. The engine scores and routes the
/// placement itself in the route stage, so it uses `place()` — the
/// constructive mappers skip the feasibility routing `map()` would
/// compute only to have this caller discard it.
fn run_mapper(
    problem: &MappingProblem,
    mapper: &MapperSpec,
    seed: u64,
    probe: &Probe,
) -> nmap::Result<(Mapping, usize)> {
    let mut ctx = EvalContext::new(problem);
    ctx.set_probe(probe);
    mapper.mapper(seed).place(&mut ctx)
}

/// Routes `mapping` under the scenario's regime and returns the link
/// loads the feasibility check and load metrics are taken from, plus —
/// when `need_tables` is set (the scenario simulates) — the routing
/// tables the simulate stage loads as source routes. The single-path
/// regimes skip the table construction (per-commodity path clones)
/// otherwise; the MCF regimes get tables for free from flow decomposition
/// and always return them.
///
/// For the MCF regimes the minimum-total-flow program (MCF2) provides the
/// routing; when its capacities are infeasible, the always-feasible
/// slack-minimizing program (MCF1) provides it instead, so the record
/// still reports how much traffic the best split routing would carry.
fn route(
    problem: &MappingProblem,
    mapping: &Mapping,
    routing: RoutingSpec,
    need_tables: bool,
    warm: Option<&Arc<Mutex<WarmSlot>>>,
    probe: &Probe,
) -> nmap::Result<(Option<RoutingTables>, LinkLoads)> {
    match routing {
        RoutingSpec::MinPath => {
            let (paths, loads) = routing::route_min_paths(problem, mapping)?;
            Ok((need_tables.then(|| RoutingTables::from_single_paths(&paths)), loads))
        }
        RoutingSpec::Xy => {
            let (paths, loads) = routing::route_xy(problem, mapping)?;
            Ok((need_tables.then(|| RoutingTables::from_single_paths(&paths)), loads))
        }
        RoutingSpec::McfQuadrant => mcf_routing(problem, mapping, PathScope::Quadrant, warm, probe),
        RoutingSpec::McfAllPaths => mcf_routing(problem, mapping, PathScope::AllPaths, warm, probe),
    }
}

fn mcf_routing(
    problem: &MappingProblem,
    mapping: &Mapping,
    scope: PathScope,
    warm: Option<&Arc<Mutex<WarmSlot>>>,
    probe: &Probe,
) -> nmap::Result<(Option<RoutingTables>, LinkLoads)> {
    let Some(slot) = warm else {
        return match solve_mcf(problem, mapping, McfKind::FlowMin, scope) {
            Ok(solution) => Ok((Some(solution.tables), solution.link_loads)),
            Err(MapError::Lp(SolveError::Infeasible)) => {
                let solution = solve_mcf(problem, mapping, McfKind::SlackMin, scope)?;
                Ok((Some(solution.tables), solution.link_loads))
            }
            Err(e) => Err(e),
        };
    };
    // The lineage lock is held across the solve: one lineage's capacity
    // points chain their bases sequentially (whichever worker claims the
    // next point inherits the freshest basis), distinct lineages solve in
    // parallel.
    let mut chain = slot.lock().expect("warm slot not poisoned");
    match solve_mcf_chained(problem, mapping, McfKind::FlowMin, scope, &mut chain.flow_min, probe) {
        Ok(solution) => Ok((Some(solution.tables), solution.link_loads)),
        Err(MapError::Lp(SolveError::Infeasible)) => {
            let solution = solve_mcf_chained(
                problem,
                mapping,
                McfKind::SlackMin,
                scope,
                &mut chain.slack_min,
                probe,
            )?;
            Ok((Some(solution.tables), solution.link_loads))
        }
        Err(e) => Err(e),
    }
}

/// One warm-chained MCF solve: re-optimizes from the lineage's previous
/// tableau snapshot when possible (and not struck out — see
/// [`WARM_REFUSAL_LIMIT`]), stores the successor snapshot back into the
/// chain, and records the LP counters (`lp.pivots`, `lp.phase1_pivots`,
/// `lp.warm_start.{hits,pivots_saved}`). The state is moved into the
/// solve (a warm hit carries the tableau through without copying it), so
/// on error the chain is left empty and the next capacity point recaptures
/// from a cold solve.
fn solve_mcf_chained(
    problem: &MappingProblem,
    mapping: &Mapping,
    kind: McfKind,
    scope: PathScope,
    chain: &mut WarmChain,
    probe: &Probe,
) -> nmap::Result<McfSolution> {
    let commodities = problem.commodities(mapping);
    let attempt_warm = chain.refusals < WARM_REFUSAL_LIMIT;
    let had_state = chain.state.is_some();
    let previous = if attempt_warm { chain.state.take() } else { None };
    let (solution, next, stats) =
        solve_mcf_warm(problem.topology(), &commodities, kind, scope, previous)?;
    if stats.warm_hit {
        chain.refusals = 0;
    } else if attempt_warm && had_state {
        chain.refusals += 1;
    }
    chain.state = Some(next);
    if probe.is_enabled() {
        probe.counter("lp.pivots").add(stats.pivots as u64);
        probe.counter("lp.phase1_pivots").add(stats.phase1_pivots as u64);
        if stats.warm_hit {
            probe.counter("lp.warm_start.hits").add(1);
            probe.counter("lp.warm_start.pivots_saved").add(stats.pivots_saved as u64);
        }
    }
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AppSpec, TopologySpec};
    use nmap::SinglePathOptions;
    use noc_apps::App;
    use noc_graph::RandomGraphConfig;
    use noc_units::mbps;

    fn strip_times(records: &[RunRecord]) -> Vec<RunRecord> {
        records
            .iter()
            .cloned()
            .map(|mut r| {
                r.times = StageTimes::default();
                r
            })
            .collect()
    }

    fn small_set() -> ScenarioSet {
        ScenarioSet::builder()
            .root_seed(3)
            .app(App::Pip)
            .dsp()
            .random(RandomGraphConfig { cores: 9, ..Default::default() }, 2)
            .topology(TopologySpec::FitMesh)
            .topology(TopologySpec::FitTorus)
            .mapper(MapperSpec::NmapInit)
            .mapper(MapperSpec::Gmap)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .build()
    }

    #[test]
    fn pool_matches_sequential_run() {
        let set = small_set();
        let sequential = run_scenarios(set.scenarios(), 1);
        assert_eq!(sequential.len(), set.len());
        for threads in [2, 4] {
            let pooled = run_scenarios(set.scenarios(), threads);
            assert_eq!(strip_times(&pooled), strip_times(&sequential), "threads={threads}");
        }
    }

    #[test]
    fn failure_becomes_a_record_not_a_panic() {
        let scenario = Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 0,
            topology: TopologySpec::Mesh { dims: vec![2, 2] },
            capacity: mbps(1_000.0),
            mapper: MapperSpec::Pmap,
            routing: RoutingSpec::MinPath,
            simulate: None,
        };
        let record = run_scenario(&scenario);
        assert!(!record.is_ok());
        assert!(record.error.contains("16 cores"), "error: {}", record.error);
        assert!(!record.feasible);
    }

    #[test]
    fn mcf_routing_reports_split_loads() {
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 0,
            topology: TopologySpec::Mesh { dims: vec![3, 2] },
            capacity: mbps(1_000.0),
            mapper: MapperSpec::Nmap(SinglePathOptions::paper_exact()),
            routing: RoutingSpec::McfQuadrant,
            simulate: None,
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        assert!(record.feasible);
        assert!(record.max_link_load > Mbps::ZERO);
        assert!(record.total_load >= record.max_link_load);
    }

    #[test]
    fn infeasible_capacity_is_reported_infeasible() {
        // One 500 MB/s flow on 100 MB/s links cannot fit, split or not.
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 0,
            topology: TopologySpec::FitMesh,
            capacity: mbps(100.0),
            mapper: MapperSpec::NmapInit,
            routing: RoutingSpec::McfAllPaths,
            simulate: None,
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        assert!(!record.feasible);
        assert!(record.max_link_load > mbps(100.0));
    }

    /// A fast simulate config for engine tests.
    fn quick_sim() -> SimulateSpec {
        SimulateSpec {
            warmup_cycles: 1_000,
            measure_cycles: 8_000,
            drain_cycles: 4_000,
            ..Default::default()
        }
    }

    #[test]
    fn simulate_stage_populates_sim_stats() {
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 5,
            topology: TopologySpec::Mesh { dims: vec![3, 2] },
            capacity: mbps(1_400.0),
            mapper: MapperSpec::Nmap(SinglePathOptions::paper_exact()),
            routing: RoutingSpec::MinPath,
            simulate: Some(quick_sim()),
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        let sim = record.sim.as_ref().expect("simulate stage ran");
        assert!(sim.avg_latency_cycles.to_f64() > 0.0, "no packets measured");
        assert!(sim.avg_network_latency_cycles.to_f64() > 0.0);
        assert!(sim.avg_network_latency_cycles <= sim.avg_latency_cycles);
        assert!(sim.p95_latency_cycles > 0);
        assert!(sim.delivered_mbps > Mbps::ZERO);
        assert!(sim.max_link_mbps > Mbps::ZERO);
        assert!(!sim.saturated, "1.4 GB/s links must not saturate the DSP design");

        // Same scenario, same record — the sim stage is deterministic.
        let again = run_scenario(&scenario);
        assert_eq!(again.sim, record.sim);

        // Without the simulate stage the columns stay empty.
        let bare = run_scenario(&Scenario { simulate: None, ..scenario });
        assert!(bare.sim.is_none());
        assert_eq!(bare.comm_cost, record.comm_cost);
    }

    #[test]
    fn invalid_hand_built_simulate_spec_becomes_an_error_record() {
        // Scenario fields are public: a spec that bypassed the builder's
        // validation must fail as a record, not as a worker panic that
        // aborts the sweep.
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 0,
            topology: TopologySpec::FitMesh,
            capacity: mbps(1_000.0),
            mapper: MapperSpec::NmapInit,
            routing: RoutingSpec::MinPath,
            simulate: Some(SimulateSpec { measure_cycles: 0, ..Default::default() }),
        };
        let records = run_scenarios(std::slice::from_ref(&scenario), 2);
        assert_eq!(records.len(), 1);
        assert!(!records[0].is_ok());
        assert!(
            records[0].error.contains("simulate: measurement window"),
            "error: {}",
            records[0].error
        );
        assert!(records[0].sim.is_none());

        // Unresolved bandwidth points are an error too: the engine would
        // otherwise simulate at `capacity` and mislabel every sim column.
        let unresolved = Scenario {
            simulate: Some(SimulateSpec {
                bandwidths_mbps: vec![mbps(600.0)],
                ..Default::default()
            }),
            ..scenario
        };
        let record = run_scenario(&unresolved);
        assert!(!record.is_ok());
        assert!(record.error.contains("unresolved bandwidth"), "error: {}", record.error);
    }

    #[test]
    fn simulate_runs_split_tables_through_the_simulator() {
        // MCF split routing hands multi-path tables to the simulator; the
        // run must accept the per-path fractions as flow weights.
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 1,
            topology: TopologySpec::Mesh { dims: vec![3, 2] },
            capacity: mbps(1_400.0),
            mapper: MapperSpec::Nmap(SinglePathOptions::paper_exact()),
            routing: RoutingSpec::McfQuadrant,
            simulate: Some(quick_sim()),
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        assert!(record.sim.as_ref().expect("sim ran").avg_latency_cycles.to_f64() > 0.0);
    }

    #[test]
    fn run_sweep_aggregates_in_order() {
        let set = small_set();
        let report = run_sweep(&set, &EngineOptions::default());
        assert_eq!(report.records.len(), set.len());
        let labels: Vec<_> = report.records.iter().map(|r| r.scenario.clone()).collect();
        let expected: Vec<_> = set.scenarios().iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels, expected);
        let summary = report.summary();
        assert_eq!(summary.failed, 0);
        assert!(summary.feasibility_rate > 0.0);
    }

    #[test]
    fn pool_map_preserves_index_order() {
        let square = |i: usize| i * i;
        let expected: Vec<usize> = (0..97).map(square).collect();
        for threads in [0, 1, 2, 8] {
            assert_eq!(pool_map(97, threads, square), expected, "threads={threads}");
        }
        assert_eq!(pool_map(0, 4, square), Vec::<usize>::new());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(5, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
    }
}
