//! The sweep engine: runs every [`Scenario`] of a set, optionally on a
//! deterministic `std::thread` worker pool.
//!
//! Determinism contract: a scenario's record depends only on the scenario
//! itself (its seed is fixed at build time, never derived from worker
//! identity), workers claim scenarios from a shared atomic cursor, and
//! each record is written into the slot of its scenario index — so the
//! returned `Vec<RunRecord>` is in scenario order and its deterministic
//! fields are byte-identical for 1 or N threads. Only the wall-clock
//! [`StageTimes`] vary between runs, and the report writers exclude them
//! by default.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nmap::{
    initialize, map_single_path, map_with_splitting, mcf::solve_mcf, routing, LinkLoads, MapError,
    Mapping, MappingProblem, McfKind, PathScope, SplitOptions,
};
use noc_baselines::{gmap, pbb, pmap};
use noc_lp::SolveError;

use crate::report::{RunRecord, StageTimes, SweepReport};
use crate::scenario::{topology_label, MapperSpec, RoutingSpec, Scenario, ScenarioSet};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` (the default) uses the machine's available
    /// parallelism. The pool never spawns more workers than scenarios.
    pub threads: usize,
}

/// Runs every scenario of `set` and aggregates the records into a
/// [`SweepReport`] (records in scenario order).
pub fn run_sweep(set: &ScenarioSet, options: &EngineOptions) -> SweepReport {
    SweepReport::new(run_scenarios(set.scenarios(), options.threads))
}

/// Runs `scenarios` on `threads` workers (`0` = available parallelism),
/// returning records in scenario order. Scenario-level failures (app does
/// not fit, unroutable, LP breakdown) become records with a non-empty
/// `error` field; they never abort the sweep.
pub fn run_scenarios(scenarios: &[Scenario], threads: usize) -> Vec<RunRecord> {
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = effective_threads(threads, n);
    if workers <= 1 {
        return scenarios.iter().map(run_scenario).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let record = run_scenario(&scenarios[i]);
                *slots[i].lock().expect("no poisoned slots") = Some(record);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("no poisoned slots").expect("every slot filled"))
        .collect()
}

/// Resolves the worker count: `0` → available parallelism, clamped to the
/// scenario count and at least 1.
fn effective_threads(threads: usize, scenarios: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        threads
    };
    requested.clamp(1, scenarios.max(1))
}

/// Runs one scenario end to end: build → map → route → measure.
pub fn run_scenario(scenario: &Scenario) -> RunRecord {
    let build_start = Instant::now();
    let (graph, topology) = scenario.parts();
    let cores = graph.core_count();
    let topo_label = topology_label(&topology);
    let problem = match MappingProblem::new(graph, topology) {
        Ok(p) => p,
        Err(e) => return RunRecord::failed(scenario, cores, topo_label, e.to_string()),
    };
    let build_us = StageTimes::us(build_start.elapsed());

    let map_start = Instant::now();
    let (mapping, evaluations) = match run_mapper(&problem, &scenario.mapper) {
        Ok(result) => result,
        Err(e) => {
            let mut r = RunRecord::failed(scenario, cores, topo_label, e.to_string());
            r.times.build_us = build_us;
            return r;
        }
    };
    let map_us = StageTimes::us(map_start.elapsed());

    let route_start = Instant::now();
    let loads = match route(&problem, &mapping, scenario.routing) {
        Ok(loads) => loads,
        Err(e) => {
            let mut r = RunRecord::failed(scenario, cores, topo_label, e.to_string());
            r.times.build_us = build_us;
            r.times.map_us = map_us;
            r.evaluations = evaluations;
            return r;
        }
    };
    let route_us = StageTimes::us(route_start.elapsed());

    RunRecord {
        scenario: scenario.label.clone(),
        cores,
        topology: topo_label,
        capacity: scenario.capacity,
        mapper: scenario.mapper.name(),
        routing: scenario.routing.name().to_string(),
        seed: scenario.seed,
        error: String::new(),
        feasible: loads.within_capacity(problem.topology()),
        comm_cost: problem.comm_cost(&mapping),
        max_link_load: loads.max(),
        total_load: loads.total(),
        evaluations,
        times: StageTimes { build_us, map_us, route_us },
    }
}

/// Dispatches the mapper, returning the placement and a work measure
/// (swap evaluations, LP solves or search expansions).
fn run_mapper(problem: &MappingProblem, mapper: &MapperSpec) -> nmap::Result<(Mapping, usize)> {
    match mapper {
        MapperSpec::NmapInit => Ok((initialize(problem), 0)),
        MapperSpec::Nmap(options) => {
            let out = map_single_path(problem, options)?;
            Ok((out.mapping, out.evaluations))
        }
        MapperSpec::NmapSplit { scope, passes } => {
            let out =
                map_with_splitting(problem, &SplitOptions { scope: *scope, passes: *passes })?;
            Ok((out.mapping, out.lp_solves))
        }
        MapperSpec::Pmap => Ok((pmap(problem), 0)),
        MapperSpec::Gmap => Ok((gmap(problem), 0)),
        MapperSpec::Pbb(options) => {
            let out = pbb(problem, options);
            Ok((out.mapping, out.expansions))
        }
    }
}

/// Routes `mapping` under the scenario's regime and returns the link
/// loads the feasibility check and load metrics are taken from.
///
/// For the MCF regimes the minimum-total-flow program (MCF2) provides the
/// loads; when its capacities are infeasible, the always-feasible
/// slack-minimizing program (MCF1) provides them instead, so the record
/// still reports how much traffic the best split routing would carry.
fn route(
    problem: &MappingProblem,
    mapping: &Mapping,
    routing: RoutingSpec,
) -> nmap::Result<LinkLoads> {
    match routing {
        RoutingSpec::MinPath => Ok(routing::route_min_paths(problem, mapping)?.1),
        RoutingSpec::Xy => Ok(routing::route_xy(problem, mapping)?.1),
        RoutingSpec::McfQuadrant => mcf_loads(problem, mapping, PathScope::Quadrant),
        RoutingSpec::McfAllPaths => mcf_loads(problem, mapping, PathScope::AllPaths),
    }
}

fn mcf_loads(
    problem: &MappingProblem,
    mapping: &Mapping,
    scope: PathScope,
) -> nmap::Result<LinkLoads> {
    match solve_mcf(problem, mapping, McfKind::FlowMin, scope) {
        Ok(solution) => Ok(solution.link_loads),
        Err(MapError::Lp(SolveError::Infeasible)) => {
            Ok(solve_mcf(problem, mapping, McfKind::SlackMin, scope)?.link_loads)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AppSpec, TopologySpec};
    use nmap::SinglePathOptions;
    use noc_apps::App;
    use noc_graph::RandomGraphConfig;

    fn strip_times(records: &[RunRecord]) -> Vec<RunRecord> {
        records
            .iter()
            .cloned()
            .map(|mut r| {
                r.times = StageTimes::default();
                r
            })
            .collect()
    }

    fn small_set() -> ScenarioSet {
        ScenarioSet::builder()
            .root_seed(3)
            .app(App::Pip)
            .dsp()
            .random(RandomGraphConfig { cores: 9, ..Default::default() }, 2)
            .topology(TopologySpec::FitMesh)
            .topology(TopologySpec::FitTorus)
            .mapper(MapperSpec::NmapInit)
            .mapper(MapperSpec::Gmap)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .build()
    }

    #[test]
    fn pool_matches_sequential_run() {
        let set = small_set();
        let sequential = run_scenarios(set.scenarios(), 1);
        assert_eq!(sequential.len(), set.len());
        for threads in [2, 4] {
            let pooled = run_scenarios(set.scenarios(), threads);
            assert_eq!(strip_times(&pooled), strip_times(&sequential), "threads={threads}");
        }
    }

    #[test]
    fn failure_becomes_a_record_not_a_panic() {
        let scenario = Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 0,
            topology: TopologySpec::Mesh { width: 2, height: 2 },
            capacity: 1_000.0,
            mapper: MapperSpec::Pmap,
            routing: RoutingSpec::MinPath,
        };
        let record = run_scenario(&scenario);
        assert!(!record.is_ok());
        assert!(record.error.contains("16 cores"), "error: {}", record.error);
        assert!(!record.feasible);
    }

    #[test]
    fn mcf_routing_reports_split_loads() {
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 0,
            topology: TopologySpec::Mesh { width: 3, height: 2 },
            capacity: 1_000.0,
            mapper: MapperSpec::Nmap(SinglePathOptions::paper_exact()),
            routing: RoutingSpec::McfQuadrant,
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        assert!(record.feasible);
        assert!(record.max_link_load > 0.0);
        assert!(record.total_load >= record.max_link_load);
    }

    #[test]
    fn infeasible_capacity_is_reported_infeasible() {
        // One 500 MB/s flow on 100 MB/s links cannot fit, split or not.
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 0,
            topology: TopologySpec::FitMesh,
            capacity: 100.0,
            mapper: MapperSpec::NmapInit,
            routing: RoutingSpec::McfAllPaths,
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "error: {}", record.error);
        assert!(!record.feasible);
        assert!(record.max_link_load > 100.0);
    }

    #[test]
    fn run_sweep_aggregates_in_order() {
        let set = small_set();
        let report = run_sweep(&set, &EngineOptions::default());
        assert_eq!(report.records.len(), set.len());
        let labels: Vec<_> = report.records.iter().map(|r| r.scenario.clone()).collect();
        let expected: Vec<_> = set.scenarios().iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels, expected);
        let summary = report.summary();
        assert_eq!(summary.failed, 0);
        assert!(summary.feasibility_rate > 0.0);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(5, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
    }
}
