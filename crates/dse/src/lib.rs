//! **noc-dse** — parallel design-space exploration over the NMAP suite.
//!
//! The paper (and the `noc-experiments` crate mirroring it) evaluates one
//! `{application, topology, mapper, routing}` point at a time. This crate
//! treats that tuple as a first-class **scenario** and sweeps whole
//! scenario spaces:
//!
//! * [`Scenario`] / [`ScenarioSet`] — the data model, built either through
//!   [`ScenarioSet::builder`] or from the plain-text spec format of
//!   [`parse_spec`] (see [`spec`] for the grammar). Applications cover the
//!   six bundled video apps, the DSP filter and seeded random graphs;
//!   fabrics cover fitted/fixed meshes and tori; mappers cover every
//!   entry of the workspace mapper registry — NMAP
//!   (init/single-path/split), PMAP, GMAP, PBB, and the `sa`/`tabu`
//!   searches built on the swap-delta kernel (the engine dispatches all
//!   of them through the [`nmap::search::Mapper`] trait); routing
//!   regimes cover load-balanced min-path, dimension-ordered XY and the
//!   MCF splits.
//! * [`run_sweep`] / [`run_scenarios`] — a deterministic `std::thread`
//!   worker pool: scenarios carry their own seeds (derived from a root
//!   seed at build time, never from worker identity) and records merge in
//!   scenario order, so sweep output is byte-identical for 1 or N threads.
//! * [`RunRecord`] / [`SweepReport`] — the aggregation layer: JSON-lines
//!   and CSV writers plus summary statistics (feasibility rate, cost
//!   quantiles, per-stage wall time).
//! * [`run_sweep_probed`] / [`run_scenarios_probed`] /
//!   [`run_scenario_probed`] / [`pool_map_probed`] — the same engine
//!   with a [`noc_probe::Probe`] attached: stage-time histograms,
//!   per-worker utilization, search/simulator counters and a structured
//!   per-scenario run log, all strictly out-of-band (records stay
//!   byte-identical; see `DESIGN.md` §16).
//! * [`StageCache`] / [`run_sweep_sharded`] — stage memoization and
//!   sharded, checkpointed, resumable sweeps: a content-addressed cache
//!   computes each shared map/route stage exactly once (optionally
//!   persisted across runs), shards checkpoint to disk as they complete,
//!   and an interrupted sweep resumes by replaying finished shards —
//!   all without breaking the byte-identical-output contract (see
//!   `DESIGN.md` §18). The in-memory tier takes an optional byte budget
//!   (`--cache-mem-cap`) with LRU eviction.
//! * [`WarmLpStore`] / [`run_scenarios_warm`] — dual-simplex warm starts
//!   for MCF routing: scenarios that differ only in link capacity chain
//!   their route-stage LP tableaux (`--warm-lp`), so each later
//!   bandwidth point re-solves from its predecessor's snapshot in a few
//!   dual pivots instead of a full two-phase solve. A uniqueness guard
//!   keeps warm records byte-identical to cold ones (see `DESIGN.md`
//!   §19).
//!
//! # Example
//!
//! ```
//! use noc_dse::{run_sweep, EngineOptions, MapperSpec, RoutingSpec, ScenarioSet};
//! use noc_apps::App;
//!
//! let set = ScenarioSet::builder()
//!     .app(App::Pip)
//!     .mapper(MapperSpec::NmapInit)
//!     .mapper(MapperSpec::Gmap)
//!     .routing(RoutingSpec::MinPath)
//!     .routing(RoutingSpec::Xy)
//!     .build();
//! let report = run_sweep(&set, &EngineOptions::default());
//! assert_eq!(report.records.len(), 4);
//! assert!(report.records.iter().all(|r| r.is_ok()));
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
mod report;
mod scenario;
pub mod shard;
pub mod spec;

pub use cache::{CacheStats, Lookup, StageCache};
pub use engine::{
    flows_from_tables, pool_map, pool_map_probed, run_scenario, run_scenario_cached,
    run_scenario_probed, run_scenario_warm, run_scenarios, run_scenarios_cached,
    run_scenarios_probed, run_scenarios_warm, run_sweep, run_sweep_probed, run_sweep_sharded,
    run_sweep_sharded_with, EngineOptions, ShardedOutcome, SweepConfig, WarmLpStore,
    DEFAULT_SHARD_SIZE,
};
pub use noc_sim::LoopKind;
pub use report::{parse_record_json, RunRecord, SimStats, StageTimes, SweepReport, SweepSummary};
pub use scenario::{
    topology_label, AppSpec, MapperSpec, RoutingSpec, Scenario, ScenarioSet, ScenarioSetBuilder,
    SimulateSpec, TopologySpec,
};
pub use shard::{set_fingerprint, Checkpoint, ShardPlan};
pub use spec::{parse_spec, AppDirective, SpecError, SweepSpec};
