//! Sharding and checkpointed resume for sweeps: a [`ShardPlan`] splits a
//! scenario list into ordered, fixed-size shards; a [`Checkpoint`]
//! persists completed shards as JSONL files next to a manifest, so an
//! interrupted sweep restarts by replaying finished shards from disk and
//! running only the remainder.
//!
//! Resume protocol:
//! 1. `manifest.json` pins the sweep's identity — scenario count, shard
//!    size, and an FNV-1a fingerprint over every scenario's canonical
//!    descriptor. Opening a checkpoint against a different sweep (or a
//!    different sharding of the same sweep) is an error, never a silent
//!    mix of records.
//! 2. Each completed shard is `shard-NNNNN.jsonl`, written to a `.tmp`
//!    and atomically renamed — a file's existence *is* its completeness
//!    marker, so a kill mid-write leaves no half-shard behind.
//! 3. On resume, present shard files are parsed back into records
//!    ([`crate::report::parse_record_json`] round-trips byte-exactly)
//!    and the engine runs only the missing shards. Records merge in
//!    shard order = scenario order, so the resumed report is
//!    byte-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::cache::route_key;
use crate::report::{parse_flat_json, parse_record_json, push_json_str, JsonValue, RunRecord};
use crate::Scenario;

/// Manifest format version; bumped when the descriptor or file layout
/// changes incompatibly.
const MANIFEST_VERSION: u64 = 1;

/// How a scenario list divides into ordered shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    scenarios: usize,
    shard_size: usize,
}

impl ShardPlan {
    /// Plans `scenarios` into shards of `shard_size` (clamped to ≥ 1).
    pub fn new(scenarios: usize, shard_size: usize) -> Self {
        Self { scenarios, shard_size: shard_size.max(1) }
    }

    /// Number of shards (0 for an empty set; the last shard may be short).
    pub fn shard_count(&self) -> usize {
        self.scenarios.div_ceil(self.shard_size)
    }

    /// The scenario-index range of `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shard_count()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shard_count(), "shard {shard} out of range");
        let start = shard * self.shard_size;
        start..(start + self.shard_size).min(self.scenarios)
    }

    /// The configured shard size.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total scenarios planned.
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }
}

/// FNV-1a-64 fingerprint over every scenario's canonical descriptor.
/// Any change to the sweep — a scenario added, reordered, or any spec
/// field moved — changes the fingerprint, which invalidates a checkpoint
/// directory built for the old sweep.
pub fn set_fingerprint(scenarios: &[Scenario]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for s in scenarios {
        eat(descriptor(s).as_bytes());
        eat(&[0xff]); // separator: concatenations cannot collide
    }
    hash
}

/// Canonical one-line spelling of a scenario: the display label, the full
/// route-stage cache key (which spells out app, seed, topology, capacity,
/// mapper and routing), and the simulate parameters.
fn descriptor(s: &Scenario) -> String {
    let sim = match &s.simulate {
        None => "none".to_string(),
        Some(sp) => format!(
            "w{}m{}d{}b{}i{}s{}l{:?}",
            sp.warmup_cycles,
            sp.measure_cycles,
            sp.drain_cycles,
            sp.burst_packets,
            sp.burst_intensity,
            sp.seed,
            sp.loop_kind
        ),
    };
    format!("{}|{}|{}", s.label, route_key(s, s.simulate.is_some()), sim)
}

/// An open checkpoint directory bound to one sweep (see the module docs
/// for the resume protocol).
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    plan: ShardPlan,
}

impl Checkpoint {
    /// Opens (or initializes) `dir` for the given sweep. A fresh
    /// directory gets a manifest; an existing one must match this sweep's
    /// scenario count, shard size and fingerprint exactly.
    ///
    /// # Errors
    ///
    /// I/O failures, a malformed manifest, or a manifest recorded for a
    /// different sweep.
    pub fn open(dir: &Path, scenarios: &[Scenario], shard_size: usize) -> Result<Self, String> {
        let plan = ShardPlan::new(scenarios.len(), shard_size);
        let fingerprint = set_fingerprint(scenarios);
        fs::create_dir_all(dir).map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
        let manifest_path = dir.join("manifest.json");
        match fs::read_to_string(&manifest_path) {
            Ok(text) => {
                let found = Manifest::parse(text.trim())
                    .map_err(|e| format!("manifest {}: {e}", manifest_path.display()))?;
                let expected = Manifest {
                    version: MANIFEST_VERSION,
                    scenarios: plan.scenarios(),
                    shard_size: plan.shard_size(),
                    fingerprint,
                };
                if found != expected {
                    return Err(format!(
                        "checkpoint dir {} belongs to a different sweep (manifest {}, this sweep \
                         {}); point --resume at a fresh directory or delete it",
                        dir.display(),
                        found.spell(),
                        expected.spell()
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let manifest = Manifest {
                    version: MANIFEST_VERSION,
                    scenarios: plan.scenarios(),
                    shard_size: plan.shard_size(),
                    fingerprint,
                };
                write_atomic(&manifest_path, &format!("{}\n", manifest.to_json()))?;
            }
            Err(e) => return Err(format!("manifest {}: {e}", manifest_path.display())),
        }
        Ok(Self { dir: dir.to_path_buf(), plan })
    }

    /// The plan this checkpoint is bound to.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Loads shard `shard` if it completed in a previous run: `Ok(None)`
    /// when absent (not yet run), the parsed records when present.
    ///
    /// # Errors
    ///
    /// A present-but-corrupt shard file (unparsable line or wrong record
    /// count) — completed files are atomically renamed into place, so
    /// corruption means external interference, not an interrupted run.
    pub fn load_shard(&self, shard: usize) -> Result<Option<Vec<RunRecord>>, String> {
        let path = self.shard_path(shard);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("shard file {}: {e}", path.display())),
        };
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            records.push(
                parse_record_json(line)
                    .map_err(|e| format!("shard file {} line {}: {e}", path.display(), i + 1))?,
            );
        }
        let expected = self.plan.range(shard).len();
        if records.len() != expected {
            return Err(format!(
                "shard file {} holds {} records, expected {}",
                path.display(),
                records.len(),
                expected
            ));
        }
        Ok(Some(records))
    }

    /// Persists a completed shard: records as JSON lines (timing fields
    /// included — they are excluded from byte-compared output anyway, and
    /// keeping them makes restored profiles honest about past cost),
    /// written to a temporary file and atomically renamed.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    pub fn store_shard(&self, shard: usize, records: &[RunRecord]) -> Result<(), String> {
        let mut text = String::new();
        for r in records {
            text.push_str(&r.to_json(true));
            text.push('\n');
        }
        write_atomic(&self.shard_path(shard), &text)
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:05}.jsonl"))
    }
}

/// Writes `text` to `path` via a sibling `.tmp` plus rename, so `path`
/// either holds the complete content or does not exist.
fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

/// The manifest's contents (flat JSON; the fingerprint is spelled as a
/// hex string — JSON numbers cannot carry a full u64 faithfully).
#[derive(Debug, PartialEq, Eq)]
struct Manifest {
    version: u64,
    scenarios: usize,
    shard_size: usize,
    fingerprint: u64,
}

impl Manifest {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"version\":{},\"scenarios\":{},\"shard_size\":{},",
            self.version, self.scenarios, self.shard_size
        ));
        push_json_str(&mut out, "fingerprint", &format!("{:016x}", self.fingerprint));
        out.push('}');
        out
    }

    fn parse(text: &str) -> Result<Self, String> {
        let pairs: BTreeMap<String, JsonValue> = parse_flat_json(text)?.into_iter().collect();
        let num = |key: &str| -> Result<u64, String> {
            match pairs.get(key) {
                Some(JsonValue::Num(raw)) => {
                    raw.parse().map_err(|_| format!("field '{key}': bad integer '{raw}'"))
                }
                _ => Err(format!("missing integer field '{key}'")),
            }
        };
        let fingerprint = match pairs.get("fingerprint") {
            Some(JsonValue::Str(hex)) => {
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad fingerprint '{hex}'"))?
            }
            _ => return Err("missing string field 'fingerprint'".to_string()),
        };
        Ok(Self {
            version: num("version")?,
            scenarios: usize::try_from(num("scenarios")?)
                .map_err(|_| "scenarios out of range".to_string())?,
            shard_size: usize::try_from(num("shard_size")?)
                .map_err(|_| "shard_size out of range".to_string())?,
            fingerprint,
        })
    }

    fn spell(&self) -> String {
        format!(
            "v{} {} scenarios × shard {} fp {:016x}",
            self.version, self.scenarios, self.shard_size, self.fingerprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MapperSpec, RoutingSpec, ScenarioSet, TopologySpec};
    use noc_apps::App;

    fn tiny_set(root_seed: u64) -> ScenarioSet {
        ScenarioSet::builder()
            .root_seed(root_seed)
            .app(App::Pip)
            .app(App::Mwa)
            .topology(TopologySpec::FitMesh)
            .mapper(MapperSpec::NmapInit)
            .mapper(MapperSpec::Gmap)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .build()
    }

    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("noc-dse-shard-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn plan_covers_every_index_in_order() {
        let plan = ShardPlan::new(10, 4);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..8);
        assert_eq!(plan.range(2), 8..10, "last shard is short");
        let flat: Vec<usize> = (0..plan.shard_count()).flat_map(|s| plan.range(s)).collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());

        assert_eq!(ShardPlan::new(0, 4).shard_count(), 0);
        assert_eq!(ShardPlan::new(4, 0).shard_size(), 1, "shard size clamps to 1");
        assert_eq!(ShardPlan::new(3, 100).shard_count(), 1);
    }

    #[test]
    fn fingerprint_tracks_scenario_identity() {
        let a = tiny_set(1);
        let b = tiny_set(1);
        assert_eq!(set_fingerprint(a.scenarios()), set_fingerprint(b.scenarios()));
        let other_seed = tiny_set(2);
        // Bundled apps pin no seeds through the builder RNG, but the
        // per-scenario seed still lands in the descriptor.
        assert_ne!(
            set_fingerprint(a.scenarios()),
            set_fingerprint(other_seed.scenarios()),
            "root seed must move the fingerprint"
        );
        let mut reordered: Vec<Scenario> = a.scenarios().to_vec();
        reordered.swap(0, 1);
        assert_ne!(set_fingerprint(a.scenarios()), set_fingerprint(&reordered));
        assert_ne!(
            set_fingerprint(a.scenarios()),
            set_fingerprint(&a.scenarios()[..a.len() - 1]),
            "a truncated set is a different sweep"
        );
    }

    #[test]
    fn checkpoint_round_trips_shards() {
        let scratch = ScratchDir::new("roundtrip");
        let set = tiny_set(3);
        let records = crate::run_scenarios(set.scenarios(), 1);
        let cp = Checkpoint::open(&scratch.0, set.scenarios(), 3).unwrap();
        assert_eq!(cp.plan().shard_count(), 3); // 8 scenarios / 3

        assert_eq!(cp.load_shard(0).unwrap(), None, "nothing stored yet");
        for shard in 0..cp.plan().shard_count() {
            let range = cp.plan().range(shard);
            cp.store_shard(shard, &records[range]).unwrap();
        }

        // A fresh Checkpoint over the same dir restores byte-equal records.
        let reopened = Checkpoint::open(&scratch.0, set.scenarios(), 3).unwrap();
        let mut restored = Vec::new();
        for shard in 0..reopened.plan().shard_count() {
            restored.extend(reopened.load_shard(shard).unwrap().expect("stored"));
        }
        assert_eq!(restored, records, "timing included: store_shard writes timing=true");
    }

    #[test]
    fn checkpoint_rejects_mismatched_sweeps() {
        let scratch = ScratchDir::new("mismatch");
        let set = tiny_set(3);
        Checkpoint::open(&scratch.0, set.scenarios(), 4).unwrap();

        // Same sweep, same sharding: fine.
        assert!(Checkpoint::open(&scratch.0, set.scenarios(), 4).is_ok());
        // Different shard size: the done-set would mean different ranges.
        let err = Checkpoint::open(&scratch.0, set.scenarios(), 2).unwrap_err();
        assert!(err.contains("different sweep"), "err: {err}");
        // Different scenarios under the same count: fingerprint catches it.
        let other = tiny_set(9);
        assert_eq!(other.len(), set.len());
        let err = Checkpoint::open(&scratch.0, other.scenarios(), 4).unwrap_err();
        assert!(err.contains("different sweep"), "err: {err}");
    }

    #[test]
    fn corrupt_shard_files_error_instead_of_merging() {
        let scratch = ScratchDir::new("corrupt");
        let set = tiny_set(3);
        let records = crate::run_scenarios(set.scenarios(), 1);
        let cp = Checkpoint::open(&scratch.0, set.scenarios(), 4).unwrap();

        // Wrong record count.
        cp.store_shard(0, &records[0..2]).unwrap();
        let err = cp.load_shard(0).unwrap_err();
        assert!(err.contains("expected 4"), "err: {err}");

        // Unparsable line.
        fs::write(scratch.0.join("shard-00001.jsonl"), "not json\n").unwrap();
        let err = cp.load_shard(1).unwrap_err();
        assert!(err.contains("line 1"), "err: {err}");

        // A stray .tmp (killed mid-write) is invisible: the shard reads
        // as absent, not corrupt.
        fs::write(scratch.0.join("shard-00001.tmp"), "partial").unwrap();
        fs::remove_file(scratch.0.join("shard-00001.jsonl")).unwrap();
        assert_eq!(cp.load_shard(1).unwrap(), None);
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            version: MANIFEST_VERSION,
            scenarios: 112,
            shard_size: 16,
            fingerprint: 0xdead_beef_cafe_f00d,
        };
        let parsed = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("{\"version\":1}").is_err());
    }
}
