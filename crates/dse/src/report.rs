//! Sweep results: per-scenario [`RunRecord`]s, the aggregate
//! [`SweepReport`], JSON-lines and CSV writers, and summary statistics.
//!
//! Writers emit records in scenario order and, by default, exclude the
//! wall-clock timing fields — everything else is a deterministic function
//! of the scenario, so default-form output is byte-identical regardless of
//! how many engine threads produced it (asserted by the crate's
//! determinism integration test). Pass `timing = true` to include the
//! per-stage microsecond timings for profiling.

use std::fmt;
use std::time::Duration;

use noc_units::{HopMbps, Latency, Mbps};

use crate::Scenario;

/// Wall-clock time spent in each stage of one scenario, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimes {
    /// Building the core graph and topology.
    pub build_us: u64,
    /// Running the mapper.
    pub map_us: u64,
    /// Routing the placed traffic and measuring loads.
    pub route_us: u64,
    /// Running the wormhole simulator (0 when the scenario has no
    /// simulate stage).
    pub sim_us: u64,
    /// Stage-cache bookkeeping: key derivation, lookup and store overhead
    /// of the map/route memoization (0 when every stage computed without
    /// consulting a cache). Kept separate so worker-utilization profiles
    /// attribute cache time honestly instead of folding it into the
    /// stages it displaced.
    pub cache_us: u64,
}

impl StageTimes {
    /// Total microseconds across all stages, saturating at `u64::MAX`
    /// (individual stage fields are `pub`, so hand-built records can
    /// legitimately hold values whose sum would overflow).
    pub fn total_us(&self) -> u64 {
        self.build_us
            .saturating_add(self.map_us)
            .saturating_add(self.route_us)
            .saturating_add(self.sim_us)
            .saturating_add(self.cache_us)
    }

    /// Converts a [`Duration`] to saturating microseconds (durations
    /// beyond ~584 000 years clamp to `u64::MAX` instead of truncating).
    pub fn us(d: Duration) -> u64 {
        u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
    }

    /// Field-wise saturating sum of two stage-time records (used by the
    /// sweep summary; keeps aggregate wall time overflow-safe).
    pub fn saturating_sum(&self, other: &StageTimes) -> StageTimes {
        StageTimes {
            build_us: self.build_us.saturating_add(other.build_us),
            map_us: self.map_us.saturating_add(other.map_us),
            route_us: self.route_us.saturating_add(other.route_us),
            sim_us: self.sim_us.saturating_add(other.sim_us),
            cache_us: self.cache_us.saturating_add(other.cache_us),
        }
    }
}

/// Simulation-stage measurements of one scenario (present when the
/// scenario carried a [`crate::SimulateSpec`]). All values are
/// deterministic functions of the scenario — the traffic seed derives
/// from the scenario seed, never from engine worker identity — so they
/// participate in the byte-identical-output guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Mean packet latency in cycles (generation → tail ejection,
    /// source queueing included).
    pub avg_latency_cycles: Latency,
    /// Mean network-only latency in cycles (network entry → ejection).
    pub avg_network_latency_cycles: Latency,
    /// Coarse 95th-percentile latency bound in cycles (histogram bucket
    /// upper edge; 0 when no packet was measured).
    pub p95_latency_cycles: u64,
    /// Accepted throughput over the measurement window: payload bytes of
    /// measured delivered packets per unit time.
    pub delivered_mbps: Mbps,
    /// Peak per-link throughput during the window.
    pub max_link_mbps: Mbps,
    /// Saturation flag (deadlock drops or in-flight measured packets at
    /// the end of the drain window).
    pub saturated: bool,
}

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Application label (e.g. `VOPD`, `rand25#2`).
    pub scenario: String,
    /// Number of cores in the application.
    pub cores: usize,
    /// Resolved topology label (e.g. `mesh4x4`).
    pub topology: String,
    /// Uniform link capacity.
    pub capacity: Mbps,
    /// Mapper name.
    pub mapper: String,
    /// Routing-regime name.
    pub routing: String,
    /// The scenario's seed.
    pub seed: u64,
    /// Empty on success, otherwise the failure message.
    pub error: String,
    /// Whether the routed loads satisfy every link capacity.
    pub feasible: bool,
    /// Equation-7 communication cost of the placement.
    pub comm_cost: HopMbps,
    /// Heaviest link load under the scenario's routing regime.
    pub max_link_load: Mbps,
    /// Sum of all link loads (total flow).
    pub total_load: Mbps,
    /// Mapper work measure (placement evaluations, LP solves or search
    /// expansions, depending on the mapper; 0 for constructive mappers).
    pub evaluations: usize,
    /// Simulation-stage measurements (`None` when the scenario has no
    /// simulate stage; the sim columns then serialize as `null`).
    pub sim: Option<SimStats>,
    /// Per-stage wall-clock times (excluded from default-form output).
    pub times: StageTimes,
}

impl RunRecord {
    /// A record for a scenario that failed before producing a mapping.
    pub fn failed(scenario: &Scenario, cores: usize, topology: String, error: String) -> Self {
        RunRecord {
            scenario: scenario.label.clone(),
            cores,
            topology,
            capacity: scenario.capacity,
            mapper: scenario.mapper.name(),
            routing: scenario.routing.name().to_string(),
            seed: scenario.seed,
            error,
            feasible: false,
            comm_cost: HopMbps::ZERO,
            max_link_load: Mbps::ZERO,
            total_load: Mbps::ZERO,
            evaluations: 0,
            sim: None,
            times: StageTimes::default(),
        }
    }

    /// True when the scenario ran to completion.
    pub fn is_ok(&self) -> bool {
        self.error.is_empty()
    }

    /// One JSON object (single line, no trailing newline).
    pub fn to_json(&self, timing: bool) -> String {
        let mut out = String::with_capacity(192);
        out.push('{');
        push_json_str(&mut out, "scenario", &self.scenario);
        out.push(',');
        push_json_raw(&mut out, "cores", &self.cores.to_string());
        out.push(',');
        push_json_str(&mut out, "topology", &self.topology);
        out.push(',');
        push_json_raw(&mut out, "capacity", &fmt_f64(self.capacity.to_f64()));
        out.push(',');
        push_json_str(&mut out, "mapper", &self.mapper);
        out.push(',');
        push_json_str(&mut out, "routing", &self.routing);
        out.push(',');
        push_json_raw(&mut out, "seed", &self.seed.to_string());
        out.push(',');
        push_json_str(&mut out, "error", &self.error);
        out.push(',');
        push_json_raw(&mut out, "feasible", if self.feasible { "true" } else { "false" });
        out.push(',');
        push_json_raw(&mut out, "comm_cost", &fmt_f64(self.comm_cost.to_f64()));
        out.push(',');
        push_json_raw(&mut out, "max_link_load", &fmt_f64(self.max_link_load.to_f64()));
        out.push(',');
        push_json_raw(&mut out, "total_load", &fmt_f64(self.total_load.to_f64()));
        out.push(',');
        push_json_raw(&mut out, "evaluations", &self.evaluations.to_string());
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_avg_latency",
            &fmt_opt_f64(self.sim_f64(|s| s.avg_latency_cycles.to_f64())),
        );
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_network_latency",
            &fmt_opt_f64(self.sim_f64(|s| s.avg_network_latency_cycles.to_f64())),
        );
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_p95_latency",
            &self.sim.as_ref().map_or("null".to_string(), |s| s.p95_latency_cycles.to_string()),
        );
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_delivered_mbps",
            &fmt_opt_f64(self.sim_f64(|s| s.delivered_mbps.to_f64())),
        );
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_max_link_mbps",
            &fmt_opt_f64(self.sim_f64(|s| s.max_link_mbps.to_f64())),
        );
        out.push(',');
        push_json_raw(
            &mut out,
            "sim_saturated",
            self.sim.as_ref().map_or("null", |s| if s.saturated { "true" } else { "false" }),
        );
        if timing {
            out.push(',');
            push_json_raw(&mut out, "build_us", &self.times.build_us.to_string());
            out.push(',');
            push_json_raw(&mut out, "map_us", &self.times.map_us.to_string());
            out.push(',');
            push_json_raw(&mut out, "route_us", &self.times.route_us.to_string());
            out.push(',');
            push_json_raw(&mut out, "sim_us", &self.times.sim_us.to_string());
            out.push(',');
            push_json_raw(&mut out, "cache_us", &self.times.cache_us.to_string());
        }
        out.push('}');
        out
    }

    /// Projects one `f64` sim column (`None` when the scenario did not
    /// simulate).
    fn sim_f64(&self, f: impl Fn(&SimStats) -> f64) -> Option<f64> {
        self.sim.as_ref().map(f)
    }

    /// The CSV header matching [`RunRecord::to_csv`].
    pub fn csv_header(timing: bool) -> String {
        let mut h = "scenario,cores,topology,capacity,mapper,routing,seed,error,feasible,\
comm_cost,max_link_load,total_load,evaluations,sim_avg_latency,sim_network_latency,\
sim_p95_latency,sim_delivered_mbps,sim_max_link_mbps,sim_saturated"
            .to_string();
        if timing {
            h.push_str(",build_us,map_us,route_us,sim_us,cache_us");
        }
        h
    }

    /// One CSV data line (no trailing newline). Text fields are quoted
    /// only when they contain a separator, quote or newline.
    pub fn to_csv(&self, timing: bool) -> String {
        let mut cells = vec![
            csv_cell(&self.scenario),
            self.cores.to_string(),
            csv_cell(&self.topology),
            fmt_f64(self.capacity.to_f64()),
            csv_cell(&self.mapper),
            csv_cell(&self.routing),
            self.seed.to_string(),
            csv_cell(&self.error),
            (if self.feasible { "true" } else { "false" }).to_string(),
            fmt_f64(self.comm_cost.to_f64()),
            fmt_f64(self.max_link_load.to_f64()),
            fmt_f64(self.total_load.to_f64()),
            self.evaluations.to_string(),
            fmt_opt_f64(self.sim_f64(|s| s.avg_latency_cycles.to_f64())),
            fmt_opt_f64(self.sim_f64(|s| s.avg_network_latency_cycles.to_f64())),
            self.sim.as_ref().map_or("null".to_string(), |s| s.p95_latency_cycles.to_string()),
            fmt_opt_f64(self.sim_f64(|s| s.delivered_mbps.to_f64())),
            fmt_opt_f64(self.sim_f64(|s| s.max_link_mbps.to_f64())),
            self.sim
                .as_ref()
                .map_or("null", |s| if s.saturated { "true" } else { "false" })
                .to_string(),
        ];
        if timing {
            cells.push(self.times.build_us.to_string());
            cells.push(self.times.map_us.to_string());
            cells.push(self.times.route_us.to_string());
            cells.push(self.times.sim_us.to_string());
            cells.push(self.times.cache_us.to_string());
        }
        cells.join(",")
    }
}

/// The complete result of one sweep: records in scenario order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Per-scenario records, in [`crate::ScenarioSet`] order.
    pub records: Vec<RunRecord>,
}

impl SweepReport {
    /// Wraps records (already in scenario order).
    pub fn new(records: Vec<RunRecord>) -> Self {
        Self { records }
    }

    /// All records as JSON lines (one object per line, trailing newline).
    pub fn write_jsonl(&self, timing: bool) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json(timing));
            out.push('\n');
        }
        out
    }

    /// All records as CSV with a header row (trailing newline).
    pub fn write_csv(&self, timing: bool) -> String {
        let mut out = RunRecord::csv_header(timing);
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv(timing));
            out.push('\n');
        }
        out
    }

    /// Aggregate statistics over the records.
    pub fn summary(&self) -> SweepSummary {
        let mut costs: Vec<f64> =
            self.records.iter().filter(|r| r.is_ok()).map(|r| r.comm_cost.to_f64()).collect();
        // total_cmp keeps this panic-free even for hand-built records
        // holding non-finite costs (NaN sorts last).
        costs.sort_by(f64::total_cmp);
        let completed = costs.len();
        let feasible = self.records.iter().filter(|r| r.feasible).count();
        let times =
            self.records.iter().fold(StageTimes::default(), |acc, r| acc.saturating_sum(&r.times));
        let sims: Vec<&SimStats> = self.records.iter().filter_map(|r| r.sim.as_ref()).collect();
        let mut sim_latencies: Vec<f64> =
            sims.iter().map(|s| s.avg_latency_cycles.to_f64()).collect();
        sim_latencies.sort_by(f64::total_cmp);
        SweepSummary {
            scenarios: self.records.len(),
            failed: self.records.len() - completed,
            feasible,
            feasibility_rate: if completed == 0 { 0.0 } else { feasible as f64 / completed as f64 },
            // Nearest-rank quantiles select an element (no interpolation),
            // so the raw f64s are exactly the typed costs that went in.
            cost_min: HopMbps::raw(quantile(&costs, 0.0)),
            cost_median: HopMbps::raw(quantile(&costs, 0.5)),
            cost_p90: HopMbps::raw(quantile(&costs, 0.9)),
            cost_max: HopMbps::raw(quantile(&costs, 1.0)),
            simulated: sims.len(),
            saturated: sims.iter().filter(|s| s.saturated).count(),
            sim_latency_median: Latency::raw(quantile(&sim_latencies, 0.5)),
            sim_latency_p90: Latency::raw(quantile(&sim_latencies, 0.9)),
            times,
        }
    }
}

/// Aggregate statistics of a sweep (see [`SweepReport::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Total scenarios run.
    pub scenarios: usize,
    /// Scenarios that errored before producing a mapping/routing.
    pub failed: usize,
    /// Scenarios whose routed loads met every link capacity.
    pub feasible: usize,
    /// `feasible / (scenarios - failed)`; 0 when nothing completed.
    // lint: allow(f64-api) — dimensionless ratio in [0, 1].
    pub feasibility_rate: f64,
    /// Minimum communication cost over completed scenarios (0 if none).
    pub cost_min: HopMbps,
    /// Median communication cost (nearest-rank).
    pub cost_median: HopMbps,
    /// 90th-percentile communication cost (nearest-rank).
    pub cost_p90: HopMbps,
    /// Maximum communication cost.
    pub cost_max: HopMbps,
    /// Scenarios that ran the simulation stage.
    pub simulated: usize,
    /// Simulated scenarios that showed saturation.
    pub saturated: usize,
    /// Median mean-packet-latency over simulated scenarios (cycles,
    /// nearest-rank; 0 when nothing was simulated).
    pub sim_latency_median: Latency,
    /// 90th-percentile mean-packet-latency over simulated scenarios.
    pub sim_latency_p90: Latency,
    /// Total wall-clock time per stage across all scenarios.
    pub times: StageTimes,
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenarios: {} ({} failed), feasible: {} ({:.1}%)",
            self.scenarios,
            self.failed,
            self.feasible,
            self.feasibility_rate * 100.0
        )?;
        writeln!(
            f,
            "comm cost: min {:.1}, median {:.1}, p90 {:.1}, max {:.1}",
            self.cost_min, self.cost_median, self.cost_p90, self.cost_max
        )?;
        if self.simulated > 0 {
            writeln!(
                f,
                "simulated: {} ({} saturated), latency median {:.1} cy, p90 {:.1} cy",
                self.simulated, self.saturated, self.sim_latency_median, self.sim_latency_p90
            )?;
        }
        write!(
            f,
            "wall time: build {:.1} ms, map {:.1} ms, route {:.1} ms, sim {:.1} ms, cache {:.1} ms",
            self.times.build_us as f64 / 1e3,
            self.times.map_us as f64 / 1e3,
            self.times.route_us as f64 / 1e3,
            self.times.sim_us as f64 / 1e3,
            self.times.cache_us as f64 / 1e3
        )
    }
}

/// Nearest-rank quantile of an ascending-sorted slice; 0 when empty.
///
/// The nearest-rank definition: the smallest element such that at least
/// `⌈q·n⌉` samples are ≤ it (rank floored at 1, so `q = 0` reports the
/// minimum). No interpolation — the result is always an element of the
/// slice, which keeps medians of small sweeps honest.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Shortest-round-trip decimal form of an `f64` (Rust's `{}`). Engine
/// records only hold finite numbers, but hand-built records might not:
/// JSON has no spelling for `inf`/`NaN`, so non-finite values become
/// `null` rather than emitting unparsable output.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// [`fmt_f64`] for optional columns: absent values (no sim stage) become
/// `null`, in both JSON and CSV.
fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_string(), fmt_f64)
}

pub(crate) fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_raw(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

fn csv_cell(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// One parsed value of a flat (non-nested) JSON object. Numbers keep
/// their raw decimal spelling: `f64` round-trips through Rust's `{}`
/// formatting exactly, so a record parsed from a checkpoint shard and
/// re-serialized stays byte-identical to the original line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A number, kept as its raw source spelling.
    Num(String),
    /// An unescaped string.
    Str(String),
}

impl JsonValue {
    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
        }
    }
}

/// Parses one line holding a flat JSON object (string / number / bool /
/// null values only — exactly the shape this module's writers emit) into
/// its key/value pairs in source order. Shared by the checkpoint-shard
/// reader and the on-disk stage-cache tier.
pub(crate) fn parse_flat_json(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = JsonParser { bytes: line.as_bytes(), pos: 0 };
    let pairs = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input after JSON object at byte {}", p.pos));
    }
    Ok(pairs)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(pairs);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 number".to_string())?;
                Ok(JsonValue::Num(raw.to_string()))
            }
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Collect raw spans between escapes so multi-byte UTF-8 passes
        // through untouched.
        let mut span = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    out.push_str(self.span_str(span)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.span_str(span)?);
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // The writers only \u-escape C0 controls, which
                            // are never surrogate halves.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                    span = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn span_str(&self, start: usize) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 string content".to_string())
    }
}

/// Key/value view of one parsed record line with typed accessors.
struct Fields {
    pairs: Vec<(String, JsonValue)>,
}

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonValue, String> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("field '{key}': expected string, got {}", other.kind())),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonValue::Num(raw) => {
                raw.parse().map_err(|_| format!("field '{key}': bad number '{raw}'"))
            }
            other => Err(format!("field '{key}': expected number, got {}", other.kind())),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            JsonValue::Num(raw) => {
                raw.parse().map_err(|_| format!("field '{key}': bad integer '{raw}'"))
            }
            other => Err(format!("field '{key}': expected integer, got {}", other.kind())),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.pairs.iter().any(|(k, _)| k == key) {
            self.u64(key)
        } else {
            Ok(default)
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("field '{key}': expected bool, got {}", other.kind())),
        }
    }

    fn is_null(&self, key: &str) -> Result<bool, String> {
        Ok(matches!(self.get(key)?, JsonValue::Null))
    }
}

/// Parses one JSON line written by [`RunRecord::to_json`] back into a
/// [`RunRecord`]. Numbers round-trip exactly (shortest-representation
/// `f64` formatting is invertible), so re-serializing the result
/// reproduces the input line byte-for-byte — the property checkpointed
/// resume relies on. Timing fields are optional and default to zero.
pub fn parse_record_json(line: &str) -> Result<RunRecord, String> {
    let f = Fields { pairs: parse_flat_json(line)? };
    let sim = if f.is_null("sim_avg_latency")? {
        None
    } else {
        Some(SimStats {
            avg_latency_cycles: Latency::raw(f.f64("sim_avg_latency")?),
            avg_network_latency_cycles: Latency::raw(f.f64("sim_network_latency")?),
            p95_latency_cycles: f.u64("sim_p95_latency")?,
            delivered_mbps: Mbps::raw(f.f64("sim_delivered_mbps")?),
            max_link_mbps: Mbps::raw(f.f64("sim_max_link_mbps")?),
            saturated: f.bool("sim_saturated")?,
        })
    };
    Ok(RunRecord {
        scenario: f.str("scenario")?,
        cores: usize::try_from(f.u64("cores")?).map_err(|_| "cores out of range".to_string())?,
        topology: f.str("topology")?,
        capacity: Mbps::raw(f.f64("capacity")?),
        mapper: f.str("mapper")?,
        routing: f.str("routing")?,
        seed: f.u64("seed")?,
        error: f.str("error")?,
        feasible: f.bool("feasible")?,
        comm_cost: HopMbps::raw(f.f64("comm_cost")?),
        max_link_load: Mbps::raw(f.f64("max_link_load")?),
        total_load: Mbps::raw(f.f64("total_load")?),
        evaluations: usize::try_from(f.u64("evaluations")?)
            .map_err(|_| "evaluations out of range".to_string())?,
        sim,
        times: StageTimes {
            build_us: f.u64_or("build_us", 0)?,
            map_us: f.u64_or("map_us", 0)?,
            route_us: f.u64_or("route_us", 0)?,
            sim_us: f.u64_or("sim_us", 0)?,
            cache_us: f.u64_or("cache_us", 0)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_units::{hop_mbps, latency, mbps};

    fn record(cost: f64, feasible: bool) -> RunRecord {
        RunRecord {
            scenario: "VOPD".into(),
            cores: 16,
            topology: "mesh4x4".into(),
            capacity: mbps(1_000.0),
            mapper: "nmap".into(),
            routing: "min-path".into(),
            seed: 42,
            error: String::new(),
            feasible,
            comm_cost: hop_mbps(cost),
            max_link_load: mbps(cost / 4.0),
            total_load: mbps(cost),
            evaluations: 7,
            sim: None,
            times: StageTimes { build_us: 10, map_us: 200, route_us: 30, sim_us: 0, cache_us: 0 },
        }
    }

    fn sim_stats(cycles: f64, saturated: bool) -> SimStats {
        SimStats {
            avg_latency_cycles: latency(cycles),
            avg_network_latency_cycles: latency(cycles - 10.0),
            p95_latency_cycles: 256,
            delivered_mbps: mbps(400.0),
            max_link_mbps: mbps(425.5),
            saturated,
        }
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let mut r = record(4119.5, true);
        r.error = "bad \"quote\"\nline".into();
        let json = r.to_json(false);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"comm_cost\":4119.5"));
        assert!(json.contains("\"feasible\":true"));
        assert!(json.contains("\\\"quote\\\"\\nline"));
        assert!(!json.contains("build_us"));
        assert!(r.to_json(true).contains("\"map_us\":200"));
    }

    #[test]
    fn sim_columns_serialize_and_null_out() {
        let mut r = record(5.0, true);
        let json = r.to_json(false);
        assert!(json.contains("\"sim_avg_latency\":null"));
        assert!(json.contains("\"sim_saturated\":null"));
        assert!(r.to_csv(false).ends_with(",null,null,null,null,null,null"));

        r.sim = Some(sim_stats(123.5, true));
        let json = r.to_json(false);
        assert!(json.contains("\"sim_avg_latency\":123.5"));
        assert!(json.contains("\"sim_network_latency\":113.5"));
        assert!(json.contains("\"sim_p95_latency\":256"));
        assert!(json.contains("\"sim_max_link_mbps\":425.5"));
        assert!(json.contains("\"sim_saturated\":true"));
        assert!(r.to_csv(false).contains("123.5,113.5,256,400,425.5,true"));

        r.times.sim_us = 77;
        r.times.cache_us = 9;
        assert!(r.to_json(true).contains("\"sim_us\":77"));
        assert!(r.to_json(true).contains("\"cache_us\":9"));
        assert!(r.to_csv(true).ends_with(",77,9"));
    }

    #[test]
    fn csv_row_matches_header_width() {
        let r = record(100.0, false);
        for timing in [false, true] {
            let header = RunRecord::csv_header(timing);
            let row = r.to_csv(timing);
            assert_eq!(header.split(',').count(), row.split(',').count(), "timing={timing}");
        }
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut r = record(1.0, true);
        r.scenario = "a,b".into();
        assert!(r.to_csv(false).starts_with("\"a,b\","));
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn summary_statistics() {
        let report = SweepReport::new(vec![
            record(10.0, true),
            record(20.0, true),
            record(30.0, false),
            record(40.0, true),
            {
                let mut r = record(0.0, false);
                r.error = "boom".into();
                r
            },
        ]);
        let s = report.summary();
        assert_eq!(s.scenarios, 5);
        assert_eq!(s.failed, 1);
        assert_eq!(s.feasible, 3);
        assert!((s.feasibility_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.cost_min, hop_mbps(10.0));
        assert_eq!(s.cost_median, hop_mbps(20.0)); // nearest rank: ceil(0.5*4) = rank 2
        assert_eq!(s.cost_p90, hop_mbps(40.0)); // ceil(0.9*4) = rank 4
        assert_eq!(s.cost_max, hop_mbps(40.0));
        assert_eq!(s.simulated, 0);
        assert_eq!(s.sim_latency_median, Latency::ZERO);
        assert_eq!(s.times.map_us, 5 * 200);
        let shown = s.to_string();
        assert!(shown.contains("feasible: 3"));
        assert!(!shown.contains("simulated:"), "no sim line without simulated records");
    }

    #[test]
    fn summary_aggregates_sim_stats() {
        let mut fast = record(10.0, true);
        fast.sim = Some(sim_stats(80.0, false));
        fast.times.sim_us = 500;
        let mut slow = record(20.0, true);
        slow.sim = Some(sim_stats(200.0, true));
        let report = SweepReport::new(vec![fast, slow, record(30.0, true)]);
        let s = report.summary();
        assert_eq!(s.simulated, 2);
        assert_eq!(s.saturated, 1);
        assert_eq!(s.sim_latency_median, latency(80.0)); // ceil(0.5*2) = rank 1
        assert_eq!(s.sim_latency_p90, latency(200.0));
        assert_eq!(s.times.sim_us, 500);
        let shown = s.to_string();
        assert!(shown.contains("simulated: 2 (1 saturated)"), "display: {shown}");
    }

    #[test]
    fn writers_are_line_per_record() {
        let report = SweepReport::new(vec![record(1.0, true), record(2.0, true)]);
        assert_eq!(report.write_jsonl(false).lines().count(), 2);
        assert_eq!(report.write_csv(false).lines().count(), 3); // header + 2
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        // The typed quantity fields cannot hold non-finite values any
        // more — the serialization seam still guards, so a future f64
        // column (or a quantity grown through unchecked paths) can never
        // emit unparsable JSON.
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_opt_f64(Some(f64::NAN)), "null");
        assert_eq!(fmt_opt_f64(None), "null");
        assert_eq!(fmt_f64(4119.5), "4119.5");
    }

    #[test]
    fn stage_times_saturate_instead_of_overflowing() {
        // `us` clamps durations whose microsecond count exceeds u64.
        assert_eq!(StageTimes::us(Duration::from_micros(123)), 123);
        assert_eq!(StageTimes::us(Duration::MAX), u64::MAX);

        // `total_us` saturates when the per-stage fields sum past u64.
        let near_max =
            StageTimes { build_us: u64::MAX - 10, map_us: 20, route_us: 5, sim_us: 5, cache_us: 0 };
        assert_eq!(near_max.total_us(), u64::MAX);
        let plain = StageTimes { build_us: 1, map_us: 2, route_us: 3, sim_us: 4, cache_us: 5 };
        assert_eq!(plain.total_us(), 15);

        // The sweep summary's fold saturates instead of panicking.
        let mut a = record(1.0, true);
        a.times = StageTimes {
            build_us: u64::MAX - 5,
            map_us: u64::MAX,
            route_us: 0,
            sim_us: 1,
            cache_us: 2,
        };
        let b = record(2.0, true);
        let s = SweepReport::new(vec![a, b]).summary();
        assert_eq!(s.times.build_us, u64::MAX);
        assert_eq!(s.times.map_us, u64::MAX);
        assert_eq!(s.times.route_us, 30);
        assert_eq!(s.times.sim_us, 1);
    }

    #[test]
    fn quantile_nearest_rank() {
        // Nearest-rank proper: the ⌈q·n⌉-th smallest element, never an
        // interpolated midpoint (the old round((n-1)·q) disagreed with
        // this for small n — e.g. it gave 3.0 as the "median" of four).
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.25), 1.0); // ceil(1) = rank 1
        assert_eq!(quantile(&v, 0.5), 2.0); // ceil(2) = rank 2
        assert_eq!(quantile(&v, 0.75), 3.0);
        assert_eq!(quantile(&v, 0.9), 4.0); // ceil(3.6) = rank 4
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn record_json_round_trips_byte_identically() {
        let mut r = record(4119.5, true);
        r.error = "bad \"quote\"\nline\t\u{0001}end".into();
        r.times.cache_us = 13;
        for timing in [false, true] {
            let line = r.to_json(timing);
            let back = parse_record_json(&line).expect("parse");
            assert_eq!(back.to_json(timing), line, "timing={timing}");
        }
        // Full equality when timing survives the trip.
        let back = parse_record_json(&r.to_json(true)).unwrap();
        assert_eq!(back, r);
        // Without timing the fields default to zero.
        let back = parse_record_json(&r.to_json(false)).unwrap();
        assert_eq!(back.times, StageTimes::default());

        let mut s = record(10.0, false);
        s.sim = Some(sim_stats(123.5, true));
        let line = s.to_json(true);
        let back = parse_record_json(&line).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(true), line);
    }

    #[test]
    fn parse_record_json_rejects_malformed_lines() {
        assert!(parse_record_json("").is_err());
        assert!(parse_record_json("{\"scenario\":\"x\"}").is_err(), "missing fields");
        assert!(parse_record_json("not json").is_err());
        let good = record(1.0, true).to_json(false);
        assert!(parse_record_json(&format!("{good}garbage")).is_err(), "trailing input");
        let wrong_type = good.replace("\"cores\":16", "\"cores\":\"16\"");
        assert!(parse_record_json(&wrong_type).is_err(), "string where integer expected");
    }

    #[test]
    fn flat_json_parser_handles_escapes_and_whitespace() {
        let pairs =
            parse_flat_json(" { \"a\" : \"x\\u0041\\n\" , \"b\" : -1.5e3 , \"c\" : null } ")
                .unwrap();
        assert_eq!(
            pairs,
            vec![
                ("a".to_string(), JsonValue::Str("xA\n".to_string())),
                ("b".to_string(), JsonValue::Num("-1.5e3".to_string())),
                ("c".to_string(), JsonValue::Null),
            ]
        );
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
        assert!(parse_flat_json("{\"a\":\"unterminated").is_err());
        assert!(parse_flat_json("{\"a\":1,}").is_err());
    }

    #[test]
    fn quantile_small_slices() {
        // One and two elements: the documented nearest-rank results.
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
        let two = [1.0, 9.0];
        assert_eq!(quantile(&two, 0.5), 1.0); // ceil(1) = rank 1: the lower value
        assert_eq!(quantile(&two, 0.51), 9.0); // ceil(1.02) = rank 2
        assert_eq!(quantile(&two, 0.9), 9.0);
        // Three elements: the median is the middle element.
        let three = [1.0, 5.0, 9.0];
        assert_eq!(quantile(&three, 0.5), 5.0);
        assert_eq!(quantile(&three, 0.9), 9.0);
    }
}
