//! The stage cache: content-addressed memoization of the map and route
//! stages, so sweep axes that reuse a stage (every routing × bandwidth
//! point shares its scenario's mapping; every simulate point shares its
//! routing) compute it exactly once.
//!
//! Keys are deterministic functions of the scenario spec — see
//! [`map_key`] / [`route_key`] — built from the same stable names the
//! report columns use, so a key never depends on memory addresses, hash
//! iteration order or worker identity. Values live in an in-memory
//! `BTreeMap` tier (always on), and the map stage optionally persists to
//! an on-disk JSONL tier for cross-run reuse ([`StageCache::with_disk`]).
//!
//! Determinism: each key's value is computed exactly once per process —
//! entries are `Arc<OnceLock>` slots, so concurrent workers racing on a
//! key block on one computation instead of duplicating it. That makes the
//! [`CacheStats`] counters thread-count-independent: misses equal the
//! number of distinct keys computed, hits equal lookups minus distinct
//! keys, no matter how the pool interleaves.
//!
//! An optional byte budget ([`StageCache::with_mem_cap`]) bounds the
//! in-memory tiers with least-recently-used eviction. Results stay
//! byte-identical at any cap — an evicted key simply recomputes its
//! deterministic value on the next lookup — but the exactly-once contract
//! weakens to exactly-once *per residency*, so hit/miss/eviction counters
//! under a finite cap depend on worker interleaving (they are exact at one
//! thread). The default is unbounded, which preserves the strict contract.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use nmap::{LinkLoads, Mapping, MappingProblem, RoutingTables};
use noc_graph::{CoreId, EdgeId, NodeId};

use crate::report::{parse_flat_json, push_json_str, JsonValue};
use crate::scenario::{AppSpec, Scenario};

/// Outcome of the map stage, as the cache stores it: the placement and
/// the mapper's work measure, or the failure message that became the
/// record's `error` field. Errors are cached too — a mapper that cannot
/// place an app fails identically for every routing that shares the key.
pub type MapResult = Result<(Mapping, usize), String>;

/// Outcome of the route stage: optional routing tables (present when the
/// scenario simulates) plus the link loads, or the failure message.
pub type RouteResult = Result<(Option<RoutingTables>, LinkLoads), String>;

/// Where a cached stage lookup was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the in-memory tier without running the stage.
    Hit,
    /// The in-memory tier missed; the on-disk tier supplied the value.
    DiskHit,
    /// Both tiers missed; the stage computed (and populated both tiers).
    Miss,
}

/// Point-in-time snapshot of a cache's counters (see [`StageCache::stats`]).
///
/// Under the exactly-once contract the miss counters are deterministic:
/// `map_misses + map_disk_hits` equals the number of distinct map keys
/// looked up, independent of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Map-stage lookups served from memory.
    pub map_hits: u64,
    /// Map-stage lookups served from the disk tier.
    pub map_disk_hits: u64,
    /// Map-stage lookups that computed the mapper.
    pub map_misses: u64,
    /// Route-stage lookups served from memory.
    pub route_hits: u64,
    /// Route-stage lookups that computed the routing.
    pub route_misses: u64,
    /// Entries dropped by the byte budget's LRU policy (0 when unbounded).
    pub evictions: u64,
}

impl CacheStats {
    /// Total map-stage lookups.
    pub fn map_lookups(&self) -> u64 {
        self.map_hits + self.map_disk_hits + self.map_misses
    }
}

#[derive(Default)]
struct Counters {
    map_hits: AtomicU64,
    map_disk_hits: AtomicU64,
    map_misses: AtomicU64,
    route_hits: AtomicU64,
    route_misses: AtomicU64,
    evictions: AtomicU64,
}

/// Which in-memory tier a byte-budget book entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Map,
    Route,
}

/// One resident entry's recency tick and estimated footprint.
#[derive(Debug, Clone, Copy)]
struct LruEntry {
    tick: u64,
    bytes: usize,
}

/// Recency and size bookkeeping for the byte budget. One logical clock
/// spans both stages, so pressure from either tier can reclaim stale
/// entries of the other. Only *filled* slots are booked (an entry enters
/// after its compute completes), so an in-flight `OnceLock` another worker
/// is blocking on is never evicted from under it.
#[derive(Default)]
struct LruBook {
    clock: u64,
    map: BTreeMap<String, LruEntry>,
    route: BTreeMap<String, LruEntry>,
    total_bytes: usize,
}

impl LruBook {
    fn entries(&mut self, stage: Stage) -> &mut BTreeMap<String, LruEntry> {
        match stage {
            Stage::Map => &mut self.map,
            Stage::Route => &mut self.route,
        }
    }

    /// The least-recently-used entry across both stages.
    fn oldest(&self) -> Option<(Stage, String, usize)> {
        let map = self.map.iter().map(|(k, e)| (e.tick, Stage::Map, k, e.bytes));
        let route = self.route.iter().map(|(k, e)| (e.tick, Stage::Route, k, e.bytes));
        map.chain(route)
            .min_by_key(|&(tick, ..)| tick)
            .map(|(_, stage, key, bytes)| (stage, key.clone(), bytes))
    }
}

/// The two-tier stage cache. See the module docs for the determinism
/// contract; construction is [`StageCache::in_memory`] or
/// [`StageCache::with_disk`].
pub struct StageCache {
    map_tier: Mutex<BTreeMap<String, Arc<OnceLock<MapResult>>>>,
    route_tier: Mutex<BTreeMap<String, Arc<OnceLock<RouteResult>>>>,
    disk: Option<DiskTier>,
    counters: Counters,
    mem_cap: Option<usize>,
    lru: Mutex<LruBook>,
}

impl std::fmt::Debug for StageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCache")
            .field("stats", &self.stats())
            .field("disk", &self.disk.is_some())
            .field("mem_cap", &self.mem_cap)
            .finish()
    }
}

impl Default for StageCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl StageCache {
    /// A cache with only the in-memory tier (per-sweep memoization).
    pub fn in_memory() -> Self {
        Self {
            map_tier: Mutex::new(BTreeMap::new()),
            route_tier: Mutex::new(BTreeMap::new()),
            disk: None,
            counters: Counters::default(),
            mem_cap: None,
            lru: Mutex::new(LruBook::default()),
        }
    }

    /// Bounds the in-memory tiers to roughly `cap` bytes of cached results
    /// (estimated, not malloc-exact), evicting least-recently-used entries
    /// once the budget is exceeded; `None` (the default) is unbounded. A
    /// cap of 0 retains nothing — every lookup recomputes. Entries evicted
    /// from memory are still restorable from the disk tier when one is
    /// attached. See the module docs for the determinism trade-off.
    pub fn with_mem_cap(mut self, cap: Option<usize>) -> Self {
        self.mem_cap = cap;
        self
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn mem_cap(&self) -> Option<usize> {
        self.mem_cap
    }

    /// A cache whose map tier additionally persists to
    /// `dir/map-cache.jsonl` for cross-run reuse: existing entries are
    /// loaded up front, new computations append. Route results stay
    /// memory-only — they are cheap relative to their serialized size and
    /// re-derive from a disk-restored mapping in one routing pass.
    ///
    /// Truncated trailing lines (a previous process killed mid-append)
    /// are skipped, not fatal. The directory is created if absent.
    ///
    /// # Errors
    ///
    /// The underlying I/O error message when the directory or cache file
    /// cannot be created or read.
    pub fn with_disk(dir: &Path) -> Result<Self, String> {
        let path = dir.join("map-cache.jsonl");
        fs::create_dir_all(dir).map_err(|e| format!("cache dir {}: {e}", dir.display()))?;
        let mut entries = BTreeMap::new();
        match fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    // Later lines win: a recomputed key supersedes its
                    // earlier spelling on the next load.
                    if let Some((key, record)) = DiskRecord::parse(line) {
                        entries.insert(key, record);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cache file {}: {e}", path.display())),
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cache file {}: {e}", path.display()))?;
        Ok(Self {
            map_tier: Mutex::new(BTreeMap::new()),
            route_tier: Mutex::new(BTreeMap::new()),
            disk: Some(DiskTier { entries: Mutex::new(entries), file: Mutex::new(file) }),
            counters: Counters::default(),
            mem_cap: None,
            lru: Mutex::new(LruBook::default()),
        })
    }

    /// True when the on-disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Memoized map stage: returns the cached result for `key`, running
    /// `compute` only on a cold key (checking the disk tier first, when
    /// attached). Exactly-once per key per process, even under concurrent
    /// lookups. `problem` validates disk-restored placements — an entry
    /// whose shape does not match the problem (stale file, colliding key
    /// from a foreign sweep) is recomputed, never trusted.
    pub fn map_stage(
        &self,
        key: &str,
        problem: &MappingProblem,
        compute: impl FnOnce() -> MapResult,
    ) -> (MapResult, Lookup) {
        let slot = {
            let mut tier = self.map_tier.lock().expect("map tier not poisoned");
            Arc::clone(tier.entry(key.to_string()).or_default())
        };
        let mut ran = false;
        let mut from_disk = false;
        let value = slot.get_or_init(|| {
            ran = true;
            if let Some(disk) = &self.disk {
                if let Some(restored) = disk.lookup(key, problem) {
                    from_disk = true;
                    return restored;
                }
            }
            let computed = compute();
            if let Some(disk) = &self.disk {
                disk.store(key, &computed);
            }
            computed
        });
        let lookup = if !ran {
            self.counters.map_hits.fetch_add(1, Ordering::Relaxed);
            Lookup::Hit
        } else if from_disk {
            self.counters.map_disk_hits.fetch_add(1, Ordering::Relaxed);
            Lookup::DiskHit
        } else {
            self.counters.map_misses.fetch_add(1, Ordering::Relaxed);
            Lookup::Miss
        };
        let value = value.clone();
        self.note_use(Stage::Map, key, ran.then(|| map_result_bytes(&value)));
        (value, lookup)
    }

    /// Memoized route stage (in-memory tier only): returns the cached
    /// result for `key`, running `compute` exactly once per key per
    /// process.
    pub fn route_stage(
        &self,
        key: &str,
        compute: impl FnOnce() -> RouteResult,
    ) -> (RouteResult, Lookup) {
        let slot = {
            let mut tier = self.route_tier.lock().expect("route tier not poisoned");
            Arc::clone(tier.entry(key.to_string()).or_default())
        };
        let mut ran = false;
        let value = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        let lookup = if ran {
            self.counters.route_misses.fetch_add(1, Ordering::Relaxed);
            Lookup::Miss
        } else {
            self.counters.route_hits.fetch_add(1, Ordering::Relaxed);
            Lookup::Hit
        };
        let value = value.clone();
        self.note_use(Stage::Route, key, ran.then(|| route_result_bytes(&value)));
        (value, lookup)
    }

    /// Records a lookup in the byte-budget book (no-op when unbounded):
    /// `bytes` is `Some` when the slot was just filled (book the entry at
    /// its estimated size), `None` on a hit (refresh its recency tick).
    /// Then evicts least-recently-used entries until the budget holds.
    fn note_use(&self, stage: Stage, key: &str, bytes: Option<usize>) {
        let Some(cap) = self.mem_cap else { return };
        let mut book = self.lru.lock().expect("lru book not poisoned");
        book.clock += 1;
        let tick = book.clock;
        match bytes {
            Some(b) => {
                let prev = book.entries(stage).insert(key.to_string(), LruEntry { tick, bytes: b });
                book.total_bytes = book.total_bytes - prev.map_or(0, |p| p.bytes) + b;
            }
            None => {
                if let Some(entry) = book.entries(stage).get_mut(key) {
                    entry.tick = tick;
                }
            }
        }
        while book.total_bytes > cap {
            let Some((victim_stage, victim_key, victim_bytes)) = book.oldest() else { break };
            match victim_stage {
                Stage::Map => {
                    self.map_tier.lock().expect("map tier not poisoned").remove(&victim_key);
                }
                Stage::Route => {
                    self.route_tier.lock().expect("route tier not poisoned").remove(&victim_key);
                }
            }
            book.entries(victim_stage).remove(&victim_key);
            book.total_bytes -= victim_bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            map_hits: self.counters.map_hits.load(Ordering::Relaxed),
            map_disk_hits: self.counters.map_disk_hits.load(Ordering::Relaxed),
            map_misses: self.counters.map_misses.load(Ordering::Relaxed),
            route_hits: self.counters.route_hits.load(Ordering::Relaxed),
            route_misses: self.counters.route_misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Estimated in-memory footprint of a map-stage result. Deliberately
/// coarse — the budget bounds growth, it does not account allocators.
fn map_result_bytes(value: &MapResult) -> usize {
    const BASE: usize = 64;
    match value {
        Ok((mapping, _)) => BASE + mapping.node_count() * 24,
        Err(e) => BASE + e.len(),
    }
}

/// Estimated in-memory footprint of a route-stage result: the load vector
/// plus, when tables were materialized, every split route's link list.
fn route_result_bytes(value: &RouteResult) -> usize {
    const BASE: usize = 64;
    match value {
        Ok((tables, loads)) => {
            let table_bytes = tables.as_ref().map_or(0, |t| {
                (0..t.commodity_count())
                    .map(|e| {
                        t.routes_of(EdgeId::new(e))
                            .iter()
                            .map(|r| 32 + r.links.len() * 8)
                            .sum::<usize>()
                            + 24
                    })
                    .sum()
            });
            BASE + loads.as_slice().len() * 8 + table_bytes
        }
        Err(e) => BASE + e.len(),
    }
}

/// The map stage's cache key: a pure function of everything the stage
/// reads — app spec, scenario seed, topology spec, mapper spec, and the
/// link capacity *only when the mapper reads it* (the constructive
/// placements never do — [`crate::MapperSpec::capacity_invariant`] — so
/// bandwidth-sweep points share their mapping; the search mappers'
/// feasibility scoring is capacity-dependent, so their keys pin it).
pub fn map_key(scenario: &Scenario) -> String {
    let capacity = if scenario.mapper.capacity_invariant() {
        "*".to_string()
    } else {
        scenario.capacity.to_f64().to_string()
    };
    format!(
        "app={};seed={};topo={};cap={};mapper={}",
        app_key(&scenario.app),
        scenario.seed,
        scenario.topology.name(),
        capacity,
        scenario.mapper.name()
    )
}

/// The route stage's cache key: the map key plus everything the route
/// stage additionally reads — the link capacity (always: the MCF programs
/// constrain on it and the feasibility record derives from it), the
/// routing regime, and whether tables are materialized (a tables-bearing
/// result and a loads-only result are different values).
pub fn route_key(scenario: &Scenario, need_tables: bool) -> String {
    format!(
        "{};rcap={};routing={};tables={}",
        map_key(scenario),
        scenario.capacity.to_f64(),
        scenario.routing.name(),
        need_tables
    )
}

/// The warm-start lineage key: [`route_key`] minus the route-stage link
/// capacity (`rcap`). Scenarios sharing a lineage differ *only* in the
/// capacities their MCF program constrains on — exactly the family whose
/// optimal bases chain through the dual simplex (`noc_lp::Basis` reuse),
/// since the LP's structure (topology wiring, commodity set, objective)
/// is pinned by every other key component.
pub fn warm_lineage_key(scenario: &Scenario, need_tables: bool) -> String {
    format!("{};routing={};tables={}", map_key(scenario), scenario.routing.name(), need_tables)
}

/// Complete spelling of an app spec. [`AppSpec::family`] is not injective
/// for random graphs (it drops degree and bandwidth bounds), so the key
/// spells out every generation parameter.
fn app_key(app: &AppSpec) -> String {
    match app {
        AppSpec::Bundled(a) => a.name().to_string(),
        AppSpec::DspFilter => "DSP".to_string(),
        AppSpec::Random(c) => format!(
            "rand[c{},d{},bw{}..{}]",
            c.cores,
            c.avg_degree,
            c.min_bandwidth.to_f64(),
            c.max_bandwidth.to_f64()
        ),
    }
}

/// The on-disk map tier: one JSONL file, one entry per line, loaded
/// whole at open, appended under a lock. Entry shape:
/// `{"key":..,"error":..,"evaluations":N,"nodes":K,"pairs":"c:n c:n .."}`.
struct DiskTier {
    entries: Mutex<BTreeMap<String, DiskRecord>>,
    file: Mutex<fs::File>,
}

impl DiskTier {
    fn lookup(&self, key: &str, problem: &MappingProblem) -> Option<MapResult> {
        let entries = self.entries.lock().expect("disk entries not poisoned");
        let record = entries.get(key)?;
        record.restore(problem)
    }

    fn store(&self, key: &str, value: &MapResult) {
        let record = DiskRecord::of(value);
        let line = record.to_json(key);
        {
            let mut file = self.file.lock().expect("disk file not poisoned");
            // Persistence is best-effort: a full disk degrades to
            // recompute-on-next-run, never to a failed sweep.
            let _ = writeln!(file, "{line}");
        }
        self.entries.lock().expect("disk entries not poisoned").insert(key.to_string(), record);
    }
}

struct DiskRecord {
    error: String,
    evaluations: usize,
    nodes: usize,
    pairs: Vec<(usize, usize)>,
}

impl DiskRecord {
    fn of(value: &MapResult) -> Self {
        match value {
            Ok((mapping, evaluations)) => Self {
                error: String::new(),
                evaluations: *evaluations,
                nodes: mapping.node_count(),
                pairs: mapping
                    .to_pairs()
                    .into_iter()
                    .map(|(c, n)| (c.index(), n.index()))
                    .collect(),
            },
            Err(e) => Self { error: e.clone(), evaluations: 0, nodes: 0, pairs: Vec::new() },
        }
    }

    fn to_json(&self, key: &str) -> String {
        let pairs =
            self.pairs.iter().map(|(c, n)| format!("{c}:{n}")).collect::<Vec<_>>().join(" ");
        let mut out = String::with_capacity(96 + pairs.len());
        out.push('{');
        push_json_str(&mut out, "key", key);
        out.push(',');
        push_json_str(&mut out, "error", &self.error);
        out.push_str(&format!(",\"evaluations\":{},\"nodes\":{},", self.evaluations, self.nodes));
        push_json_str(&mut out, "pairs", &pairs);
        out.push('}');
        out
    }

    fn parse(line: &str) -> Option<(String, DiskRecord)> {
        let pairs = parse_flat_json(line).ok()?;
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let str_field = |name: &str| match get(name)? {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        };
        let num_field = |name: &str| match get(name)? {
            JsonValue::Num(raw) => raw.parse::<usize>().ok(),
            _ => None,
        };
        let key = str_field("key")?;
        let error = str_field("error")?;
        let evaluations = num_field("evaluations")?;
        let nodes = num_field("nodes")?;
        let pairs_text = str_field("pairs")?;
        let mut placed = Vec::new();
        for token in pairs_text.split_whitespace() {
            let (c, n) = token.split_once(':')?;
            placed.push((c.parse().ok()?, n.parse().ok()?));
        }
        Some((key, DiskRecord { error, evaluations, nodes, pairs: placed }))
    }

    /// Rebuilds the cached [`MapResult`], validating the entry against
    /// the problem it is about to stand in for: node count must match,
    /// every core placed exactly once within bounds, no node reused.
    /// Invalid entries return `None` (recompute) rather than corrupt
    /// records.
    fn restore(&self, problem: &MappingProblem) -> Option<MapResult> {
        if !self.error.is_empty() {
            return Some(Err(self.error.clone()));
        }
        let node_count = problem.topology().node_count();
        let core_count = problem.cores().core_count();
        if self.nodes != node_count || self.pairs.len() != core_count {
            return None;
        }
        let mut core_seen = vec![false; core_count];
        let mut node_seen = vec![false; node_count];
        for &(c, n) in &self.pairs {
            if c >= core_count || n >= node_count || core_seen[c] || node_seen[n] {
                return None;
            }
            core_seen[c] = true;
            node_seen[n] = true;
        }
        let mut mapping = Mapping::new(node_count);
        for &(c, n) in &self.pairs {
            mapping.place(CoreId::new(c), NodeId::new(n));
        }
        Some(Ok((mapping, self.evaluations)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MapperSpec, RoutingSpec, TopologySpec};
    use nmap::SinglePathOptions;
    use noc_apps::App;
    use noc_graph::RandomGraphConfig;
    use noc_units::mbps;

    fn scenario(mapper: MapperSpec, capacity: f64, routing: RoutingSpec) -> Scenario {
        Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 7,
            topology: TopologySpec::FitMesh,
            capacity: mbps(capacity),
            mapper,
            routing,
            simulate: None,
        }
    }

    #[test]
    fn map_key_shares_bandwidth_points_for_constructive_mappers_only() {
        let a = scenario(MapperSpec::NmapInit, 800.0, RoutingSpec::MinPath);
        let b = scenario(MapperSpec::NmapInit, 1_600.0, RoutingSpec::MinPath);
        assert_eq!(map_key(&a), map_key(&b), "constructive mappers ignore capacity");

        let c = scenario(MapperSpec::Nmap(SinglePathOptions::default()), 800.0, RoutingSpec::Xy);
        let d = scenario(MapperSpec::Nmap(SinglePathOptions::default()), 1_600.0, RoutingSpec::Xy);
        assert_ne!(map_key(&c), map_key(&d), "search mappers read capacity");

        // The routing axis never reaches the map key.
        let e = scenario(MapperSpec::Nmap(SinglePathOptions::default()), 800.0, RoutingSpec::Xy);
        assert_eq!(map_key(&c), map_key(&e));
    }

    #[test]
    fn map_key_separates_every_other_axis() {
        let base = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let keys = [
            map_key(&base),
            map_key(&Scenario { seed: 8, ..base.clone() }),
            map_key(&Scenario { app: AppSpec::DspFilter, ..base.clone() }),
            map_key(&Scenario { topology: TopologySpec::FitTorus, ..base.clone() }),
            map_key(&Scenario { mapper: MapperSpec::Gmap, ..base.clone() }),
            map_key(&Scenario {
                app: AppSpec::Random(RandomGraphConfig::default()),
                ..base.clone()
            }),
            map_key(&Scenario {
                app: AppSpec::Random(RandomGraphConfig {
                    avg_degree: 3.0,
                    ..RandomGraphConfig::default()
                }),
                ..base.clone()
            }),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "keys {i} and {j} collide: {a}");
                }
            }
        }
        // The label is display-only: it never reaches the key.
        assert_eq!(map_key(&base), map_key(&Scenario { label: "other".into(), ..base }));
    }

    #[test]
    fn route_key_extends_map_key_with_capacity_routing_and_tables() {
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        assert!(route_key(&s, false).starts_with(&map_key(&s)));
        assert_ne!(route_key(&s, false), route_key(&s, true));
        let xy = Scenario { routing: RoutingSpec::Xy, ..s.clone() };
        assert_ne!(route_key(&s, false), route_key(&xy, false));
        // Capacity reaches the route key even for capacity-invariant
        // mappers — feasibility is judged against it.
        let tight = Scenario { capacity: mbps(100.0), ..s.clone() };
        assert_eq!(map_key(&s), map_key(&tight));
        assert_ne!(route_key(&s, false), route_key(&tight, false));
    }

    #[test]
    fn warm_lineage_key_drops_only_the_route_capacity() {
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::McfQuadrant);
        let tight = Scenario { capacity: mbps(250.0), ..s.clone() };
        assert_ne!(route_key(&s, false), route_key(&tight, false));
        assert_eq!(warm_lineage_key(&s, false), warm_lineage_key(&tight, false));
        // Everything else still separates lineages.
        let all = Scenario { routing: RoutingSpec::McfAllPaths, ..s.clone() };
        assert_ne!(warm_lineage_key(&s, false), warm_lineage_key(&all, false));
        assert_ne!(warm_lineage_key(&s, false), warm_lineage_key(&s, true));
        // Capacity-dependent mappers pin capacity inside the map key, so
        // their lineages never span bandwidth points (their placements —
        // hence commodity sets — may differ per point).
        let search = scenario(
            MapperSpec::Nmap(SinglePathOptions::default()),
            1_000.0,
            RoutingSpec::McfQuadrant,
        );
        let search_tight = Scenario { capacity: mbps(250.0), ..search.clone() };
        assert_ne!(warm_lineage_key(&search, false), warm_lineage_key(&search_tight, false));
    }

    #[test]
    fn mem_cap_evicts_least_recently_used() {
        assert_eq!(StageCache::in_memory().mem_cap(), None, "default is unbounded");
        // Each loads-only result estimates to 96 bytes, so a 200-byte
        // budget holds two entries.
        let cache = StageCache::in_memory().with_mem_cap(Some(200));
        let compute = || Ok((None, LinkLoads::zeros(4)));
        let (_, l) = cache.route_stage("a", compute);
        assert_eq!(l, Lookup::Miss);
        let (_, l) = cache.route_stage("b", compute);
        assert_eq!(l, Lookup::Miss);
        assert_eq!(cache.stats().evictions, 0);
        // Touch "a" so "b" is the LRU victim when "c" overflows the budget.
        let (_, l) = cache.route_stage("a", || panic!("resident"));
        assert_eq!(l, Lookup::Hit);
        let (_, l) = cache.route_stage("c", compute);
        assert_eq!(l, Lookup::Miss);
        assert_eq!(cache.stats().evictions, 1);
        let (_, l) = cache.route_stage("a", || panic!("still resident"));
        assert_eq!(l, Lookup::Hit);
        let (replayed, l) = cache.route_stage("b", compute);
        assert_eq!(l, Lookup::Miss, "evicted key recomputes");
        assert_eq!(replayed, Ok((None, LinkLoads::zeros(4))));
    }

    #[test]
    fn mem_cap_zero_retains_nothing_but_stays_deterministic() {
        let cache = StageCache::in_memory().with_mem_cap(Some(0));
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let key = map_key(&s);
        let mut results = Vec::new();
        for _ in 0..3 {
            let (r, l) = cache.map_stage(&key, &problem, || Ok((nmap::initialize(&problem), 0)));
            assert_eq!(l, Lookup::Miss, "cap 0 retains nothing");
            results.push(r);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "recomputes are deterministic");
        let stats = cache.stats();
        assert_eq!((stats.map_misses, stats.map_hits), (3, 0));
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn map_stage_computes_exactly_once_per_key() {
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let cache = StageCache::in_memory();
        let key = map_key(&s);
        let mut runs = 0;
        for _ in 0..3 {
            let (result, _) = cache.map_stage(&key, &problem, || {
                runs += 1;
                Ok((nmap::initialize(&problem), 0))
            });
            assert!(result.is_ok());
        }
        assert_eq!(runs, 1, "compute must run once per key");
        let stats = cache.stats();
        assert_eq!((stats.map_misses, stats.map_hits, stats.map_disk_hits), (1, 2, 0));
        assert_eq!(stats.map_lookups(), 3);

        // A different key computes again.
        let (_, lookup) =
            cache.map_stage("other", &problem, || Ok((nmap::initialize(&problem), 0)));
        assert_eq!(lookup, Lookup::Miss);
    }

    #[test]
    fn cached_errors_are_replayed() {
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let cache = StageCache::in_memory();
        let (first, _) = cache.map_stage("k", &problem, || Err("does not fit".into()));
        let (second, lookup) = cache.map_stage("k", &problem, || panic!("must not recompute"));
        assert_eq!(first, second);
        assert_eq!(first.unwrap_err(), "does not fit");
        assert_eq!(lookup, Lookup::Hit);
    }

    #[test]
    fn route_stage_memoizes_in_memory() {
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let mapping = nmap::initialize(&problem);
        let cache = StageCache::in_memory();
        let key = route_key(&s, false);
        let compute = || {
            let (paths, loads) =
                nmap::routing::route_min_paths(&problem, &mapping).map_err(|e| e.to_string())?;
            let _ = paths;
            Ok((None, loads))
        };
        let (a, l1) = cache.route_stage(&key, compute);
        let (b, l2) = cache.route_stage(&key, || panic!("memoized"));
        assert_eq!(a, b);
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Hit));
        let stats = cache.stats();
        assert_eq!((stats.route_misses, stats.route_hits), (1, 1));
    }

    /// Hand-rolled scratch dir (no tempfile dependency): unique per test
    /// via process id + a name, removed on drop.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("noc-dse-cache-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn disk_tier_round_trips_across_cache_instances() {
        let scratch = ScratchDir::new("roundtrip");
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let key = map_key(&s);
        let expected = nmap::initialize(&problem);

        let warm = StageCache::with_disk(&scratch.0).unwrap();
        let (first, lookup) = warm.map_stage(&key, &problem, || Ok((expected.clone(), 3)));
        assert_eq!(lookup, Lookup::Miss);
        assert_eq!(first, Ok((expected.clone(), 3)));
        // Error entries persist too.
        let (_, lookup) = warm.map_stage("bad", &problem, || Err("no fit".into()));
        assert_eq!(lookup, Lookup::Miss);
        drop(warm);

        // A fresh cache over the same dir restores without computing.
        let reopened = StageCache::with_disk(&scratch.0).unwrap();
        let (restored, lookup) =
            reopened.map_stage(&key, &problem, || panic!("must restore from disk"));
        assert_eq!(lookup, Lookup::DiskHit);
        assert_eq!(restored, Ok((expected, 3)));
        let (err, lookup) = reopened.map_stage("bad", &problem, || panic!("cached error"));
        assert_eq!(lookup, Lookup::DiskHit);
        assert_eq!(err.unwrap_err(), "no fit");
        let stats = reopened.stats();
        assert_eq!((stats.map_disk_hits, stats.map_misses), (2, 0));
    }

    #[test]
    fn disk_tier_rejects_stale_and_corrupt_entries() {
        let scratch = ScratchDir::new("stale");
        let s = scenario(MapperSpec::NmapInit, 1_000.0, RoutingSpec::MinPath);
        let problem = s.problem().unwrap();
        let key = map_key(&s);

        // Seed the file with a valid-JSON entry whose shape cannot match
        // the problem (wrong node count), a corrupt line, and a truncated
        // trailing line.
        fs::create_dir_all(&scratch.0).unwrap();
        let mut record = DiskRecord::of(&Ok((nmap::initialize(&problem), 0)));
        record.nodes += 1;
        let mut text = record.to_json(&key);
        text.push('\n');
        text.push_str("not json\n");
        text.push_str("{\"key\":\"trunc");
        fs::write(scratch.0.join("map-cache.jsonl"), text).unwrap();

        let cache = StageCache::with_disk(&scratch.0).unwrap();
        let (_, lookup) = cache.map_stage(&key, &problem, || Ok((nmap::initialize(&problem), 0)));
        assert_eq!(lookup, Lookup::Miss, "stale entry must recompute");

        // A duplicated-node entry is rejected by the placement check.
        let pairs: Vec<_> = (0..problem.cores().core_count()).map(|c| (c, 0)).collect();
        let bad = DiskRecord {
            error: String::new(),
            evaluations: 0,
            nodes: problem.topology().node_count(),
            pairs,
        };
        assert!(bad.restore(&problem).is_none());
    }
}
