//! The scenario space: `{application × topology × mapper × routing × seed}`
//! as first-class data, plus the builder that expands cross products into a
//! concrete, ordered [`ScenarioSet`].

use nmap::{MappingProblem, PathScope, SinglePathOptions};
use noc_apps::App;
use noc_baselines::PbbOptions;
use noc_graph::{CoreGraph, RandomGraphConfig, RandomGraphFamily, Topology, TopologyKind};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which application core graph a scenario maps.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One of the six bundled video applications (Section 7.1).
    Bundled(App),
    /// The six-core DSP filter of Section 7.2.
    DspFilter,
    /// A seeded random graph; the generator seed is the scenario's seed.
    Random(RandomGraphConfig),
}

impl AppSpec {
    /// Builds the core graph. `seed` drives [`AppSpec::Random`] generation
    /// and is ignored by the fixed applications.
    pub fn core_graph(&self, seed: u64) -> CoreGraph {
        match self {
            AppSpec::Bundled(app) => app.core_graph(),
            AppSpec::DspFilter => noc_apps::dsp_filter(),
            AppSpec::Random(config) => config.generate(seed),
        }
    }

    /// Short family name: `VOPD`, `DSP`, `rand25`, ...
    pub fn family(&self) -> String {
        match self {
            AppSpec::Bundled(app) => app.name().to_string(),
            AppSpec::DspFilter => "DSP".to_string(),
            AppSpec::Random(config) => format!("rand{}", config.cores),
        }
    }
}

/// Which NoC fabric a scenario maps onto. `Fit*` variants resolve to the
/// smallest square-ish grid holding the application when the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Smallest fitting mesh ([`Topology::fit_mesh_dims`]).
    FitMesh,
    /// Smallest fitting torus (same dimensions as [`TopologySpec::FitMesh`]).
    FitTorus,
    /// A fixed `width × height` mesh.
    Mesh {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// A fixed `width × height` torus.
    Torus {
        /// Torus width.
        width: usize,
        /// Torus height.
        height: usize,
    },
}

impl TopologySpec {
    /// Builds the topology for an application with `cores` cores and
    /// uniform link `capacity` (MB/s).
    pub fn build(&self, cores: usize, capacity: f64) -> Topology {
        match *self {
            TopologySpec::FitMesh => {
                let (w, h) = Topology::fit_mesh_dims(cores);
                Topology::mesh(w, h, capacity)
            }
            TopologySpec::FitTorus => {
                let (w, h) = Topology::fit_mesh_dims(cores);
                Topology::torus(w, h, capacity)
            }
            TopologySpec::Mesh { width, height } => Topology::mesh(width, height, capacity),
            TopologySpec::Torus { width, height } => Topology::torus(width, height, capacity),
        }
    }
}

/// Resolved display label of a built topology, e.g. `mesh4x4` / `torus3x3`.
pub fn topology_label(topology: &Topology) -> String {
    match topology.kind() {
        TopologyKind::Mesh { width, height } => format!("mesh{width}x{height}"),
        TopologyKind::Torus { width, height } => format!("torus{width}x{height}"),
        TopologyKind::Custom => format!("custom{}", topology.node_count()),
    }
}

/// Which mapping algorithm places the cores.
#[derive(Debug, Clone, PartialEq)]
pub enum MapperSpec {
    /// NMAP's greedy constructive placement only (`initialize()`), no
    /// improvement loop — the cheapest baseline in the family.
    NmapInit,
    /// NMAP single-minimum-path mapping (Section 5).
    Nmap(SinglePathOptions),
    /// NMAP with split-traffic routing (Section 6): MCF-driven placement.
    NmapSplit {
        /// Link scope: quadrant (NMAPTM) or all paths (NMAPTA).
        scope: PathScope,
        /// Pairwise-swap sweeps.
        passes: usize,
    },
    /// The PMAP two-phase baseline.
    Pmap,
    /// The GMAP greedy baseline.
    Gmap,
    /// Truncated branch-and-bound (PBB).
    Pbb(PbbOptions),
}

impl MapperSpec {
    /// Stable display name, aligned with the spec-format keywords: the
    /// bare keyword for the named configurations, the keyword plus a
    /// `[..]` parameter suffix otherwise. Every form parses back to an
    /// equal spec ([`crate::spec`] round-trip property, tested).
    pub fn name(&self) -> String {
        match self {
            MapperSpec::NmapInit => "nmap-init".to_string(),
            MapperSpec::Nmap(opts) if *opts == SinglePathOptions::paper_exact() => {
                "nmap-paper".to_string()
            }
            MapperSpec::Nmap(opts) if *opts == SinglePathOptions::default() => "nmap".to_string(),
            MapperSpec::Nmap(opts) => format!("nmap[p{}r{}]", opts.passes, opts.restarts),
            MapperSpec::NmapSplit { scope, passes } => {
                let base = match scope {
                    PathScope::Quadrant => "nmap-split-quadrant",
                    PathScope::AllPaths => "nmap-split-all",
                };
                if *passes == 1 {
                    base.to_string()
                } else {
                    format!("{base}[p{passes}]")
                }
            }
            MapperSpec::Pmap => "pmap".to_string(),
            MapperSpec::Gmap => "gmap".to_string(),
            MapperSpec::Pbb(opts) if *opts == PbbOptions::default() => "pbb".to_string(),
            MapperSpec::Pbb(opts) => format!("pbb[q{}e{}]", opts.max_queue, opts.max_expansions),
        }
    }
}

/// How the placed traffic is routed and checked against link capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingSpec {
    /// Load-balanced single minimum paths (the paper's `shortestpath()`).
    MinPath,
    /// Deterministic dimension-ordered XY routing.
    Xy,
    /// Split traffic over quadrant paths via the MCF LP (NMAPTM regime).
    McfQuadrant,
    /// Split traffic over all paths via the MCF LP (NMAPTA regime).
    McfAllPaths,
}

impl RoutingSpec {
    /// Stable display name, aligned with the spec-format keywords.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingSpec::MinPath => "min-path",
            RoutingSpec::Xy => "xy",
            RoutingSpec::McfQuadrant => "mcf-quadrant",
            RoutingSpec::McfAllPaths => "mcf-all",
        }
    }
}

/// One fully specified experiment: build the app, build the fabric, run
/// the mapper, route the traffic, measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Application label shown in reports (e.g. `VOPD`, `rand25#2`).
    pub label: String,
    /// The application.
    pub app: AppSpec,
    /// Per-scenario seed: drives random graph generation; recorded always.
    pub seed: u64,
    /// The fabric.
    pub topology: TopologySpec,
    /// Uniform link capacity in MB/s.
    pub capacity: f64,
    /// The mapping algorithm.
    pub mapper: MapperSpec,
    /// The routing regime evaluating the placement.
    pub routing: RoutingSpec,
}

impl Scenario {
    /// Materializes the application graph and the fabric it targets —
    /// the parts of [`Scenario::problem`], available even when the pair
    /// fails validation (the engine reports core/fabric labels for
    /// failed scenarios too).
    pub fn parts(&self) -> (CoreGraph, Topology) {
        let graph = self.app.core_graph(self.seed);
        let topology = self.topology.build(graph.core_count(), self.capacity);
        (graph, topology)
    }

    /// Materializes the mapping problem (graph + topology).
    ///
    /// # Errors
    ///
    /// [`nmap::MapError`] when the application does not fit the fabric.
    pub fn problem(&self) -> nmap::Result<MappingProblem> {
        let (graph, topology) = self.parts();
        MappingProblem::new(graph, topology)
    }
}

/// An ordered list of scenarios. The order is the report order and the
/// deterministic-merge order of the parallel engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Starts a builder.
    pub fn builder() -> ScenarioSetBuilder {
        ScenarioSetBuilder::default()
    }

    /// The scenarios, in sweep order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// One application entry of the builder: the spec plus an optional pinned
/// seed (entries without one get a ChaCha-derived seed at build time).
#[derive(Debug, Clone, PartialEq)]
struct AppEntry {
    label: String,
    spec: AppSpec,
    pinned_seed: Option<u64>,
}

/// Builder assembling the cross product
/// `apps × topologies × mappers × routings` into a [`ScenarioSet`].
///
/// Axis defaults when left empty: topology [`TopologySpec::FitMesh`],
/// mapper `nmap` with [`SinglePathOptions::default`], routing
/// [`RoutingSpec::MinPath`]. Per-scenario seeds are derived from
/// [`ScenarioSetBuilder::root_seed`] through a `ChaCha` stream in app
/// order at build time — never from engine worker identity — so a sweep's
/// scenario list is a pure function of the builder calls.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSetBuilder {
    capacity: f64,
    root_seed: u64,
    apps: Vec<AppEntry>,
    topologies: Vec<TopologySpec>,
    mappers: Vec<MapperSpec>,
    routings: Vec<RoutingSpec>,
}

impl Default for ScenarioSetBuilder {
    fn default() -> Self {
        Self {
            capacity: 1_000.0,
            root_seed: 0,
            apps: Vec::new(),
            topologies: Vec::new(),
            mappers: Vec::new(),
            routings: Vec::new(),
        }
    }
}

impl ScenarioSetBuilder {
    /// Sets the uniform link capacity (MB/s) of every scenario.
    pub fn capacity(mut self, capacity: f64) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Sets the root seed from which unpinned per-scenario seeds derive.
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Adds one bundled application.
    pub fn app(mut self, app: App) -> Self {
        self.apps.push(AppEntry {
            label: app.name().to_string(),
            spec: AppSpec::Bundled(app),
            pinned_seed: None,
        });
        self
    }

    /// Adds all six bundled video applications, in paper order.
    pub fn all_apps(mut self) -> Self {
        for app in App::all() {
            self = self.app(app);
        }
        self
    }

    /// Adds the DSP filter application.
    pub fn dsp(mut self) -> Self {
        self.apps.push(AppEntry {
            label: "DSP".to_string(),
            spec: AppSpec::DspFilter,
            pinned_seed: None,
        });
        self
    }

    /// Adds `instances` random graphs from `config`, with seeds derived
    /// from the root seed at build time.
    pub fn random(mut self, config: RandomGraphConfig, instances: u64) -> Self {
        for i in 0..instances {
            self.apps.push(AppEntry {
                label: format!("rand{}#{i}", config.cores),
                spec: AppSpec::Random(config.clone()),
                pinned_seed: None,
            });
        }
        self
    }

    /// Adds a [`RandomGraphFamily`]-compatible sweep: for every size in
    /// `sizes`, `instances` graphs whose seeds are pinned to
    /// [`RandomGraphFamily::instance_seed`] — the exact graphs the Table 2
    /// harness generates.
    pub fn random_family(
        mut self,
        base: &RandomGraphConfig,
        sizes: &[usize],
        instances: u64,
    ) -> Self {
        for &cores in sizes {
            for instance in 0..instances {
                self.apps.push(AppEntry {
                    label: format!("rand{cores}#{instance}"),
                    spec: AppSpec::Random(RandomGraphConfig { cores, ..base.clone() }),
                    pinned_seed: Some(RandomGraphFamily::instance_seed(cores, instance)),
                });
            }
        }
        self
    }

    /// Adds one topology to the sweep axis.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topologies.push(topology);
        self
    }

    /// Adds one mapper to the sweep axis.
    pub fn mapper(mut self, mapper: MapperSpec) -> Self {
        self.mappers.push(mapper);
        self
    }

    /// Adds one routing regime to the sweep axis.
    pub fn routing(mut self, routing: RoutingSpec) -> Self {
        self.routings.push(routing);
        self
    }

    /// Expands the cross product into an ordered [`ScenarioSet`].
    ///
    /// Scenario order is `apps` (insertion order) × `topologies` ×
    /// `mappers` × `routings`. Every scenario of one app entry shares that
    /// entry's seed, so mappers and routings are compared on identical
    /// graph instances.
    pub fn build(self) -> ScenarioSet {
        let topologies =
            if self.topologies.is_empty() { vec![TopologySpec::FitMesh] } else { self.topologies };
        let mappers = if self.mappers.is_empty() {
            vec![MapperSpec::Nmap(SinglePathOptions::default())]
        } else {
            self.mappers
        };
        let routings =
            if self.routings.is_empty() { vec![RoutingSpec::MinPath] } else { self.routings };

        // Seeds are a pure function of (root_seed, app order): one ChaCha
        // draw per unpinned entry, in entry order.
        let mut rng = ChaCha8Rng::seed_from_u64(self.root_seed);
        let mut scenarios = Vec::new();
        for entry in &self.apps {
            let seed = match entry.pinned_seed {
                Some(s) => s,
                None => rng.next_u64(),
            };
            for topology in &topologies {
                for mapper in &mappers {
                    for routing in &routings {
                        scenarios.push(Scenario {
                            label: entry.label.clone(),
                            app: entry.spec.clone(),
                            seed,
                            topology: *topology,
                            capacity: self.capacity,
                            mapper: mapper.clone(),
                            routing: *routing,
                        });
                    }
                }
            }
        }
        ScenarioSet { scenarios }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_order_is_apps_topos_mappers_routings() {
        let set = ScenarioSet::builder()
            .app(App::Pip)
            .app(App::Vopd)
            .topology(TopologySpec::FitMesh)
            .topology(TopologySpec::FitTorus)
            .mapper(MapperSpec::Pmap)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .build();
        assert_eq!(set.len(), 8); // 2 apps x 2 topologies x 1 mapper x 2 routings
        let labels: Vec<_> =
            set.scenarios().iter().map(|s| (s.label.as_str(), s.topology, s.routing)).collect();
        assert_eq!(labels[0], ("PIP", TopologySpec::FitMesh, RoutingSpec::MinPath));
        assert_eq!(labels[1], ("PIP", TopologySpec::FitMesh, RoutingSpec::Xy));
        assert_eq!(labels[2], ("PIP", TopologySpec::FitTorus, RoutingSpec::MinPath));
        assert_eq!(labels[4], ("VOPD", TopologySpec::FitMesh, RoutingSpec::MinPath));
    }

    #[test]
    fn axis_defaults_fill_in() {
        let set = ScenarioSet::builder().app(App::Pip).build();
        assert_eq!(set.len(), 1);
        let s = &set.scenarios()[0];
        assert_eq!(s.topology, TopologySpec::FitMesh);
        assert_eq!(s.mapper, MapperSpec::Nmap(SinglePathOptions::default()));
        assert_eq!(s.routing, RoutingSpec::MinPath);
        assert_eq!(s.capacity, 1_000.0);
    }

    #[test]
    fn derived_seeds_are_stable_and_shared_across_axes() {
        let build = || {
            ScenarioSet::builder()
                .root_seed(7)
                .random(RandomGraphConfig::default(), 2)
                .mapper(MapperSpec::Pmap)
                .mapper(MapperSpec::Gmap)
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same builder calls must give the same set");
        let s = a.scenarios();
        assert_eq!(s.len(), 4);
        // Both mappers of one instance share the seed; instances differ.
        assert_eq!(s[0].seed, s[1].seed);
        assert_eq!(s[2].seed, s[3].seed);
        assert_ne!(s[0].seed, s[2].seed);
        // A different root seed moves every derived seed.
        let c = ScenarioSet::builder()
            .root_seed(8)
            .random(RandomGraphConfig::default(), 2)
            .mapper(MapperSpec::Pmap)
            .mapper(MapperSpec::Gmap)
            .build();
        assert_ne!(c.scenarios()[0].seed, s[0].seed);
    }

    #[test]
    fn family_seeds_match_random_graph_family() {
        let base = RandomGraphConfig::default();
        let set = ScenarioSet::builder().random_family(&base, &[25, 35], 2).build();
        assert_eq!(set.len(), 4);
        let family = RandomGraphFamily::new(base);
        let s = &set.scenarios()[3]; // cores 35, instance 1
        assert_eq!(s.label, "rand35#1");
        assert_eq!(s.app.core_graph(s.seed), family.graph(35, 1));
    }

    #[test]
    fn scenario_problem_respects_fit_and_fixed_topologies() {
        let fit = Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 0,
            topology: TopologySpec::FitMesh,
            capacity: 500.0,
            mapper: MapperSpec::Pmap,
            routing: RoutingSpec::MinPath,
        };
        let p = fit.problem().unwrap();
        assert_eq!(p.topology().node_count(), 16);
        assert_eq!(topology_label(p.topology()), "mesh4x4");

        let tight = Scenario { topology: TopologySpec::Mesh { width: 2, height: 2 }, ..fit };
        assert!(tight.problem().is_err(), "16 cores cannot fit 4 nodes");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MapperSpec::Nmap(SinglePathOptions::default()).name(), "nmap");
        assert_eq!(MapperSpec::Nmap(SinglePathOptions::paper_exact()).name(), "nmap-paper");
        assert_eq!(
            MapperSpec::Nmap(SinglePathOptions { passes: 4, restarts: 2 }).name(),
            "nmap[p4r2]"
        );
        assert_eq!(MapperSpec::NmapInit.name(), "nmap-init");
        assert_eq!(
            MapperSpec::NmapSplit { scope: PathScope::Quadrant, passes: 1 }.name(),
            "nmap-split-quadrant"
        );
        assert_eq!(MapperSpec::Pbb(PbbOptions::default()).name(), "pbb");
        assert_eq!(RoutingSpec::McfAllPaths.name(), "mcf-all");
        assert_eq!(AppSpec::Random(RandomGraphConfig::default()).family(), "rand25");
    }
}
