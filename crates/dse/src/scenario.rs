//! The scenario space: `{application × topology × mapper × routing × seed}`
//! as first-class data, plus the builder that expands cross products into a
//! concrete, ordered [`ScenarioSet`].

use nmap::search::{
    BoxedMapper, InitMapper, SaMapper, SaOptions, SinglePathMapper, SplitMapper, TabuMapper,
    TabuOptions,
};
use nmap::{MappingProblem, PathScope, SinglePathOptions, SplitOptions};
use noc_apps::App;
use noc_baselines::{GmapMapper, PbbMapper, PbbOptions, PmapMapper};
use noc_graph::{
    dims_label, CoreGraph, Grid, RandomGraphConfig, RandomGraphFamily, Topology, TopologyKind,
};
use noc_sim::{LoopKind, SimConfig};
use noc_units::Mbps;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which application core graph a scenario maps.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One of the six bundled video applications (Section 7.1).
    Bundled(App),
    /// The six-core DSP filter of Section 7.2.
    DspFilter,
    /// A seeded random graph; the generator seed is the scenario's seed.
    Random(RandomGraphConfig),
}

impl AppSpec {
    /// Builds the core graph. `seed` drives [`AppSpec::Random`] generation
    /// and is ignored by the fixed applications.
    pub fn core_graph(&self, seed: u64) -> CoreGraph {
        match self {
            AppSpec::Bundled(app) => app.core_graph(),
            AppSpec::DspFilter => noc_apps::dsp_filter(),
            AppSpec::Random(config) => config.generate(seed),
        }
    }

    /// Short family name: `VOPD`, `DSP`, `rand25`, ...
    pub fn family(&self) -> String {
        match self {
            AppSpec::Bundled(app) => app.name().to_string(),
            AppSpec::DspFilter => "DSP".to_string(),
            AppSpec::Random(config) => format!("rand{}", config.cores),
        }
    }
}

/// Which NoC fabric a scenario maps onto. `Fit*` variants resolve to the
/// smallest square-ish (cube-ish for the 3-D variants) grid holding the
/// application when the scenario runs. Fixed grids carry their per-axis
/// extents, so `dims: vec![4, 4]` is the paper's 2-D mesh and
/// `vec![4, 4, 2]` a 3-D one — the topology-dimension axis of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// Smallest fitting 2-D mesh ([`Topology::fit_mesh_dims`]).
    FitMesh,
    /// Smallest fitting 2-D torus (same dimensions as
    /// [`TopologySpec::FitMesh`]).
    FitTorus,
    /// Smallest fitting 3-D mesh ([`Grid::fit_dims`] at rank 3).
    FitMesh3d,
    /// Smallest fitting 3-D torus (same dimensions as
    /// [`TopologySpec::FitMesh3d`]).
    FitTorus3d,
    /// A fixed mesh with the given per-axis extents (rank ≥ 2).
    Mesh {
        /// Per-axis extents, axis 0 (width) first.
        dims: Vec<usize>,
    },
    /// A fixed torus with the given per-axis extents (rank ≥ 2).
    Torus {
        /// Per-axis extents, axis 0 (width) first.
        dims: Vec<usize>,
    },
}

impl TopologySpec {
    /// Builds the topology for an application with `cores` cores and
    /// uniform link `capacity` (MB/s).
    ///
    /// # Panics
    ///
    /// Panics on invalid dimensions or capacities (the spec parser and the
    /// builder validate both up front; hand-built specs inherit the
    /// constructor panics, as the 2-D-only spec did).
    pub fn build(&self, cores: usize, capacity: Mbps) -> Topology {
        let capacity = capacity.to_f64();
        let built = match self {
            TopologySpec::FitMesh => {
                let (w, h) = Topology::fit_mesh_dims(cores);
                Topology::mesh_nd(&[w, h], capacity)
            }
            TopologySpec::FitTorus => {
                let (w, h) = Topology::fit_mesh_dims(cores);
                Topology::torus_nd(&[w, h], capacity)
            }
            TopologySpec::FitMesh3d => Topology::mesh_nd(&Grid::fit_dims(cores, 3), capacity),
            TopologySpec::FitTorus3d => Topology::torus_nd(&Grid::fit_dims(cores, 3), capacity),
            TopologySpec::Mesh { dims } => Topology::mesh_nd(dims, capacity),
            TopologySpec::Torus { dims } => Topology::torus_nd(dims, capacity),
        };
        built.unwrap_or_else(|e| panic!("invalid topology spec: {e}"))
    }

    /// Stable display name, aligned with the spec-format keywords:
    /// `fit`, `fit-torus`, `fit3d`, `fit3d-torus`, `mesh 4x4x2`, ...
    pub fn name(&self) -> String {
        match self {
            TopologySpec::FitMesh => "fit".to_string(),
            TopologySpec::FitTorus => "fit-torus".to_string(),
            TopologySpec::FitMesh3d => "fit3d".to_string(),
            TopologySpec::FitTorus3d => "fit3d-torus".to_string(),
            TopologySpec::Mesh { dims } => format!("mesh {}", dims_label(dims)),
            TopologySpec::Torus { dims } => format!("torus {}", dims_label(dims)),
        }
    }
}

/// Resolved display label of a built topology, e.g. `mesh4x4` /
/// `torus3x3` / `mesh4x4x2`.
pub fn topology_label(topology: &Topology) -> String {
    match topology.kind() {
        TopologyKind::Grid(grid) => format!("{}{}", grid.kind_keyword(), grid.dims_label()),
        TopologyKind::Custom => format!("custom{}", topology.node_count()),
    }
}

/// Which mapping algorithm places the cores.
///
/// Every variant resolves to a [`nmap::search::Mapper`] via
/// [`MapperSpec::mapper`]; the engine and the display name both dispatch
/// through that trait object, so adding a mapper means adding a variant
/// here plus a registry entry — no display/dispatch `match` to keep in
/// sync (the registry round-trip test pins this).
#[derive(Debug, Clone, PartialEq)]
pub enum MapperSpec {
    /// NMAP's greedy constructive placement only (`initialize()`), no
    /// improvement loop — the cheapest baseline in the family.
    NmapInit,
    /// NMAP single-minimum-path mapping (Section 5).
    Nmap(SinglePathOptions),
    /// NMAP with split-traffic routing (Section 6): MCF-driven placement.
    NmapSplit {
        /// Link scope: quadrant (NMAPTM) or all paths (NMAPTA).
        scope: PathScope,
        /// Pairwise-swap sweeps.
        passes: usize,
    },
    /// The PMAP two-phase baseline.
    Pmap,
    /// The GMAP greedy baseline.
    Gmap,
    /// Truncated branch-and-bound (PBB).
    Pbb(PbbOptions),
    /// Seeded simulated annealing on the swap-delta kernel; the random
    /// stream derives from the scenario seed.
    Sa(SaOptions),
    /// Deterministic tabu-tenure pairwise search on the swap-delta kernel.
    Tabu(TabuOptions),
}

impl MapperSpec {
    /// Materializes the [`nmap::search::Mapper`] this spec describes. `seed` feeds the
    /// stochastic mappers (the engine passes the scenario seed, keeping
    /// sweep records a pure function of the scenario); deterministic
    /// mappers ignore it.
    pub fn mapper(&self, seed: u64) -> BoxedMapper {
        match self {
            MapperSpec::NmapInit => Box::new(InitMapper),
            MapperSpec::Nmap(opts) => Box::new(SinglePathMapper::new(opts.clone())),
            MapperSpec::NmapSplit { scope, passes } => {
                Box::new(SplitMapper::new(SplitOptions { scope: *scope, passes: *passes }))
            }
            MapperSpec::Pmap => Box::new(PmapMapper),
            MapperSpec::Gmap => Box::new(GmapMapper),
            MapperSpec::Pbb(opts) => Box::new(PbbMapper::new(*opts)),
            MapperSpec::Sa(opts) => Box::new(SaMapper::new(opts.clone(), seed)),
            MapperSpec::Tabu(opts) => Box::new(TabuMapper::new(opts.clone())),
        }
    }

    /// Stable display name, aligned with the spec-format keywords: the
    /// bare keyword for the named configurations, the keyword plus a
    /// `[..]` parameter suffix otherwise. Delegates to
    /// [`nmap::search::Mapper::name`], so spec strings cannot drift from
    /// the mapper implementations. Every form parses back to an equal spec
    /// ([`crate::spec`] round-trip property, tested).
    pub fn name(&self) -> String {
        // The seed never appears in the name, so 0 is as good as any.
        self.mapper(0).name()
    }

    /// True when the mapper's `place()` never reads link capacities, so
    /// its placement is identical at every bandwidth point: the purely
    /// constructive algorithms (`nmap-init`'s `initialize()`, PMAP,
    /// GMAP) order cores by communication demand alone. The search
    /// mappers all score candidates with a capacity-dependent
    /// feasibility term (NMAP's routed bandwidth checks, PBB's pruning,
    /// sa/tabu's evaluation) and must be treated as capacity-sensitive.
    ///
    /// The stage cache keys on this ([`crate::cache::map_key`]): a
    /// capacity-invariant mapper's map stage is shared across an entire
    /// bandwidth sweep.
    pub fn capacity_invariant(&self) -> bool {
        matches!(self, MapperSpec::NmapInit | MapperSpec::Pmap | MapperSpec::Gmap)
    }
}

/// Configuration of the optional wormhole-simulation stage (the paper's
/// Section 7.2 validation flow): after map → route, the scenario's routing
/// tables are loaded into [`noc_sim::Simulator`] as source routes and the
/// bursty traffic generators replay the core graph's average rates at the
/// scenario's link capacity.
///
/// At the [`ScenarioSetBuilder`] level, `bandwidths_mbps` lists the
/// link-bandwidth sweep points (Figure 5(c)'s x-axis): each point expands
/// into its own scenario whose `capacity` *is* the bandwidth. An empty
/// list simulates at the builder's uniform capacity. Expanded
/// [`Scenario`]s always carry an empty list — the point has been resolved
/// into `Scenario::capacity`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// Link-bandwidth sweep points; empty → the builder capacity.
    pub bandwidths_mbps: Vec<Mbps>,
    /// Warm-up cycles excluded from statistics.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up (must be non-zero).
    pub measure_cycles: u64,
    /// Drain window after measurement.
    pub drain_cycles: u64,
    /// Mean burst length of the on/off sources, in packets.
    pub burst_packets: u32,
    /// Peak-to-mean ratio of the on/off sources.
    // lint: allow(f64-api) — dimensionless peak-to-mean ratio.
    pub burst_intensity: f64,
    /// Simulation seed component; the per-scenario traffic seed mixes this
    /// with the scenario seed (see [`SimulateSpec::sim_seed`]).
    pub seed: u64,
    /// Which simulator main loop the engine runs. All loop kinds produce
    /// bit-identical reports (pinned by the sim crate's identity suites);
    /// selecting the cycle-stepped oracle here lets sweeps cross-check the
    /// default event-queue loop end to end.
    pub loop_kind: LoopKind,
}

impl Default for SimulateSpec {
    /// Windows and burstiness follow [`SimConfig::default`] (the paper's
    /// DSP design parameters); `seed` 0.
    fn default() -> Self {
        let sim = SimConfig::default();
        Self {
            bandwidths_mbps: Vec::new(),
            warmup_cycles: sim.warmup_cycles,
            measure_cycles: sim.measure_cycles,
            drain_cycles: sim.drain_cycles,
            burst_packets: sim.burst_packets,
            burst_intensity: sim.burst_intensity,
            seed: 0,
            loop_kind: LoopKind::default(),
        }
    }
}

/// SplitMix64 finalizer — decorrelates the combined (spec, scenario) seed
/// so neighbouring scenario seeds drive unrelated traffic processes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimulateSpec {
    /// Checks the spec, returning the first violation as a message: the
    /// bandwidth points must be positive and the materialized
    /// [`SimConfig`] must pass [`SimConfig::check`] (the single source of
    /// truth for window/burst constraints — no duplicated predicates to
    /// drift). The builder and spec parser reject invalid specs up front;
    /// the engine calls this too so a hand-built [`Scenario`] (all fields
    /// are public) becomes an error *record* rather than a panic inside a
    /// pool worker.
    pub fn validate(&self) -> Result<(), String> {
        for &bw in &self.bandwidths_mbps {
            if bw.is_zero() {
                return Err(format!("bandwidth points must be positive, got {bw}"));
            }
        }
        self.sim_config(0).check()
    }

    /// The traffic seed used for a scenario: a pure function of this
    /// spec's `seed` and the scenario's seed, so sim results depend only
    /// on the scenario — never on engine worker identity.
    pub fn sim_seed(&self, scenario_seed: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(scenario_seed))
    }

    /// Materializes the [`SimConfig`] for a scenario. Flit/packet/buffer
    /// and router-pipeline parameters follow [`SimConfig::default`] (the
    /// paper's Table 3 DSP design).
    pub fn sim_config(&self, scenario_seed: u64) -> SimConfig {
        SimConfig {
            warmup_cycles: self.warmup_cycles,
            measure_cycles: self.measure_cycles,
            drain_cycles: self.drain_cycles,
            burst_packets: self.burst_packets,
            burst_intensity: self.burst_intensity,
            seed: self.sim_seed(scenario_seed),
            ..SimConfig::default()
        }
    }
}

/// How the placed traffic is routed and checked against link capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingSpec {
    /// Load-balanced single minimum paths (the paper's `shortestpath()`).
    MinPath,
    /// Deterministic dimension-ordered XY routing.
    Xy,
    /// Split traffic over quadrant paths via the MCF LP (NMAPTM regime).
    McfQuadrant,
    /// Split traffic over all paths via the MCF LP (NMAPTA regime).
    McfAllPaths,
}

impl RoutingSpec {
    /// Stable display name, aligned with the spec-format keywords.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingSpec::MinPath => "min-path",
            RoutingSpec::Xy => "xy",
            RoutingSpec::McfQuadrant => "mcf-quadrant",
            RoutingSpec::McfAllPaths => "mcf-all",
        }
    }
}

/// One fully specified experiment: build the app, build the fabric, run
/// the mapper, route the traffic, measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Application label shown in reports (e.g. `VOPD`, `rand25#2`).
    pub label: String,
    /// The application.
    pub app: AppSpec,
    /// Per-scenario seed: drives random graph generation; recorded always.
    pub seed: u64,
    /// The fabric.
    pub topology: TopologySpec,
    /// Uniform link capacity.
    pub capacity: Mbps,
    /// The mapping algorithm.
    pub mapper: MapperSpec,
    /// The routing regime evaluating the placement.
    pub routing: RoutingSpec,
    /// Optional wormhole-simulation stage run after map → route. The
    /// simulator uses the scenario's `capacity` as the link bandwidth;
    /// `bandwidths_mbps` is empty here (resolved at set-build time).
    pub simulate: Option<SimulateSpec>,
}

impl Scenario {
    /// Materializes the application graph and the fabric it targets —
    /// the parts of [`Scenario::problem`], available even when the pair
    /// fails validation (the engine reports core/fabric labels for
    /// failed scenarios too).
    pub fn parts(&self) -> (CoreGraph, Topology) {
        let graph = self.app.core_graph(self.seed);
        let topology = self.topology.build(graph.core_count(), self.capacity);
        (graph, topology)
    }

    /// Materializes the mapping problem (graph + topology).
    ///
    /// # Errors
    ///
    /// [`nmap::MapError`] when the application does not fit the fabric.
    pub fn problem(&self) -> nmap::Result<MappingProblem> {
        let (graph, topology) = self.parts();
        MappingProblem::new(graph, topology)
    }
}

/// An ordered list of scenarios. The order is the report order and the
/// deterministic-merge order of the parallel engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Starts a builder.
    pub fn builder() -> ScenarioSetBuilder {
        ScenarioSetBuilder::default()
    }

    /// Wraps an explicit scenario list — the seam for hand-built sweeps
    /// (axes the builder cannot express, e.g. a routing-only capacity
    /// sweep) and test harnesses. The list order is the sweep order.
    pub fn from_scenarios(scenarios: Vec<Scenario>) -> Self {
        Self { scenarios }
    }

    /// The scenarios, in sweep order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// One application entry of the builder: the spec plus an optional pinned
/// seed (entries without one get a ChaCha-derived seed at build time).
#[derive(Debug, Clone, PartialEq)]
struct AppEntry {
    label: String,
    spec: AppSpec,
    pinned_seed: Option<u64>,
}

/// Builder assembling the cross product
/// `apps × topologies × mappers × routings` into a [`ScenarioSet`].
///
/// Axis defaults when left empty: topology [`TopologySpec::FitMesh`],
/// mapper `nmap` with [`SinglePathOptions::default`], routing
/// [`RoutingSpec::MinPath`]. Per-scenario seeds are derived from
/// [`ScenarioSetBuilder::root_seed`] through a `ChaCha` stream in app
/// order at build time — never from engine worker identity — so a sweep's
/// scenario list is a pure function of the builder calls.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSetBuilder {
    capacity: Mbps,
    root_seed: u64,
    apps: Vec<AppEntry>,
    topologies: Vec<TopologySpec>,
    mappers: Vec<MapperSpec>,
    routings: Vec<RoutingSpec>,
    simulate: Option<SimulateSpec>,
}

impl Default for ScenarioSetBuilder {
    fn default() -> Self {
        Self {
            capacity: Mbps::raw(1_000.0),
            root_seed: 0,
            apps: Vec::new(),
            topologies: Vec::new(),
            mappers: Vec::new(),
            routings: Vec::new(),
            simulate: None,
        }
    }
}

impl ScenarioSetBuilder {
    /// Sets the uniform link capacity (MB/s) of every scenario.
    // lint: allow(f64-api) — checked boundary intake: validated via
    // `Mbps::positive` below.
    pub fn capacity(mut self, capacity: f64) -> Self {
        self.capacity = Mbps::positive(capacity).expect("capacity must be positive");
        self
    }

    /// Sets the root seed from which unpinned per-scenario seeds derive.
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Adds one bundled application.
    pub fn app(mut self, app: App) -> Self {
        self.apps.push(AppEntry {
            label: app.name().to_string(),
            spec: AppSpec::Bundled(app),
            pinned_seed: None,
        });
        self
    }

    /// Adds all six bundled video applications, in paper order.
    pub fn all_apps(mut self) -> Self {
        for app in App::all() {
            self = self.app(app);
        }
        self
    }

    /// Adds the DSP filter application.
    pub fn dsp(mut self) -> Self {
        self.apps.push(AppEntry {
            label: "DSP".to_string(),
            spec: AppSpec::DspFilter,
            pinned_seed: None,
        });
        self
    }

    /// Adds `instances` random graphs from `config`, with seeds derived
    /// from the root seed at build time.
    pub fn random(mut self, config: RandomGraphConfig, instances: u64) -> Self {
        for i in 0..instances {
            self.apps.push(AppEntry {
                label: format!("rand{}#{i}", config.cores),
                spec: AppSpec::Random(config.clone()),
                pinned_seed: None,
            });
        }
        self
    }

    /// Adds a [`RandomGraphFamily`]-compatible sweep: for every size in
    /// `sizes`, `instances` graphs whose seeds are pinned to
    /// [`RandomGraphFamily::instance_seed`] — the exact graphs the Table 2
    /// harness generates.
    pub fn random_family(
        mut self,
        base: &RandomGraphConfig,
        sizes: &[usize],
        instances: u64,
    ) -> Self {
        for &cores in sizes {
            for instance in 0..instances {
                self.apps.push(AppEntry {
                    label: format!("rand{cores}#{instance}"),
                    spec: AppSpec::Random(RandomGraphConfig { cores, ..base.clone() }),
                    pinned_seed: Some(RandomGraphFamily::instance_seed(cores, instance)),
                });
            }
        }
        self
    }

    /// Adds one topology to the sweep axis.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topologies.push(topology);
        self
    }

    /// Adds one mapper to the sweep axis.
    pub fn mapper(mut self, mapper: MapperSpec) -> Self {
        self.mappers.push(mapper);
        self
    }

    /// Adds one routing regime to the sweep axis.
    pub fn routing(mut self, routing: RoutingSpec) -> Self {
        self.routings.push(routing);
        self
    }

    /// Enables the wormhole-simulation stage for every scenario. When
    /// `spec.bandwidths_mbps` is non-empty, each bandwidth point becomes
    /// its own scenario (the innermost sweep axis) whose link capacity is
    /// that bandwidth; otherwise scenarios simulate at the builder's
    /// uniform capacity.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth point is non-positive/non-finite, the
    /// measurement window is empty, or the burst parameters are invalid
    /// (packets 0 or intensity < 1) — the [`SimulateSpec::validate`]
    /// constraints, checked here so a bad spec fails fast at the builder.
    pub fn simulate(mut self, spec: SimulateSpec) -> Self {
        if let Err(message) = spec.validate() {
            panic!("simulate: {message}");
        }
        self.simulate = Some(spec);
        self
    }

    /// Expands the cross product into an ordered [`ScenarioSet`].
    ///
    /// Scenario order is `apps` (insertion order) × `topologies` ×
    /// `mappers` × `routings` (× simulate bandwidth points, innermost).
    /// Every scenario of one app entry shares that entry's seed, so
    /// mappers and routings are compared on identical graph instances.
    pub fn build(self) -> ScenarioSet {
        let topologies =
            if self.topologies.is_empty() { vec![TopologySpec::FitMesh] } else { self.topologies };
        let mappers = if self.mappers.is_empty() {
            vec![MapperSpec::Nmap(SinglePathOptions::default())]
        } else {
            self.mappers
        };
        let routings =
            if self.routings.is_empty() { vec![RoutingSpec::MinPath] } else { self.routings };

        // The simulate stage expands into (capacity, per-scenario spec)
        // points: one per bandwidth, or the builder capacity when no sweep
        // points are named. Expanded specs carry an empty bandwidth list —
        // the point is resolved into the scenario's capacity.
        let sim_points: Vec<(Mbps, Option<SimulateSpec>)> = match &self.simulate {
            None => vec![(self.capacity, None)],
            Some(spec) => {
                let resolved = SimulateSpec { bandwidths_mbps: Vec::new(), ..spec.clone() };
                if spec.bandwidths_mbps.is_empty() {
                    vec![(self.capacity, Some(resolved))]
                } else {
                    spec.bandwidths_mbps.iter().map(|&bw| (bw, Some(resolved.clone()))).collect()
                }
            }
        };

        // Seeds are a pure function of (root_seed, app order): one ChaCha
        // draw per unpinned entry, in entry order.
        let mut rng = ChaCha8Rng::seed_from_u64(self.root_seed);
        let mut scenarios = Vec::new();
        for entry in &self.apps {
            let seed = match entry.pinned_seed {
                Some(s) => s,
                None => rng.next_u64(),
            };
            for topology in &topologies {
                for mapper in &mappers {
                    for routing in &routings {
                        for (capacity, simulate) in &sim_points {
                            scenarios.push(Scenario {
                                label: entry.label.clone(),
                                app: entry.spec.clone(),
                                seed,
                                topology: topology.clone(),
                                capacity: *capacity,
                                mapper: mapper.clone(),
                                routing: *routing,
                                simulate: simulate.clone(),
                            });
                        }
                    }
                }
            }
        }
        ScenarioSet { scenarios }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_units::mbps;

    #[test]
    fn cross_product_order_is_apps_topos_mappers_routings() {
        let set = ScenarioSet::builder()
            .app(App::Pip)
            .app(App::Vopd)
            .topology(TopologySpec::FitMesh)
            .topology(TopologySpec::FitTorus)
            .mapper(MapperSpec::Pmap)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .build();
        assert_eq!(set.len(), 8); // 2 apps x 2 topologies x 1 mapper x 2 routings
        let labels: Vec<_> = set
            .scenarios()
            .iter()
            .map(|s| (s.label.as_str(), s.topology.clone(), s.routing))
            .collect();
        assert_eq!(labels[0], ("PIP", TopologySpec::FitMesh, RoutingSpec::MinPath));
        assert_eq!(labels[1], ("PIP", TopologySpec::FitMesh, RoutingSpec::Xy));
        assert_eq!(labels[2], ("PIP", TopologySpec::FitTorus, RoutingSpec::MinPath));
        assert_eq!(labels[4], ("VOPD", TopologySpec::FitMesh, RoutingSpec::MinPath));
    }

    #[test]
    fn axis_defaults_fill_in() {
        let set = ScenarioSet::builder().app(App::Pip).build();
        assert_eq!(set.len(), 1);
        let s = &set.scenarios()[0];
        assert_eq!(s.topology, TopologySpec::FitMesh);
        assert_eq!(s.mapper, MapperSpec::Nmap(SinglePathOptions::default()));
        assert_eq!(s.routing, RoutingSpec::MinPath);
        assert_eq!(s.capacity, mbps(1_000.0));
    }

    #[test]
    fn derived_seeds_are_stable_and_shared_across_axes() {
        let build = || {
            ScenarioSet::builder()
                .root_seed(7)
                .random(RandomGraphConfig::default(), 2)
                .mapper(MapperSpec::Pmap)
                .mapper(MapperSpec::Gmap)
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same builder calls must give the same set");
        let s = a.scenarios();
        assert_eq!(s.len(), 4);
        // Both mappers of one instance share the seed; instances differ.
        assert_eq!(s[0].seed, s[1].seed);
        assert_eq!(s[2].seed, s[3].seed);
        assert_ne!(s[0].seed, s[2].seed);
        // A different root seed moves every derived seed.
        let c = ScenarioSet::builder()
            .root_seed(8)
            .random(RandomGraphConfig::default(), 2)
            .mapper(MapperSpec::Pmap)
            .mapper(MapperSpec::Gmap)
            .build();
        assert_ne!(c.scenarios()[0].seed, s[0].seed);
    }

    #[test]
    fn family_seeds_match_random_graph_family() {
        let base = RandomGraphConfig::default();
        let set = ScenarioSet::builder().random_family(&base, &[25, 35], 2).build();
        assert_eq!(set.len(), 4);
        let family = RandomGraphFamily::new(base);
        let s = &set.scenarios()[3]; // cores 35, instance 1
        assert_eq!(s.label, "rand35#1");
        assert_eq!(s.app.core_graph(s.seed), family.graph(35, 1));
    }

    #[test]
    fn scenario_problem_respects_fit_and_fixed_topologies() {
        let fit = Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 0,
            topology: TopologySpec::FitMesh,
            capacity: mbps(500.0),
            mapper: MapperSpec::Pmap,
            routing: RoutingSpec::MinPath,
            simulate: None,
        };
        let p = fit.problem().unwrap();
        assert_eq!(p.topology().node_count(), 16);
        assert_eq!(topology_label(p.topology()), "mesh4x4");

        let tight = Scenario { topology: TopologySpec::Mesh { dims: vec![2, 2] }, ..fit };
        assert!(tight.problem().is_err(), "16 cores cannot fit 4 nodes");
    }

    #[test]
    fn three_d_topology_specs_build_and_label() {
        let base = Scenario {
            label: "VOPD".into(),
            app: AppSpec::Bundled(App::Vopd),
            seed: 0,
            topology: TopologySpec::Mesh { dims: vec![4, 4, 2] },
            capacity: mbps(500.0),
            mapper: MapperSpec::Pmap,
            routing: RoutingSpec::MinPath,
            simulate: None,
        };
        let p = base.problem().unwrap();
        assert_eq!(p.topology().node_count(), 32);
        assert_eq!(topology_label(p.topology()), "mesh4x4x2");

        // VOPD has 16 cores: the fitted 3-D mesh is the 3x3x2 block.
        let fit3d = Scenario { topology: TopologySpec::FitMesh3d, ..base.clone() };
        let p = fit3d.problem().unwrap();
        assert_eq!(p.topology().node_count(), 18);
        assert_eq!(topology_label(p.topology()), "mesh3x3x2");

        let torus3d = Scenario { topology: TopologySpec::FitTorus3d, ..base };
        assert_eq!(topology_label(torus3d.problem().unwrap().topology()), "torus3x3x2");

        // Spec-keyword names (the `.dse` spellings).
        assert_eq!(TopologySpec::FitMesh3d.name(), "fit3d");
        assert_eq!(TopologySpec::FitTorus3d.name(), "fit3d-torus");
        assert_eq!(TopologySpec::Torus { dims: vec![4, 4, 2] }.name(), "torus 4x4x2");
    }

    #[test]
    fn simulate_bandwidths_expand_as_innermost_axis() {
        let set = ScenarioSet::builder()
            .app(App::Pip)
            .routing(RoutingSpec::MinPath)
            .routing(RoutingSpec::Xy)
            .simulate(SimulateSpec {
                bandwidths_mbps: vec![mbps(1_100.0), mbps(1_400.0)],
                ..Default::default()
            })
            .build();
        assert_eq!(set.len(), 4); // 1 app x 2 routings x 2 bandwidths
        let points: Vec<_> = set.scenarios().iter().map(|s| (s.routing, s.capacity)).collect();
        assert_eq!(
            points,
            vec![
                (RoutingSpec::MinPath, mbps(1_100.0)),
                (RoutingSpec::MinPath, mbps(1_400.0)),
                (RoutingSpec::Xy, mbps(1_100.0)),
                (RoutingSpec::Xy, mbps(1_400.0)),
            ]
        );
        for s in set.scenarios() {
            let spec = s.simulate.as_ref().expect("simulate enabled");
            assert!(spec.bandwidths_mbps.is_empty(), "points resolve into capacity");
        }
    }

    #[test]
    fn simulate_without_points_uses_builder_capacity() {
        let set = ScenarioSet::builder()
            .capacity(750.0)
            .app(App::Pip)
            .simulate(SimulateSpec::default())
            .build();
        assert_eq!(set.len(), 1);
        let s = &set.scenarios()[0];
        assert_eq!(s.capacity, mbps(750.0));
        assert!(s.simulate.is_some());
    }

    #[test]
    fn sim_seed_is_a_pure_function_of_spec_and_scenario_seeds() {
        let spec = SimulateSpec::default();
        assert_eq!(spec.sim_seed(7), spec.sim_seed(7));
        assert_ne!(spec.sim_seed(7), spec.sim_seed(8));
        let other = SimulateSpec { seed: 1, ..Default::default() };
        assert_ne!(other.sim_seed(7), spec.sim_seed(7));
        assert_eq!(spec.sim_config(7).seed, spec.sim_seed(7));
    }

    #[test]
    #[should_panic(expected = "bandwidth points must be positive")]
    fn simulate_rejects_bad_bandwidths() {
        let _ = ScenarioSet::builder()
            .app(App::Pip)
            .simulate(SimulateSpec { bandwidths_mbps: vec![Mbps::ZERO], ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "burst length must be non-zero")]
    fn simulate_rejects_zero_burst_packets() {
        // Fail fast at the builder — not from inside a pool worker, which
        // would abort the sweep instead of producing records.
        let _ = ScenarioSet::builder()
            .app(App::Pip)
            .simulate(SimulateSpec { burst_packets: 0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "burst intensity must be >= 1")]
    fn simulate_rejects_sub_one_burst_intensity() {
        let _ = ScenarioSet::builder()
            .app(App::Pip)
            .simulate(SimulateSpec { burst_intensity: 0.5, ..Default::default() });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MapperSpec::Nmap(SinglePathOptions::default()).name(), "nmap");
        assert_eq!(MapperSpec::Nmap(SinglePathOptions::paper_exact()).name(), "nmap-paper");
        assert_eq!(
            MapperSpec::Nmap(SinglePathOptions { passes: 4, restarts: 2 }).name(),
            "nmap[p4r2]"
        );
        assert_eq!(MapperSpec::NmapInit.name(), "nmap-init");
        assert_eq!(
            MapperSpec::NmapSplit { scope: PathScope::Quadrant, passes: 1 }.name(),
            "nmap-split-quadrant"
        );
        assert_eq!(MapperSpec::Pbb(PbbOptions::default()).name(), "pbb");
        assert_eq!(MapperSpec::Sa(SaOptions::default()).name(), "sa");
        assert_eq!(
            MapperSpec::Sa(SaOptions { moves: 100, initial_temp: 0.5, cooling: 0.75 }).name(),
            "sa[m100t0.5c0.75]"
        );
        assert_eq!(MapperSpec::Tabu(TabuOptions::default()).name(), "tabu");
        assert_eq!(
            MapperSpec::Tabu(TabuOptions { iterations: 12, tenure: 3 }).name(),
            "tabu[i12t3]"
        );
        assert_eq!(RoutingSpec::McfAllPaths.name(), "mcf-all");
        assert_eq!(AppSpec::Random(RandomGraphConfig::default()).family(), "rand25");
    }

    #[test]
    fn mapper_materialization_threads_the_seed_into_sa_only() {
        // SA is the one stochastic mapper: its trait object must differ
        // by seed (different anneal streams), while the deterministic
        // mappers ignore the seed entirely. 12 cores on a 4x4 mesh leave
        // empty nodes, so different proposal streams visit different
        // empty-pair skips — outcomes (at least their evaluation counts)
        // genuinely depend on the seed.
        let p = Scenario {
            label: "rand12".into(),
            app: AppSpec::Random(RandomGraphConfig { cores: 12, ..Default::default() }),
            seed: 5,
            topology: TopologySpec::Mesh { dims: vec![4, 4] },
            capacity: mbps(2_000.0),
            mapper: MapperSpec::Sa(SaOptions::default()),
            routing: RoutingSpec::MinPath,
            simulate: None,
        }
        .problem()
        .unwrap();
        let spec = MapperSpec::Sa(SaOptions::default());
        let run = |seed: u64| spec.mapper(seed).map(&mut nmap::EvalContext::new(&p)).unwrap();
        assert_eq!(run(3), run(3), "same seed, same outcome");
        let baseline = run(0);
        assert!(
            (1..=8).any(|seed| run(seed) != baseline),
            "every seed produced the same SA outcome — the scenario seed is not reaching the \
mapper's random stream"
        );
        let deterministic = MapperSpec::Tabu(TabuOptions::default());
        let a = deterministic.mapper(1).map(&mut nmap::EvalContext::new(&p)).unwrap();
        let b = deterministic.mapper(2).map(&mut nmap::EvalContext::new(&p)).unwrap();
        assert_eq!(a, b, "tabu ignores the seed");
    }
}
